//! The interrupt-driven PIE demodulator (Fig. 6a, Sec. 4.3).
//!
//! The envelope detector + comparator turn the downlink into a binary pin.
//! A **rising** edge wakes the CPU to zero the timer; a **falling** edge
//! wakes it to read the timer — the captured tick count is the high-pulse
//! width, classified against the 1.5-raw-interval threshold. Decoded bits
//! shift through the preamble matcher; when the 6-bit DL preamble
//! completes, the next 4 bits are collected as the CMD nibble and the
//! beacon is delivered to the network state machine.
//!
//! The timestamps of the edges are *real time*; all quantisation and clock
//! drift happen inside [`McuClock`], so the Fig. 13(a) loss mechanisms are
//! reproduced faithfully.

use arachnet_core::packet::{DlBeacon, DlCmd, PreambleMatcher, DL_PREAMBLE};
use arachnet_core::pie::PulseDecoder;

use crate::mcu::McuClock;

/// A decoded beacon with the real time at which decoding completed (the
/// Fig. 13(b) synchronization instant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedBeacon {
    /// The beacon content.
    pub beacon: DlBeacon,
    /// Real time (s) of the falling edge that completed the packet.
    pub completed_at: f64,
}

#[derive(Debug, Clone)]
enum DemodState {
    /// Shifting bits through the preamble matcher.
    Hunting,
    /// Preamble found; collecting CMD bits.
    Cmd { bits: Vec<bool> },
}

/// The firmware demodulator of one tag.
#[derive(Debug, Clone)]
pub struct PieDemodulator {
    clock: McuClock,
    decoder: PulseDecoder,
    matcher: PreambleMatcher,
    state: DemodState,
    last_rising: Option<f64>,
    /// Count of pulses rejected as glitches (diagnostics).
    glitches: u64,
}

impl PieDemodulator {
    /// Demodulator for a DL raw bit rate, using the given clock instance.
    pub fn new(clock: McuClock, dl_bps: f64) -> Self {
        Self {
            clock,
            decoder: PulseDecoder::new(McuClock::nominal_ticks_per_raw(dl_bps)),
            matcher: PreambleMatcher::new(&DL_PREAMBLE),
            state: DemodState::Hunting,
            last_rising: None,
            glitches: 0,
        }
    }

    /// Updates the supply voltage (clock drift follows the supercap).
    pub fn set_supply(&mut self, v: f64) {
        self.clock.set_supply(v);
    }

    /// Number of rejected glitch pulses so far.
    pub fn glitches(&self) -> u64 {
        self.glitches
    }

    /// Rising edge at real time `t`: the ISR zeroes the timer.
    pub fn on_rising_edge(&mut self, t: f64) {
        self.last_rising = Some(t);
    }

    /// Falling edge at real time `t`: the ISR reads the timer and decodes.
    /// Returns a completed beacon when this edge finishes one.
    pub fn on_falling_edge(&mut self, t: f64) -> Option<DecodedBeacon> {
        let start = self.last_rising.take()?;
        if t <= start {
            return None;
        }
        let ticks = self.clock.measure_ticks(t - start);
        let Some(bit) = self.decoder.classify(f64::from(ticks)) else {
            // Unclassifiable pulse: treat as noise, restart the hunt.
            self.glitches += 1;
            self.reset_packet();
            return None;
        };
        match &mut self.state {
            DemodState::Hunting => {
                if self.matcher.push(bit) {
                    self.state = DemodState::Cmd {
                        bits: Vec::with_capacity(4),
                    };
                }
                None
            }
            DemodState::Cmd { bits } => {
                bits.push(bit);
                if bits.len() == 4 {
                    let nibble = bits.iter().fold(0u8, |acc, &b| acc << 1 | u8::from(b));
                    self.reset_packet();
                    Some(DecodedBeacon {
                        beacon: DlBeacon::new(DlCmd::from_nibble(nibble)),
                        completed_at: t,
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Feeds a whole edge list `(time, rising?)`, returning every beacon
    /// completed. Convenience for waveform-level simulations.
    pub fn feed_edges(&mut self, edges: &[(f64, bool)]) -> Vec<DecodedBeacon> {
        let mut out = Vec::new();
        for &(t, rising) in edges {
            if rising {
                self.on_rising_edge(t);
            } else if let Some(b) = self.on_falling_edge(t) {
                out.push(b);
            }
        }
        out
    }

    fn reset_packet(&mut self) {
        self.matcher.reset();
        self.state = DemodState::Hunting;
    }
}

/// Expands a beacon into the ideal edge list a perfect reader + channel
/// would produce at the given DL rate, starting at `t0`. Each PIE symbol is
/// a high pulse (1 or 2 raw intervals) followed by one low interval.
pub fn ideal_beacon_edges(beacon: &DlBeacon, dl_bps: f64, t0: f64) -> Vec<(f64, bool)> {
    let raw_interval = 1.0 / dl_bps;
    let mut edges = Vec::new();
    let mut t = t0;
    for bit in beacon.to_bits().iter() {
        let high = if bit { 2.0 } else { 1.0 } * raw_interval;
        edges.push((t, true));
        edges.push((t + high, false));
        t += high + raw_interval;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::packet::DlCmd;

    fn decode_with(clock: McuClock, bps: f64, edges: &[(f64, bool)]) -> Vec<DecodedBeacon> {
        let mut d = PieDemodulator::new(clock, bps);
        d.feed_edges(edges)
    }

    #[test]
    fn decodes_ideal_beacon_at_default_rate() {
        for nibble in 0..16u8 {
            let beacon = DlBeacon::new(DlCmd::from_nibble(nibble));
            let edges = ideal_beacon_edges(&beacon, 250.0, 0.1);
            let out = decode_with(McuClock::ideal(), 250.0, &edges);
            assert_eq!(out.len(), 1, "nibble {nibble}");
            assert_eq!(out[0].beacon, beacon);
        }
    }

    #[test]
    fn completion_time_is_last_falling_edge() {
        let beacon = DlBeacon::new(DlCmd::ack());
        let edges = ideal_beacon_edges(&beacon, 250.0, 0.0);
        let out = decode_with(McuClock::ideal(), 250.0, &edges);
        let last_fall = edges.iter().rev().find(|e| !e.1).unwrap().0;
        assert_eq!(out[0].completed_at, last_fall);
    }

    #[test]
    fn decodes_consecutive_beacons() {
        let b1 = DlBeacon::new(DlCmd::ack());
        let b2 = DlBeacon::new(DlCmd::nack().with_empty(true));
        let mut edges = ideal_beacon_edges(&b1, 250.0, 0.0);
        let t_next = edges.last().unwrap().0 + 0.05;
        edges.extend(ideal_beacon_edges(&b2, 250.0, t_next));
        let out = decode_with(McuClock::ideal(), 250.0, &edges);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].beacon, b1);
        assert_eq!(out[1].beacon, b2);
    }

    #[test]
    fn tolerates_leading_noise_pulses() {
        let beacon = DlBeacon::new(DlCmd::reset());
        let mut edges = vec![(0.0, true), (0.004, false), (0.01, true), (0.018, false)];
        edges.extend(ideal_beacon_edges(&beacon, 250.0, 0.05));
        let out = decode_with(McuClock::ideal(), 250.0, &edges);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].beacon, beacon);
    }

    #[test]
    fn glitch_pulse_aborts_packet() {
        let beacon = DlBeacon::new(DlCmd::ack());
        let mut edges = ideal_beacon_edges(&beacon, 250.0, 0.0);
        // Replace one mid-packet pulse with a runt (0.3 raw intervals).
        edges[8] = (edges[8].0, true);
        edges[9] = (edges[8].0 + 0.3 / 250.0, false);
        let mut d = PieDemodulator::new(McuClock::ideal(), 250.0);
        let out = d.feed_edges(&edges);
        assert!(out.is_empty(), "corrupted packet must not decode");
        assert_eq!(d.glitches(), 1);
    }

    #[test]
    fn clock_drift_is_harmless_at_low_rates() {
        // ±3% chip tolerance at 250 bps: 48-tick bits, margin 24 ticks,
        // drift error < 3 ticks — decode must survive.
        for tol in [-0.03, 0.03] {
            let beacon = DlBeacon::new(DlCmd::ack());
            let edges = ideal_beacon_edges(&beacon, 250.0, 0.0);
            let out = decode_with(McuClock::with_tolerance(tol), 250.0, &edges);
            assert_eq!(out.len(), 1, "tolerance {tol}");
        }
    }

    #[test]
    fn reader_jitter_kills_high_rates_but_not_low() {
        // Emulate the reader's 0.3 ms software jitter by lengthening every
        // pulse: at 2 kbps (0.5 ms raw) this crosses the 1.5-interval
        // threshold; at 250 bps (4 ms raw) it is negligible.
        let beacon = DlBeacon::new(DlCmd::ack());
        let jitter = 0.3e-3;
        for (bps, should_decode) in [(250.0, true), (2_000.0, false)] {
            let mut edges = ideal_beacon_edges(&beacon, bps, 0.0);
            for e in edges.iter_mut().filter(|e| !e.1) {
                e.0 += jitter;
            }
            let out = decode_with(McuClock::ideal(), bps, &edges);
            assert_eq!(out.len(), usize::from(should_decode), "{bps} bps");
        }
    }

    #[test]
    fn falling_without_rising_is_ignored() {
        let mut d = PieDemodulator::new(McuClock::ideal(), 250.0);
        assert!(d.on_falling_edge(1.0).is_none());
    }

    #[test]
    fn non_positive_pulse_ignored() {
        let mut d = PieDemodulator::new(McuClock::ideal(), 250.0);
        d.on_rising_edge(1.0);
        assert!(d.on_falling_edge(1.0).is_none());
    }

    #[test]
    fn supply_sag_shifts_measurements_but_decodes_at_default() {
        let beacon = DlBeacon::new(DlCmd::ack());
        let edges = ideal_beacon_edges(&beacon, 250.0, 0.0);
        let mut d = PieDemodulator::new(McuClock::ideal(), 250.0);
        d.set_supply(1.95);
        let out = d.feed_edges(&edges);
        assert_eq!(out.len(), 1);
    }
}
