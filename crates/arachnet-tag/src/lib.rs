//! # arachnet-tag — the battery-free tag, firmware and timing models
//!
//! Sections 3–4 of the paper describe the tag as hardware plus an
//! interrupt-driven firmware. This crate models both at the two levels the
//! evaluation needs:
//!
//! * **waveform level** — [`mcu`] models the 12 kHz low-frequency clock
//!   with its supply-dependent drift and integer-tick quantisation (the
//!   stated cause of the Fig. 13a downlink-loss surge at 1–2 kbps);
//!   [`demod`] is the edge-interrupt PIE demodulator of Fig. 6(a);
//!   [`modulator`] is the timer-interrupt FM0 modulator of Fig. 6(b);
//! * **slot level** — [`device`] wraps the MAC state machine from
//!   `arachnet-core` together with the harvesting chain from
//!   `arachnet-energy` into a [`device::TagDevice`] whose energy lifecycle
//!   (dormant → charging → active → brownout) drives the late-arrival and
//!   fault-injection experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demod;
pub mod device;
pub mod mcu;
pub mod modulator;
pub mod subcarrier;

pub use demod::PieDemodulator;
pub use device::TagDevice;
pub use mcu::McuClock;
pub use modulator::Fm0Modulator;
