//! The timer-interrupt FM0 modulator (Fig. 6b, Sec. 4.3).
//!
//! The timer fires once per raw-bit interval; the ISR sets the MOSFET gate
//! pin from the pre-encoded packet buffer, toggling the PZT between its
//! reflective and absorptive states. Because the interval is programmed in
//! *timer ticks* of the drifting 12 kHz clock, the real on-air raw-bit
//! duration is `divider / f_actual` — the reader's decoder must absorb
//! that time-scaling, which is why the paper pairs higher UL rates with
//! lower SNR and occasional losses (Fig. 12).

use arachnet_core::bits::BitBuf;
use arachnet_core::fm0::Fm0Encoder;
use arachnet_core::packet::UlPacket;

use crate::mcu::McuClock;

/// One pin-state interval produced by the modulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinInterval {
    /// Start time (s).
    pub start: f64,
    /// Duration (s).
    pub duration: f64,
    /// Pin level (true = reflective).
    pub level: bool,
}

/// The firmware modulator of one tag.
#[derive(Debug, Clone)]
pub struct Fm0Modulator {
    clock: McuClock,
    /// Programmed clock divider = timer ticks per raw bit.
    divider: u32,
}

impl Fm0Modulator {
    /// Modulator with the given clock and divider (e.g. 32 → 375 bps).
    pub fn new(clock: McuClock, divider: u32) -> Self {
        assert!(divider >= 1);
        Self { clock, divider }
    }

    /// Updates the supply voltage (clock drift follows the supercap).
    pub fn set_supply(&mut self, v: f64) {
        self.clock.set_supply(v);
    }

    /// Nominal raw bit rate this divider programs.
    pub fn nominal_bps(&self) -> f64 {
        crate::mcu::NOMINAL_CLOCK_HZ / f64::from(self.divider)
    }

    /// Actual on-air raw-bit duration (s) under the current clock.
    pub fn actual_raw_interval(&self) -> f64 {
        self.clock.ticks_to_seconds(self.divider)
    }

    /// Modulates arbitrary data bits starting at `t0`, returning the FM0
    /// raw line bits and the pin timeline.
    pub fn modulate_bits(&self, data: &BitBuf, t0: f64) -> (BitBuf, Vec<PinInterval>) {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(data.iter());
        let dt = self.actual_raw_interval();
        let timeline = raw
            .iter()
            .enumerate()
            .map(|(i, level)| PinInterval {
                start: t0 + i as f64 * dt,
                duration: dt,
                level,
            })
            .collect();
        (raw, timeline)
    }

    /// Modulates a full uplink packet starting at `t0`.
    pub fn modulate_packet(&self, packet: &UlPacket, t0: f64) -> (BitBuf, Vec<PinInterval>) {
        self.modulate_bits(&packet.to_bits(), t0)
    }

    /// On-air duration (s) of a `data_bits`-bit message at this setting.
    pub fn on_air_duration(&self, data_bits: usize) -> f64 {
        2.0 * data_bits as f64 * self.actual_raw_interval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::fm0;
    use arachnet_core::packet::UL_PACKET_BITS;

    #[test]
    fn divider_sets_nominal_rate() {
        let m = Fm0Modulator::new(McuClock::ideal(), 32);
        assert!((m.nominal_bps() - 375.0).abs() < 1e-12);
        let m = Fm0Modulator::new(McuClock::ideal(), 4);
        assert!((m.nominal_bps() - 3_000.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_is_contiguous_and_uniform() {
        let m = Fm0Modulator::new(McuClock::ideal(), 32);
        let data = BitBuf::from_u32(0b1011_0010, 8);
        let (raw, tl) = m.modulate_bits(&data, 1.0);
        assert_eq!(tl.len(), raw.len());
        assert_eq!(tl.len(), 16);
        for w in tl.windows(2) {
            assert!((w[1].start - (w[0].start + w[0].duration)).abs() < 1e-12);
            assert_eq!(w[0].duration, w[1].duration);
        }
        assert_eq!(tl[0].start, 1.0);
    }

    #[test]
    fn timeline_levels_match_fm0() {
        let m = Fm0Modulator::new(McuClock::ideal(), 32);
        let data = BitBuf::from_u32(0b1100, 4);
        let (raw, tl) = m.modulate_bits(&data, 0.0);
        for (i, iv) in tl.iter().enumerate() {
            assert_eq!(Some(iv.level), raw.get(i));
        }
        // And the raw stream decodes back.
        let dec = fm0::decode(&raw, true).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn clock_drift_scales_duration() {
        let fast = Fm0Modulator::new(McuClock::with_tolerance(0.03), 32);
        let slow = Fm0Modulator::new(McuClock::with_tolerance(-0.03), 32);
        // A fast clock finishes each tick sooner → shorter raw bits.
        assert!(fast.actual_raw_interval() < slow.actual_raw_interval());
        let nominal = 32.0 / 12_000.0;
        assert!((fast.actual_raw_interval() - nominal / 1.03).abs() < 1e-9);
    }

    #[test]
    fn packet_duration_matches_paper_estimate() {
        // 32-bit packet at 375 bps ≈ 171 ms ("~200 ms" with guard).
        let m = Fm0Modulator::new(McuClock::ideal(), 32);
        let d = m.on_air_duration(UL_PACKET_BITS);
        assert!((d - 64.0 / 375.0).abs() < 1e-9);
    }

    #[test]
    fn modulate_packet_emits_64_raw_bits() {
        let m = Fm0Modulator::new(McuClock::ideal(), 32);
        let p = UlPacket::new(5, 0x3A1).unwrap();
        let (raw, tl) = m.modulate_packet(&p, 0.0);
        assert_eq!(raw.len(), 64);
        assert_eq!(tl.len(), 64);
    }

    #[test]
    fn supply_change_affects_interval() {
        let mut m = Fm0Modulator::new(McuClock::ideal(), 32);
        let before = m.actual_raw_interval();
        m.set_supply(1.95);
        assert!(
            m.actual_raw_interval() > before,
            "sagging supply slows the clock"
        );
    }

    #[test]
    #[should_panic]
    fn zero_divider_panics() {
        Fm0Modulator::new(McuClock::ideal(), 0);
    }
}
