//! The MSP430's 12 kHz low-frequency clock model (Secs. 3.2, 6.3).
//!
//! The tag deliberately runs its timer from the very-low-power VLO-class
//! oscillator at a nominal 12 kHz. Two imperfections matter for protocol
//! timing, and the paper blames both for the downlink-loss surge at high
//! bit rates (Fig. 13a):
//!
//! * **quantisation** — durations are measured in whole timer ticks
//!   (83.3 µs each), so at 2 kbps a raw bit spans only 6 ticks;
//! * **drift** — "because it is powered by a varying voltage from the
//!   supercapacitor rather than a stable one from an LDO regulator, the
//!   timer lacks precision". We model a per-chip tolerance plus a
//!   supply-voltage coefficient: the actual frequency is
//!   `f = 12 kHz · (1 + tol + k·(V − 2.0))`.

/// Nominal clock frequency (Hz).
pub const NOMINAL_CLOCK_HZ: f64 = 12_000.0;

/// Supply-voltage sensitivity of the VLO-class oscillator (fractional
/// frequency change per volt). MSP430 datasheets quote a few %/V.
pub const SUPPLY_COEFF_PER_V: f64 = 0.04;

/// Worst-case per-chip frequency tolerance (fraction).
pub const CHIP_TOLERANCE: f64 = 0.03;

/// A tag's clock instance.
#[derive(Debug, Clone, Copy)]
pub struct McuClock {
    /// Static per-chip tolerance, in [-CHIP_TOLERANCE, CHIP_TOLERANCE].
    tolerance: f64,
    /// Current supply voltage (V).
    supply_v: f64,
}

impl McuClock {
    /// An ideal clock (no tolerance, nominal supply).
    pub fn ideal() -> Self {
        Self {
            tolerance: 0.0,
            supply_v: 2.0,
        }
    }

    /// A clock with an explicit chip tolerance.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance.abs() <= CHIP_TOLERANCE + 1e-12,
            "tolerance out of spec"
        );
        Self {
            tolerance,
            supply_v: 2.0,
        }
    }

    /// Deterministically derives a chip tolerance for a tag ID from an
    /// experiment seed (uniform over the spec band).
    pub fn for_tag(seed: u64, tid: u8) -> Self {
        let mut z = seed ^ (u64::from(tid).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        Self::with_tolerance((unit * 2.0 - 1.0) * CHIP_TOLERANCE)
    }

    /// Updates the supply voltage (the supercap sags between 2.3 and
    /// 1.95 V during operation).
    pub fn set_supply(&mut self, v: f64) {
        assert!(v > 0.0);
        self.supply_v = v;
    }

    /// The chip's static tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Actual oscillator frequency under the current supply (Hz).
    pub fn actual_hz(&self) -> f64 {
        NOMINAL_CLOCK_HZ * (1.0 + self.tolerance + SUPPLY_COEFF_PER_V * (self.supply_v - 2.0))
    }

    /// Converts a real duration (seconds) into the integer tick count the
    /// timer capture register would report.
    pub fn measure_ticks(&self, duration_s: f64) -> u32 {
        assert!(duration_s >= 0.0);
        (duration_s * self.actual_hz()).round() as u32
    }

    /// Converts a desired tick count into the real duration it produces —
    /// the dual direction, used by the timer-driven modulator.
    pub fn ticks_to_seconds(&self, ticks: u32) -> f64 {
        f64::from(ticks) / self.actual_hz()
    }

    /// Nominal ticks per raw-bit interval at a bit rate (what the firmware
    /// *assumes* when comparing against thresholds).
    pub fn nominal_ticks_per_raw(bps: f64) -> f64 {
        NOMINAL_CLOCK_HZ / bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_is_nominal() {
        let c = McuClock::ideal();
        assert_eq!(c.actual_hz(), NOMINAL_CLOCK_HZ);
    }

    #[test]
    fn supply_sag_slows_or_speeds_clock() {
        let mut c = McuClock::ideal();
        c.set_supply(1.95);
        let sagged = c.actual_hz();
        c.set_supply(2.3);
        let topped = c.actual_hz();
        assert!(sagged < NOMINAL_CLOCK_HZ);
        assert!(topped > NOMINAL_CLOCK_HZ);
        // Across the full cutoff band the swing stays modest (±1.4%).
        assert!((topped - sagged) / NOMINAL_CLOCK_HZ < 0.02);
    }

    #[test]
    fn tolerance_shifts_frequency() {
        let fast = McuClock::with_tolerance(0.03);
        let slow = McuClock::with_tolerance(-0.03);
        assert!(fast.actual_hz() > slow.actual_hz());
        assert!((fast.actual_hz() / NOMINAL_CLOCK_HZ - 1.03).abs() < 1e-12);
    }

    #[test]
    fn per_tag_tolerances_are_deterministic_and_spread() {
        let a = McuClock::for_tag(1, 3);
        let b = McuClock::for_tag(1, 3);
        assert_eq!(a.tolerance(), b.tolerance());
        let tols: Vec<f64> = (1..=12)
            .map(|t| McuClock::for_tag(42, t).tolerance())
            .collect();
        let distinct = tols.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct >= 10, "tolerances too clustered: {tols:?}");
        assert!(tols.iter().all(|t| t.abs() <= CHIP_TOLERANCE));
    }

    #[test]
    fn tick_measurement_quantizes() {
        let c = McuClock::ideal();
        // One tick = 83.33 µs; 100 µs rounds to 1 tick, 130 µs to 2.
        assert_eq!(c.measure_ticks(100e-6), 1);
        assert_eq!(c.measure_ticks(130e-6), 2);
        assert_eq!(c.measure_ticks(0.0), 0);
    }

    #[test]
    fn measure_roundtrip_within_one_tick() {
        let c = McuClock::with_tolerance(0.02);
        for d in [0.5e-3, 1.0e-3, 2.7e-3, 10.0e-3] {
            let ticks = c.measure_ticks(d);
            let back = c.ticks_to_seconds(ticks);
            assert!((back - d).abs() <= 0.5 / c.actual_hz() + 1e-12);
        }
    }

    #[test]
    fn rate_ladder_tick_budgets() {
        // The Fig. 13(a) story in numbers: ticks per raw bit across the DL
        // ladder. At 2 kbps only 6 ticks remain → the 0.5-tick quantisation
        // is 8 % of a bit.
        assert_eq!(McuClock::nominal_ticks_per_raw(125.0), 96.0);
        assert_eq!(McuClock::nominal_ticks_per_raw(250.0), 48.0);
        assert_eq!(McuClock::nominal_ticks_per_raw(2_000.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "out of spec")]
    fn excessive_tolerance_rejected() {
        McuClock::with_tolerance(0.5);
    }
}
