//! Property-based tests over the tag firmware models (arachnet-testkit).

use arachnet_core::packet::{DlBeacon, DlCmd};
use arachnet_tag::demod::{ideal_beacon_edges, PieDemodulator};
use arachnet_tag::mcu::McuClock;
use arachnet_tag::modulator::Fm0Modulator;
use arachnet_testkit::gen;
use arachnet_testkit::{check, prop_assert, prop_assert_eq};

/// The demodulator never panics and never emits a *wrong* beacon for
/// arbitrary (garbage) edge streams — silence or glitch counts only.
#[test]
fn demod_survives_garbage() {
    let g = gen::vec(gen::zip(gen::f64_range(0.0, 10.0), gen::boolean()), 0, 199);
    check("demod_survives_garbage", &g, |edges| {
        let mut sorted = edges.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut d = PieDemodulator::new(McuClock::ideal(), 250.0);
        let decoded = d.feed_edges(&sorted);
        // Whatever decodes must at least be structurally valid (the type
        // guarantees it); mostly we assert: no panic, bounded output.
        prop_assert!(decoded.len() <= sorted.len() / 20 + 1);
        Ok(())
    });
}

/// A clean beacon decodes for every command and all legal chip tolerances
/// at the default rate.
#[test]
fn demod_decodes_all_beacons_under_tolerance() {
    let g = gen::zip(gen::u8_range(0, 16), gen::f64_range(-0.03, 0.03));
    check("demod_decodes_all_beacons_under_tolerance", &g, |&(nibble, tol)| {
        let beacon = DlBeacon::new(DlCmd::from_nibble(nibble));
        let edges = ideal_beacon_edges(&beacon, 250.0, 0.0);
        let mut d = PieDemodulator::new(McuClock::with_tolerance(tol), 250.0);
        let out = d.feed_edges(&edges);
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].beacon, beacon);
        Ok(())
    });
}

/// The modulator timeline is contiguous, uniform, and scales inversely
/// with the actual clock frequency.
#[test]
fn modulator_timeline_invariants() {
    let g = gen::zip4(
        gen::u64_any().map(|v| v as u32),
        gen::usize_range(1, 32),
        gen::select(vec![4u32, 8, 16, 32, 64, 128]),
        gen::f64_range(-0.03, 0.03),
    );
    check("modulator_timeline_invariants", &g, |&(value, width, divider, tol)| {
        let data =
            arachnet_core::bits::BitBuf::from_u32(value & ((1u64 << width) - 1) as u32, width);
        let m = Fm0Modulator::new(McuClock::with_tolerance(tol), divider);
        let (raw, tl) = m.modulate_bits(&data, 1.0);
        prop_assert_eq!(tl.len(), 2 * width);
        prop_assert_eq!(raw.len(), 2 * width);
        for w in tl.windows(2) {
            prop_assert!((w[1].start - (w[0].start + w[0].duration)).abs() < 1e-9);
        }
        let expect = f64::from(divider) / (12_000.0 * (1.0 + tol));
        prop_assert!((tl[0].duration - expect).abs() < 1e-9);
        Ok(())
    });
}

/// Tick measurement is monotone in duration for any clock.
#[test]
fn tick_measurement_monotone() {
    let g = gen::zip3(
        gen::f64_range(0.0, 0.1),
        gen::f64_range(0.0, 0.1),
        gen::f64_range(-0.03, 0.03),
    );
    check("tick_measurement_monotone", &g, |&(d1, extra, tol)| {
        let c = McuClock::with_tolerance(tol);
        prop_assert!(c.measure_ticks(d1 + extra) >= c.measure_ticks(d1));
        Ok(())
    });
}
