//! The low-voltage cutoff circuit with hysteresis (Sec. 3.3, Appendix A).
//!
//! A comparator watches the supercapacitor through a resistor divider and
//! connects the MCU only between two thresholds: power connects when the
//! capacitor rises above `V_HTH` and disconnects when it falls below
//! `V_LTH`. The feedback network switches the effective divider: with the
//! output low the bottom leg is `R3` alone (rising threshold
//! `V_REF · (R1+R2+R3)/R3 = 2.31 V`), with the output high it is `R2+R3`
//! (falling threshold `V_REF · (R1+R2+R3)/(R2+R3) = 1.95 V`) — the paper's
//! R1 = 680 kΩ, R2 = 180 kΩ, R3 = 1 MΩ, V_REF = 1.24 V.

/// Comparator reference voltage (V).
pub const V_REF: f64 = 1.24;
/// Divider resistor R1 (Ω).
pub const R1_OHM: f64 = 680_000.0;
/// Divider resistor R2 (Ω).
pub const R2_OHM: f64 = 180_000.0;
/// Divider resistor R3 (Ω).
pub const R3_OHM: f64 = 1_000_000.0;

/// Quiescent current of the cutoff circuit (divider + comparator), amps.
/// Appendix A bounds it below 1 µA.
pub const CUTOFF_QUIESCENT_A: f64 = 0.9e-6;

/// The hysteretic power switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowVoltageCutoff {
    v_hth: f64,
    v_lth: f64,
    connected: bool,
}

impl Default for LowVoltageCutoff {
    fn default() -> Self {
        Self::paper()
    }
}

impl LowVoltageCutoff {
    /// The paper's circuit from its published resistor values.
    pub fn paper() -> Self {
        let total = R1_OHM + R2_OHM + R3_OHM;
        Self::new(V_REF * total / R3_OHM, V_REF * total / (R2_OHM + R3_OHM))
    }

    /// A cutoff with explicit thresholds.
    pub fn new(v_hth: f64, v_lth: f64) -> Self {
        assert!(v_hth > v_lth, "hysteresis requires HTH > LTH");
        Self {
            v_hth,
            v_lth,
            connected: false,
        }
    }

    /// Rising (connect) threshold.
    pub fn v_hth(&self) -> f64 {
        self.v_hth
    }

    /// Falling (disconnect) threshold.
    pub fn v_lth(&self) -> f64 {
        self.v_lth
    }

    /// Whether the MCU is currently powered.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Updates the switch with the current capacitor voltage. Returns the
    /// transition that occurred, if any.
    pub fn update(&mut self, v_cap: f64) -> Option<CutoffEvent> {
        if !self.connected && v_cap >= self.v_hth {
            self.connected = true;
            Some(CutoffEvent::PoweredOn)
        } else if self.connected && v_cap <= self.v_lth {
            self.connected = false;
            Some(CutoffEvent::PoweredOff)
        } else {
            None
        }
    }

    /// Forces the disconnected state (e.g. after a full discharge).
    pub fn reset(&mut self) {
        self.connected = false;
    }
}

/// A power transition of the cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutoffEvent {
    /// Capacitor crossed `V_HTH` rising: the MCU boots.
    PoweredOn,
    /// Capacitor crossed `V_LTH` falling: the MCU browns out.
    PoweredOff,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        let c = LowVoltageCutoff::paper();
        assert!((c.v_hth() - 2.3).abs() < 0.02, "HTH {}", c.v_hth());
        assert!((c.v_lth() - 1.95).abs() < 0.01, "LTH {}", c.v_lth());
    }

    #[test]
    fn connects_only_at_hth() {
        let mut c = LowVoltageCutoff::paper();
        assert_eq!(
            c.update(2.0),
            None,
            "between thresholds from below: stay off"
        );
        assert_eq!(c.update(2.29), None);
        assert_eq!(c.update(2.31), Some(CutoffEvent::PoweredOn));
        assert!(c.is_connected());
    }

    #[test]
    fn disconnects_only_at_lth() {
        let mut c = LowVoltageCutoff::paper();
        c.update(2.35);
        assert!(c.is_connected());
        assert_eq!(
            c.update(2.0),
            None,
            "between thresholds from above: stay on"
        );
        assert_eq!(c.update(1.96), None);
        assert_eq!(c.update(1.94), Some(CutoffEvent::PoweredOff));
        assert!(!c.is_connected());
    }

    #[test]
    fn hysteresis_prevents_oscillation() {
        // A voltage hovering between the thresholds must never toggle.
        let mut c = LowVoltageCutoff::paper();
        c.update(2.35); // on
        let mut events = 0;
        for v in [2.1, 2.25, 2.0, 2.2, 1.97, 2.29] {
            if c.update(v).is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 0);
    }

    #[test]
    fn events_fire_once_per_transition() {
        let mut c = LowVoltageCutoff::paper();
        assert!(c.update(2.4).is_some());
        assert!(c.update(2.5).is_none(), "already on");
        assert!(c.update(1.9).is_some());
        assert!(c.update(1.8).is_none(), "already off");
    }

    #[test]
    fn quiescent_current_below_appendix_bound() {
        let quiescent = CUTOFF_QUIESCENT_A;
        assert!(quiescent < 1.0e-6, "cutoff quiescent draw {quiescent} A exceeds 1 uA");
    }

    #[test]
    #[should_panic(expected = "HTH > LTH")]
    fn inverted_thresholds_panic() {
        LowVoltageCutoff::new(1.9, 2.3);
    }

    #[test]
    fn reset_forces_off() {
        let mut c = LowVoltageCutoff::paper();
        c.update(2.4);
        c.reset();
        assert!(!c.is_connected());
    }
}
