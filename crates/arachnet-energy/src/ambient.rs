//! Ambient-vibration harvesting — the paper's future-work extension.
//!
//! Sec. 2.2: "These self-vibrations can, however, serve as an auxiliary
//! energy source. While our current design relies on reader-transmitted
//! vibrations …, harvesting ambient vibrations remains a promising
//! enhancement for future work."
//!
//! The vehicle's own vibration sits below 0.1 kHz — far off the PZT's
//! 90 kHz resonance, so conversion is poor but the excitation is large
//! (road + powertrain inputs reach mm-scale displacements vs the reader's
//! µm-scale ultrasonic field). This module models the auxiliary source as
//! a rectified low-frequency harvester feeding the same supercapacitor
//! through its own (single-stage) rectifier, and quantifies what it buys:
//! faster charging while driving, and idle-mode survival without the
//! reader.

use crate::harvester::HarvestChain;

/// Driving conditions for the ambient source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrivingState {
    /// Vehicle parked, systems off: no ambient input.
    Parked,
    /// Idling: powertrain vibration only.
    Idle,
    /// City driving: road + powertrain.
    City,
    /// Highway: broadband, strongest excitation.
    Highway,
}

/// An ambient (sub-100 Hz) vibration harvester bonded next to the tag PZT.
#[derive(Debug, Clone, Copy)]
pub struct AmbientHarvester {
    /// Open-circuit voltage under highway excitation (V). Low-frequency
    /// strain coupling is weak: ~1 V-scale peaks despite large excitation.
    pub v_peak_highway: f64,
    /// Source resistance of the low-frequency rectifier (Ω). Much higher
    /// than the pump's — the source impedance of a PZT at 30 Hz is large.
    pub source_ohm: f64,
    /// Rectifier diode drop (V).
    pub diode_drop: f64,
}

impl Default for AmbientHarvester {
    fn default() -> Self {
        Self {
            v_peak_highway: 4.2,
            source_ohm: 150_000.0,
            diode_drop: 0.15,
        }
    }
}

impl AmbientHarvester {
    /// Excitation scale factor for a driving state.
    pub fn excitation(state: DrivingState) -> f64 {
        match state {
            DrivingState::Parked => 0.0,
            DrivingState::Idle => 0.25,
            DrivingState::City => 0.6,
            DrivingState::Highway => 1.0,
        }
    }

    /// Open-circuit rectified voltage in a driving state.
    pub fn open_circuit_voltage(&self, state: DrivingState) -> f64 {
        (self.v_peak_highway * Self::excitation(state) - self.diode_drop).max(0.0)
    }

    /// Charging current contribution into a store at `v_cap` (A).
    pub fn output_current(&self, state: DrivingState, v_cap: f64) -> f64 {
        ((self.open_circuit_voltage(state) - v_cap) / self.source_ohm).max(0.0)
    }

    /// Average auxiliary power into a store held near `v_cap` (W).
    pub fn power_at(&self, state: DrivingState, v_cap: f64) -> f64 {
        self.output_current(state, v_cap) * v_cap
    }
}

/// A harvesting chain with the auxiliary ambient source attached.
#[derive(Debug, Clone, Copy)]
pub struct HybridChain {
    /// The reader-driven chain (Sec. 3).
    pub reader_chain: HarvestChain,
    /// The ambient source.
    pub ambient: AmbientHarvester,
    /// Current driving state.
    pub state: DrivingState,
}

impl HybridChain {
    /// Hybrid of the paper's chain and the default ambient harvester.
    pub fn new(state: DrivingState) -> Self {
        Self {
            reader_chain: HarvestChain::paper(),
            ambient: AmbientHarvester::default(),
            state,
        }
    }

    /// Total charging current into a store at `v_cap` for a reader-field
    /// input `vp` (A).
    pub fn output_current(&self, vp: f64, v_cap: f64) -> f64 {
        self.reader_chain.multiplier.output_current(vp, v_cap)
            + self.ambient.output_current(self.state, v_cap)
    }

    /// Step-simulated time to charge from `v0` to `v_target`; `None` if
    /// not reached within `max_s`.
    pub fn charge_time(&self, vp: f64, v0: f64, v_target: f64, max_s: f64) -> Option<f64> {
        let mut cap = crate::storage::SuperCap::new(self.reader_chain.capacitance);
        cap.set_voltage(v0);
        let dt = 1e-2;
        let mut t = 0.0;
        while t < max_s {
            if cap.voltage() >= v_target {
                return Some(t);
            }
            cap.step(self.output_current(vp, cap.voltage()), dt);
            t += dt;
        }
        None
    }

    /// Whether the tag can sustain RX-mode listening on ambient power
    /// alone (reader off) — the future-work scenario of a parked-but-
    /// running vehicle monitored without an active reader.
    pub fn sustains_rx_without_reader(&self) -> bool {
        let rx = crate::ledger::PowerMode::rx_default().total_current();
        self.ambient.output_current(self.state, 2.0) > rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tag 11's calibrated reader-field input.
    const VP_WEAK: f64 = 0.329;

    #[test]
    fn parked_contributes_nothing() {
        let a = AmbientHarvester::default();
        assert_eq!(a.output_current(DrivingState::Parked, 1.0), 0.0);
        assert_eq!(a.open_circuit_voltage(DrivingState::Parked), 0.0);
    }

    #[test]
    fn excitation_orders_by_driving_intensity() {
        let a = AmbientHarvester::default();
        let p = |s| a.power_at(s, 2.0);
        assert!(p(DrivingState::Highway) > p(DrivingState::City));
        assert!(p(DrivingState::City) > p(DrivingState::Idle));
        assert!(p(DrivingState::Idle) >= p(DrivingState::Parked));
    }

    #[test]
    fn ambient_power_is_auxiliary_scale() {
        // Tens of µW at highway — comparable to the weakest reader-driven
        // charging power (47 µW), i.e. a meaningful supplement, not a
        // replacement for the strong tags.
        let a = AmbientHarvester::default();
        let p = a.power_at(DrivingState::Highway, 2.0) * 1e6;
        assert!((5.0..60.0).contains(&p), "ambient power {p:.1} µW");
    }

    #[test]
    fn highway_speeds_up_the_weakest_tag() {
        let parked = HybridChain::new(DrivingState::Parked);
        let highway = HybridChain::new(DrivingState::Highway);
        let t_parked = parked.charge_time(VP_WEAK, 0.0, 2.3, 500.0).unwrap();
        let t_highway = highway.charge_time(VP_WEAK, 0.0, 2.3, 500.0).unwrap();
        assert!(
            t_highway < t_parked * 0.8,
            "ambient assist too small: {t_highway:.1} vs {t_parked:.1} s"
        );
    }

    #[test]
    fn strong_tags_barely_notice() {
        let parked = HybridChain::new(DrivingState::Parked);
        let highway = HybridChain::new(DrivingState::Highway);
        let vp_strong = 1.376;
        let tp = parked.charge_time(vp_strong, 0.0, 2.3, 100.0).unwrap();
        let th = highway.charge_time(vp_strong, 0.0, 2.3, 100.0).unwrap();
        assert!(th <= tp);
        assert!(th > tp * 0.8, "ambient should be secondary for strong tags");
    }

    #[test]
    fn ambient_alone_sustains_rx_on_highway() {
        // The future-work pitch: while driving, a tag could keep listening
        // with the reader silent.
        assert!(HybridChain::new(DrivingState::Highway).sustains_rx_without_reader());
        assert!(!HybridChain::new(DrivingState::Parked).sustains_rx_without_reader());
    }

    #[test]
    fn ambient_alone_cannot_activate_from_zero_when_weak() {
        // Idle vibration cannot push the cap to 2.3 V (open-circuit 0.75 V).
        let idle = HybridChain::new(DrivingState::Idle);
        assert!(idle.charge_time(0.0, 0.0, 2.3, 1_000.0).is_none());
    }

    #[test]
    fn hybrid_current_is_sum_of_sources() {
        let h = HybridChain::new(DrivingState::Highway);
        let v = 1.5;
        let total = h.output_current(VP_WEAK, v);
        let reader = h.reader_chain.multiplier.output_current(VP_WEAK, v);
        let amb = h.ambient.output_current(DrivingState::Highway, v);
        assert!((total - reader - amb).abs() < 1e-15);
    }
}
