//! # arachnet-energy — the tag's energy-harvesting chain (Sec. 3)
//!
//! Everything between the tag's PZT and its MCU power pin:
//!
//! * [`multiplier`] — the N-stage voltage multiplier (Fig. 4):
//!   `V_DD = 2N (V_P − V_ON)` with Schottky diodes, plus the pump's output
//!   resistance that throttles charging current;
//! * [`storage`] — the 1 mF tantalum supercapacitor with its datasheet
//!   leakage;
//! * [`cutoff`] — the low-voltage cutoff with hysteresis (Appendix A):
//!   resistor-programmed thresholds V_HTH = 2.3 V / V_LTH = 1.95 V;
//! * [`harvester`] — the assembled chain: charge-time predictions
//!   (Fig. 11b), resume-from-LTH behaviour, net charging power;
//! * [`ambient`] — the future-work auxiliary source: harvesting the
//!   vehicle's own sub-100 Hz vibration (Sec. 2.2 discussion);
//! * [`ledger`] — per-mode power accounting (Table 2): the RX/TX/IDLE
//!   currents *derived* from the interrupt-driven duty cycles of Sec. 4.3
//!   rather than hard-coded.
//!
//! Units: volts, amps, seconds, farads, watts throughout (no milli/micro
//! scaling surprises); display helpers format µW/µA where the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambient;
pub mod cutoff;
pub mod harvester;
pub mod ledger;
pub mod multiplier;
pub mod storage;

pub use cutoff::LowVoltageCutoff;
pub use harvester::HarvestChain;
pub use ledger::{PowerLedger, PowerMode};
pub use multiplier::Multiplier;
pub use storage::SuperCap;
