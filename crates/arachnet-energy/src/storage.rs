//! The supercapacitor energy store (Sec. 3.3).
//!
//! The paper uses a 1 mF KEMET T491 tantalum capacitor chosen for its tiny
//! leakage: "less than 0.01 CV (µA) at rated voltage after 5 minutes" —
//! for C = 1000 µF at 6 V rating that bounds leakage at 60 µA worst-case,
//! with the realistic settled value far lower; we model the settled
//! datasheet behaviour as a voltage-proportional leak.

/// Default capacitance (F) — 1 mF.
pub const DEFAULT_CAPACITANCE_F: f64 = 1.0e-3;

/// Settled leakage conductance (A per V). At 2.3 V this leaks ≈ 0.46 µA,
/// comfortably under the datasheet bound and small against the 47–588 µW
/// charging powers.
pub const LEAK_CONDUCTANCE_S: f64 = 0.2e-6;

/// A supercapacitor with state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperCap {
    capacitance: f64,
    leak_conductance: f64,
    voltage: f64,
}

impl Default for SuperCap {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITANCE_F)
    }
}

impl SuperCap {
    /// A discharged capacitor of the given capacitance with the default
    /// leakage.
    pub fn new(capacitance: f64) -> Self {
        assert!(capacitance > 0.0);
        Self {
            capacitance,
            leak_conductance: LEAK_CONDUCTANCE_S,
            voltage: 0.0,
        }
    }

    /// Overrides the leakage conductance.
    pub fn with_leak(mut self, conductance: f64) -> Self {
        assert!(conductance >= 0.0);
        self.leak_conductance = conductance;
        self
    }

    /// Capacitance (F).
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Terminal voltage (V).
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Sets the terminal voltage directly (initial conditions in tests and
    /// simulations).
    pub fn set_voltage(&mut self, v: f64) {
        assert!(v >= 0.0);
        self.voltage = v;
    }

    /// Stored energy `½CV²` (J).
    pub fn energy(&self) -> f64 {
        0.5 * self.capacitance * self.voltage * self.voltage
    }

    /// Energy difference between two voltages (J).
    pub fn energy_between(&self, v_lo: f64, v_hi: f64) -> f64 {
        0.5 * self.capacitance * (v_hi * v_hi - v_lo * v_lo)
    }

    /// Instantaneous leakage current at the current voltage (A).
    pub fn leak_current(&self) -> f64 {
        self.leak_conductance * self.voltage
    }

    /// Advances the capacitor by `dt` seconds under a net external current
    /// `i_in` (positive = charging); leakage is applied internally. Voltage
    /// clamps at zero. Returns the new voltage.
    pub fn step(&mut self, i_in: f64, dt: f64) -> f64 {
        assert!(dt > 0.0);
        let net = i_in - self.leak_current();
        self.voltage = (self.voltage + net * dt / self.capacitance).max(0.0);
        self.voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_energy_at_hth() {
        // ½ · 1 mF · (2.3 V)² = 2.645 mJ — the number behind the
        // 587.8 µW / 47.1 µW net-charging-power figures.
        let mut c = SuperCap::default();
        c.set_voltage(2.3);
        assert!((c.energy() - 2.645e-3).abs() < 1e-9);
    }

    #[test]
    fn constant_current_ramp_is_linear() {
        let mut c = SuperCap::new(1.0e-3).with_leak(0.0);
        let i = 1.0e-3; // 1 mA
        for _ in 0..1_000 {
            c.step(i, 1e-3);
        }
        // 1 mA into 1 mF for 1 s = 1 V.
        assert!((c.voltage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_discharges_slowly() {
        let mut c = SuperCap::default();
        c.set_voltage(2.3);
        // One hour idle.
        for _ in 0..3_600 {
            c.step(0.0, 1.0);
        }
        assert!(c.voltage() < 2.3);
        // τ = C/G = 1e-3/0.2e-6 = 5000 s, so after 3600 s about half charge
        // remains — the store self-discharges over hours, not seconds.
        assert!(c.voltage() > 1.0, "leaked too fast: {}", c.voltage());
    }

    #[test]
    fn voltage_clamps_at_zero() {
        let mut c = SuperCap::default();
        c.set_voltage(0.01);
        c.step(-1.0, 1.0);
        assert_eq!(c.voltage(), 0.0);
    }

    #[test]
    fn energy_between_matches_difference() {
        let c = SuperCap::default();
        let e = c.energy_between(1.95, 2.3);
        assert!((e - 0.5e-3 * (2.3f64.powi(2) - 1.95f64.powi(2))).abs() < 1e-12);
        // Resume from LTH costs much less than a full charge.
        assert!(e < c.energy_between(0.0, 2.3) * 0.3);
    }

    #[test]
    fn leak_current_at_rated_voltage_is_within_datasheet() {
        let mut c = SuperCap::default();
        c.set_voltage(2.3);
        // Datasheet bound: 0.01·C·V µA with C in µF, V in volts = 23 µA for
        // 1000 µF at 2.3 V. Our settled model must be far below that.
        assert!(c.leak_current() < 23e-6);
        assert!(c.leak_current() > 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_voltage_rejected() {
        let mut c = SuperCap::default();
        c.set_voltage(-0.1);
    }
}
