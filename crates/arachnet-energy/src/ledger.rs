//! Per-mode power accounting (Table 2), derived from the interrupt-driven
//! architecture of Sec. 4.3.
//!
//! Table 2 reports, at a 2.0 V supply:
//!
//! | mode | MCU µA | total µA | power µW |
//! |------|-------:|---------:|---------:|
//! | RX   |    6.4 |     12.4 |     24.8 |
//! | TX   |    4.7 |     25.5 |     51.0 |
//! | IDLE |    0.6 |      3.8 |      7.6 |
//!
//! These are not magic constants here — they fall out of a duty-cycle
//! model: the MSP430 draws ~45 µA active and ~0.55 µA in LPM3; RX wakes
//! twice per PIE symbol for an 8-cycle edge ISR at 250 bps, TX wakes once
//! per raw bit for a 3-cycle pin-set ISR at 375 bps, and each mode adds its
//! analog overhead (envelope detector + comparator for RX, MOSFET gate
//! charge for TX, the cutoff divider always).

/// MCU active-mode current (A) — MSP430G2553 at 2 V, ~40–50 µA per the
/// paper.
pub const MCU_ACTIVE_A: f64 = 45.0e-6;
/// MCU LPM3 sleep current (A).
pub const MCU_SLEEP_A: f64 = 0.55e-6;
/// MCU clock (Hz).
pub const MCU_CLOCK_HZ: f64 = 12_000.0;
/// Nominal supply voltage for the power figures (V).
pub const SUPPLY_V: f64 = 2.0;

/// Cycles spent in the DL edge ISR (timer reset / timer read + decode).
pub const RX_ISR_CYCLES: f64 = 8.0;
/// Cycles spent in the UL timer ISR (set output pin from packet buffer).
pub const TX_ISR_CYCLES: f64 = 3.0;

/// Envelope detector + comparator supply current during RX (A).
pub const RX_ANALOG_A: f64 = 2.8e-6;
/// Cutoff divider + comparator quiescent current, always present (A).
pub const QUIESCENT_A: f64 = 3.2e-6;
/// Effective MOSFET gate charge per toggle (C). Dominates TX cost via
/// `I = Q_g · f_toggle` ("frequent toggling of the MOSFET … draws notable
/// power through the MCU pin").
pub const GATE_CHARGE_C: f64 = 46.9e-9;

/// Operating mode of the tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerMode {
    /// Receiving/decoding DL beacons (edge interrupts).
    Rx {
        /// DL raw bit rate (bps).
        dl_bps: f64,
    },
    /// Backscattering an UL packet (timer interrupts + MOSFET).
    Tx {
        /// UL raw bit rate (bps).
        ul_bps: f64,
    },
    /// Deep sleep between duties.
    Idle,
}

impl PowerMode {
    /// The paper's default RX mode (250 bps DL).
    pub fn rx_default() -> Self {
        PowerMode::Rx { dl_bps: 250.0 }
    }

    /// The paper's default TX mode (375 bps UL).
    pub fn tx_default() -> Self {
        PowerMode::Tx { ul_bps: 375.0 }
    }

    /// Average MCU current in this mode (A).
    pub fn mcu_current(&self) -> f64 {
        match *self {
            PowerMode::Rx { dl_bps } => {
                // PIE symbols average 2.5 raw bits; each symbol costs two
                // edge ISRs (rising + falling).
                let symbols_per_s = dl_bps / 2.5;
                let isr_s = RX_ISR_CYCLES / MCU_CLOCK_HZ;
                let duty = (2.0 * symbols_per_s * isr_s).min(1.0);
                MCU_ACTIVE_A * duty + MCU_SLEEP_A * (1.0 - duty)
            }
            PowerMode::Tx { ul_bps } => {
                let isr_s = TX_ISR_CYCLES / MCU_CLOCK_HZ;
                let duty = (ul_bps * isr_s).min(1.0);
                MCU_ACTIVE_A * duty + MCU_SLEEP_A * (1.0 - duty)
            }
            PowerMode::Idle => MCU_SLEEP_A,
        }
    }

    /// Average peripheral (non-MCU) current in this mode (A).
    pub fn peripheral_current(&self) -> f64 {
        match *self {
            PowerMode::Rx { .. } => QUIESCENT_A + RX_ANALOG_A,
            PowerMode::Tx { ul_bps } => {
                // FM0 toggles the reflection switch up to once per raw bit.
                QUIESCENT_A + GATE_CHARGE_C * ul_bps
            }
            PowerMode::Idle => QUIESCENT_A,
        }
    }

    /// Total tag current (A).
    pub fn total_current(&self) -> f64 {
        self.mcu_current() + self.peripheral_current()
    }

    /// Total tag power at the nominal 2.0 V supply (W).
    pub fn power(&self) -> f64 {
        self.total_current() * SUPPLY_V
    }
}

/// Accumulates energy use across mode intervals — the per-slot accounting
/// the network simulator charges against the supercapacitor.
#[derive(Debug, Clone, Default)]
pub struct PowerLedger {
    energy_j: f64,
    time_s: f64,
    rx_s: f64,
    tx_s: f64,
    idle_s: f64,
}

impl PowerLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `dt` seconds spent in `mode`.
    pub fn spend(&mut self, mode: PowerMode, dt: f64) {
        assert!(dt >= 0.0);
        self.energy_j += mode.power() * dt;
        self.time_s += dt;
        match mode {
            PowerMode::Rx { .. } => self.rx_s += dt,
            PowerMode::Tx { .. } => self.tx_s += dt,
            PowerMode::Idle => self.idle_s += dt,
        }
    }

    /// Total energy consumed (J).
    pub fn energy(&self) -> f64 {
        self.energy_j
    }

    /// Total time accounted (s).
    pub fn time(&self) -> f64 {
        self.time_s
    }

    /// Time spent receiving (s).
    pub fn rx_time(&self) -> f64 {
        self.rx_s
    }

    /// Time spent transmitting (s).
    pub fn tx_time(&self) -> f64 {
        self.tx_s
    }

    /// Time spent idle (s).
    pub fn idle_time(&self) -> f64 {
        self.idle_s
    }

    /// Fraction of accounted time spent in RX or TX — the harvester duty
    /// cycle the paper's energy section keys on. 0.0 for an empty ledger.
    pub fn active_duty(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            (self.rx_s + self.tx_s) / self.time_s
        }
    }

    /// Average power over the accounted time (W).
    pub fn average_power(&self) -> f64 {
        if self.time_s == 0.0 {
            0.0
        } else {
            self.energy_j / self.time_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UA: f64 = 1e-6;
    const UW: f64 = 1e-6;

    #[test]
    fn table2_rx_row() {
        let m = PowerMode::rx_default();
        assert!(
            (m.mcu_current() / UA - 6.4).abs() < 0.4,
            "MCU {:.2} µA",
            m.mcu_current() / UA
        );
        assert!(
            (m.total_current() / UA - 12.4).abs() < 0.8,
            "total {:.2} µA",
            m.total_current() / UA
        );
        assert!(
            (m.power() / UW - 24.8).abs() < 1.6,
            "power {:.1} µW",
            m.power() / UW
        );
    }

    #[test]
    fn table2_tx_row() {
        let m = PowerMode::tx_default();
        assert!(
            (m.mcu_current() / UA - 4.7).abs() < 0.4,
            "MCU {:.2} µA",
            m.mcu_current() / UA
        );
        assert!(
            (m.total_current() / UA - 25.5).abs() < 1.5,
            "total {:.2} µA",
            m.total_current() / UA
        );
        assert!(
            (m.power() / UW - 51.0).abs() < 3.0,
            "power {:.1} µW",
            m.power() / UW
        );
    }

    #[test]
    fn table2_idle_row() {
        let m = PowerMode::Idle;
        assert!(
            (m.mcu_current() / UA - 0.6).abs() < 0.1,
            "MCU {:.2} µA",
            m.mcu_current() / UA
        );
        assert!(
            (m.total_current() / UA - 3.8).abs() < 0.3,
            "total {:.2} µA",
            m.total_current() / UA
        );
        assert!(
            (m.power() / UW - 7.6).abs() < 0.6,
            "power {:.1} µW",
            m.power() / UW
        );
    }

    #[test]
    fn interrupt_design_saves_over_80_percent() {
        // Sec. 4.3: "over 80 % less than continuous active mode" — compare
        // the interrupt-driven MCU currents against always-active.
        let active = MCU_ACTIVE_A;
        for m in [PowerMode::rx_default(), PowerMode::tx_default()] {
            let saving = 1.0 - m.mcu_current() / active;
            assert!(saving > 0.8, "{m:?}: saving {saving:.2}");
        }
    }

    #[test]
    fn tx_power_dominated_by_gate_charge() {
        // "primarily due to the frequent toggling of the MOSFET".
        let m = PowerMode::tx_default();
        assert!(m.peripheral_current() > m.mcu_current() * 2.0);
    }

    #[test]
    fn faster_rates_cost_more() {
        let slow = PowerMode::Tx { ul_bps: 93.75 };
        let fast = PowerMode::Tx { ul_bps: 3_000.0 };
        assert!(fast.power() > slow.power() * 3.0);
        let rx_slow = PowerMode::Rx { dl_bps: 125.0 };
        let rx_fast = PowerMode::Rx { dl_bps: 2_000.0 };
        assert!(rx_fast.power() > rx_slow.power());
    }

    #[test]
    fn duty_cycle_saturates_at_one() {
        // Pathologically fast rates cannot exceed always-active current.
        let m = PowerMode::Rx { dl_bps: 1e9 };
        assert!(m.mcu_current() <= MCU_ACTIVE_A + 1e-12);
    }

    #[test]
    fn rx_sustainable_on_weakest_tag() {
        // Sec. 6.2: RX (24.8 µW) must stay below the minimum charging power
        // (47.1 µW); TX (51.0 µW) exceeds it, hence duty-cycled operation.
        let rx = PowerMode::rx_default().power() / UW;
        let tx = PowerMode::tx_default().power() / UW;
        assert!(rx < 47.1);
        assert!(tx > 47.1, "TX is only sustainable duty-cycled");
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = PowerLedger::new();
        l.spend(PowerMode::rx_default(), 0.1);
        l.spend(PowerMode::tx_default(), 0.2);
        l.spend(PowerMode::Idle, 0.7);
        assert!((l.time() - 1.0).abs() < 1e-12);
        let expect = PowerMode::rx_default().power() * 0.1
            + PowerMode::tx_default().power() * 0.2
            + PowerMode::Idle.power() * 0.7;
        assert!((l.energy() - expect).abs() < 1e-15);
        assert!((l.average_power() - expect).abs() < 1e-15);
    }

    #[test]
    fn ledger_tracks_per_mode_time() {
        let mut l = PowerLedger::new();
        l.spend(PowerMode::rx_default(), 0.1);
        l.spend(PowerMode::tx_default(), 0.2);
        l.spend(PowerMode::Idle, 0.7);
        assert!((l.rx_time() - 0.1).abs() < 1e-12);
        assert!((l.tx_time() - 0.2).abs() < 1e-12);
        assert!((l.idle_time() - 0.7).abs() < 1e-12);
        assert!((l.active_duty() - 0.3).abs() < 1e-12);
        assert_eq!(PowerLedger::new().active_duty(), 0.0);
    }

    #[test]
    fn slot_cycle_energy_is_sustainable() {
        // One slot of the default protocol: ~0.12 s RX (beacon), ~0.19 s TX
        // (packet, worst case every slot), rest idle. Average power must be
        // below even the weakest tag's 47.1 µW charging power… with room to
        // duty-cycle TX at realistic periods.
        let mut l = PowerLedger::new();
        l.spend(PowerMode::rx_default(), 0.12);
        l.spend(PowerMode::Tx { ul_bps: 375.0 }, 0.19);
        l.spend(PowerMode::Idle, 0.69);
        let avg = l.average_power() / UW;
        assert!(avg < 47.1, "per-slot average {avg:.1} µW");
    }
}
