//! The multi-stage voltage multiplier (Sec. 3.2, Fig. 4).
//!
//! Cascaded voltage doublers amplify the PZT's AC output to MCU-usable
//! levels. The paper's formula: `V_DD = 2N (V_P − V_ON)` for an N-stage
//! pump with peak input `V_P` and per-diode drop `V_ON`. The CDBU0130L
//! Schottky diodes drop "potentially less than 0.15 V when the current is
//! below 1 mA" — we model the drop as current-dependent with that anchor.
//!
//! A charge pump is not an ideal source: its output impedance grows with
//! the stage count (≈ N / (f_sw · C_stage) for a Dickson pump), which is
//! what throttles the supercapacitor charging current and produces the
//! 4.5 s – 56.2 s charge-time spread of Fig. 11(b).

/// Schottky diode forward drop at sub-mA currents (V) — CDBU0130L.
pub const SCHOTTKY_DROP_V: f64 = 0.15;

/// Per-stage contribution to the pump's output resistance (Ω). Calibrated
/// so the 8-stage pump (33 kΩ) reproduces the paper's charge times.
pub const STAGE_RESISTANCE_OHM: f64 = 4_125.0;

/// Default stage count (Sec. 3.2: "we employ an 8-stage voltage
/// multiplier").
pub const DEFAULT_STAGES: u32 = 8;

/// An N-stage voltage multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplier {
    stages: u32,
    diode_drop: f64,
}

impl Default for Multiplier {
    fn default() -> Self {
        Self::new(DEFAULT_STAGES)
    }
}

impl Multiplier {
    /// Pump with `stages` voltage-doubler stages and the default Schottky
    /// diodes.
    pub fn new(stages: u32) -> Self {
        assert!(stages >= 1, "need at least one stage");
        Self {
            stages,
            diode_drop: SCHOTTKY_DROP_V,
        }
    }

    /// Pump with a custom diode drop (e.g. 0.7 V silicon diodes, for the
    /// ablation the paper motivates in Sec. 3.2).
    pub fn with_diode_drop(stages: u32, diode_drop: f64) -> Self {
        assert!(stages >= 1);
        assert!(diode_drop >= 0.0);
        Self { stages, diode_drop }
    }

    /// Stage count.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Voltage amplification ratio `2N`.
    pub fn ratio(&self) -> f64 {
        2.0 * f64::from(self.stages)
    }

    /// Open-circuit output voltage for a peak PZT input `vp`:
    /// `V_DD = 2N (V_P − V_ON)`, clamped at zero when the input cannot
    /// overcome the diodes.
    pub fn open_circuit_voltage(&self, vp: f64) -> f64 {
        (self.ratio() * (vp - self.diode_drop)).max(0.0)
    }

    /// Output (source) resistance of the pump.
    pub fn output_resistance(&self) -> f64 {
        f64::from(self.stages) * STAGE_RESISTANCE_OHM
    }

    /// Output current into a load held at `v_load` (A). The pump behaves as
    /// a Thevenin source `(V_oc, R_out)`; negative values clamp to zero
    /// (the diodes block reverse flow).
    pub fn output_current(&self, vp: f64, v_load: f64) -> f64 {
        ((self.open_circuit_voltage(vp) - v_load) / self.output_resistance()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_at_8_stages() {
        let m = Multiplier::new(8);
        // V_DD = 16 (V_P − 0.15).
        assert!((m.open_circuit_voltage(0.446) - 16.0 * (0.446 - 0.15)).abs() < 1e-12);
        assert!(
            (m.open_circuit_voltage(0.446) - 4.736).abs() < 0.01,
            "Tag 4's 4.74 V"
        );
    }

    #[test]
    fn tag11_voltage_anchor() {
        // Tag 11: 2.70 V at 16× ⇒ V_P ≈ 0.319 V.
        let m = Multiplier::new(8);
        let vp = 2.70 / 16.0 + SCHOTTKY_DROP_V;
        assert!((m.open_circuit_voltage(vp) - 2.70).abs() < 1e-9);
    }

    #[test]
    fn ratio_doubles_per_stage() {
        for n in 1..=8 {
            assert_eq!(Multiplier::new(n).ratio(), 2.0 * f64::from(n));
        }
    }

    #[test]
    fn sub_threshold_input_yields_zero() {
        let m = Multiplier::new(8);
        assert_eq!(m.open_circuit_voltage(0.10), 0.0);
        assert_eq!(m.open_circuit_voltage(0.15), 0.0);
    }

    #[test]
    fn silicon_diodes_are_much_worse() {
        // The Sec. 3.2 motivation for Schottky diodes: with 0.7 V drops the
        // weak tags harvest nothing at all.
        let schottky = Multiplier::new(8);
        let silicon = Multiplier::with_diode_drop(8, 0.7);
        let vp_tag11 = 0.319;
        assert!(
            schottky.open_circuit_voltage(vp_tag11) > 2.3,
            "Schottky activates tag 11"
        );
        assert_eq!(
            silicon.open_circuit_voltage(vp_tag11),
            0.0,
            "silicon strands tag 11"
        );
    }

    #[test]
    fn more_stages_more_voltage_but_more_resistance() {
        let vp = 0.5;
        let mut v_last = 0.0;
        let mut r_last = 0.0;
        for n in [2, 4, 6, 8] {
            let m = Multiplier::new(n);
            assert!(m.open_circuit_voltage(vp) > v_last);
            assert!(m.output_resistance() > r_last);
            v_last = m.open_circuit_voltage(vp);
            r_last = m.output_resistance();
        }
    }

    #[test]
    fn rise_is_not_proportional_to_stages() {
        // Fig. 11(a): "the rise is not proportional to the stage number
        // since voltage drops across diodes" — the *ratio* of output at 8 vs
        // 4 stages is exactly 2 for a fixed drop, but the output per stage
        // falls short of the ideal 2·N·V_P.
        let m8 = Multiplier::new(8);
        let ideal = 16.0 * 0.446;
        assert!(m8.open_circuit_voltage(0.446) < ideal * 0.7);
    }

    #[test]
    fn output_current_is_thevenin() {
        let m = Multiplier::new(8);
        let vp = 1.0;
        let voc = m.open_circuit_voltage(vp);
        let i0 = m.output_current(vp, 0.0);
        assert!((i0 - voc / m.output_resistance()).abs() < 1e-15);
        // Halfway to V_oc, half the current.
        assert!((m.output_current(vp, voc / 2.0) - i0 / 2.0).abs() < 1e-15);
        // At or above V_oc, no reverse flow.
        assert_eq!(m.output_current(vp, voc), 0.0);
        assert_eq!(m.output_current(vp, voc + 1.0), 0.0);
    }

    #[test]
    fn dead_carrier_harvests_nothing() {
        // The dynamic-network simulators model a reader outage by driving
        // tags with vp = 0 (carrier off). The Thevenin model must yield
        // exactly zero current then — the diodes block the cap from
        // back-feeding the pump — at any stage count and load voltage.
        for n in [1, 4, 8] {
            let m = Multiplier::new(n);
            for v_load in [0.0, 0.5, 2.2, 5.0] {
                assert_eq!(m.output_current(0.0, v_load), 0.0);
            }
        }
    }

    #[test]
    fn eight_stage_resistance_is_calibrated_33k() {
        assert!((Multiplier::new(8).output_resistance() - 33_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        Multiplier::new(0);
    }
}
