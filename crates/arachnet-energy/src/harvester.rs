//! The assembled harvesting chain: PZT → multiplier → supercap → cutoff.
//!
//! This module answers the questions the evaluation asks of the energy
//! subsystem (Sec. 6.2 / Fig. 11b):
//!
//! * how long does a tag take to charge from 0 V to the 2.3 V activation
//!   threshold? (paper: 4.5 s for the best-placed tag, 56.2 s for the
//!   worst);
//! * how long to *resume* from the 1.95 V cutoff floor? (paper: "within
//!   10 s", ≈ 15 % of the full charge for strong tags);
//! * what is the *net charging power* `½·C·V²_HTH / t`? (paper: 587.8 µW
//!   down to 47.1 µW).
//!
//! Charging follows the pump's Thevenin model: `dV/dt = (V_oc − V) / (R·C)`
//! minus leakage, which integrates to the familiar RC exponential; the
//! closed forms below are exact for zero leakage and the step simulator
//! handles the general case.

use crate::cutoff::LowVoltageCutoff;
use crate::multiplier::Multiplier;
use crate::storage::SuperCap;

/// The chain of one tag.
///
/// ```
/// use arachnet_energy::harvester::HarvestChain;
///
/// let chain = HarvestChain::paper();
/// // The strongest deployment site charges in seconds…
/// assert!(chain.full_charge_time(1.38).unwrap() < 6.0);
/// // …while an input below ~0.29 V can never reach the 2.3 V threshold.
/// assert!(chain.full_charge_time(0.25).is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HarvestChain {
    /// The voltage multiplier.
    pub multiplier: Multiplier,
    /// Capacitance of the store (F).
    pub capacitance: f64,
    /// The cutoff thresholds.
    pub cutoff: LowVoltageCutoff,
}

impl Default for HarvestChain {
    fn default() -> Self {
        Self::paper()
    }
}

impl HarvestChain {
    /// The paper's chain: 8-stage pump, 1 mF store, 2.3/1.95 V cutoff.
    pub fn paper() -> Self {
        Self {
            multiplier: Multiplier::default(),
            capacitance: crate::storage::DEFAULT_CAPACITANCE_F,
            cutoff: LowVoltageCutoff::paper(),
        }
    }

    /// Pump open-circuit voltage for a PZT peak input.
    pub fn open_circuit_voltage(&self, vp: f64) -> f64 {
        self.multiplier.open_circuit_voltage(vp)
    }

    /// Whether a tag at this input can ever activate (V_oc must exceed
    /// V_HTH).
    pub fn can_activate(&self, vp: f64) -> bool {
        self.open_circuit_voltage(vp) > self.cutoff.v_hth()
    }

    /// Exact (leakage-free) time to charge the store from `v0` to `v1`
    /// volts: `t = R·C · ln((V_oc − v0)/(V_oc − v1))`. `None` when the pump
    /// cannot reach `v1`.
    pub fn charge_time(&self, vp: f64, v0: f64, v1: f64) -> Option<f64> {
        assert!(v0 <= v1);
        let voc = self.open_circuit_voltage(vp);
        if voc <= v1 {
            return None;
        }
        let rc = self.multiplier.output_resistance() * self.capacitance;
        Some(rc * ((voc - v0) / (voc - v1)).ln())
    }

    /// Full activation charge: 0 V → V_HTH (the Fig. 11(b) metric).
    pub fn full_charge_time(&self, vp: f64) -> Option<f64> {
        self.charge_time(vp, 0.0, self.cutoff.v_hth())
    }

    /// Resume charge: V_LTH → V_HTH (the footnote-4 metric — "re-activation
    /// within 10 s" thanks to the cutoff).
    pub fn resume_charge_time(&self, vp: f64) -> Option<f64> {
        self.charge_time(vp, self.cutoff.v_lth(), self.cutoff.v_hth())
    }

    /// Net charging power `½·C·V²_HTH / t_full` (W) — how the paper turns
    /// charge times into the 587.8/47.1 µW figures.
    pub fn net_charging_power(&self, vp: f64) -> Option<f64> {
        let t = self.full_charge_time(vp)?;
        let v = self.cutoff.v_hth();
        Some(0.5 * self.capacitance * v * v / t)
    }

    /// Step-simulates charging with leakage and an optional constant load,
    /// returning the time to reach `v_target` from `v0` (or `None` if not
    /// reached within `max_s`).
    pub fn simulate_charge(
        &self,
        vp: f64,
        v0: f64,
        v_target: f64,
        load_current: f64,
        max_s: f64,
    ) -> Option<f64> {
        let mut cap = SuperCap::new(self.capacitance);
        cap.set_voltage(v0);
        let dt = 1e-3;
        let mut t = 0.0;
        while t < max_s {
            if cap.voltage() >= v_target {
                return Some(t);
            }
            let i = self.multiplier.output_current(vp, cap.voltage()) - load_current;
            cap.step(i, dt);
            t += dt;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// V_P of the best-placed tag (Tag 8's calibrated carrier voltage).
    const VP_STRONG: f64 = 1.385;
    /// V_P of the weakest tag (Tag 11).
    const VP_WEAK: f64 = 0.329;

    #[test]
    fn strong_tag_charges_in_seconds() {
        let h = HarvestChain::paper();
        let t = h.full_charge_time(VP_STRONG).unwrap();
        assert!((t - 4.5).abs() < 1.0, "paper: 4.5 s, model: {t:.1} s");
    }

    #[test]
    fn weak_tag_charges_in_a_minute() {
        let h = HarvestChain::paper();
        let t = h.full_charge_time(VP_WEAK).unwrap();
        assert!((t - 56.2).abs() < 12.0, "paper: 56.2 s, model: {t:.1} s");
    }

    #[test]
    fn net_charging_power_range_matches_paper() {
        let h = HarvestChain::paper();
        let p_strong = h.net_charging_power(VP_STRONG).unwrap() * 1e6;
        let p_weak = h.net_charging_power(VP_WEAK).unwrap() * 1e6;
        assert!(
            (p_strong - 587.8).abs() < 120.0,
            "paper: 587.8 µW, model {p_strong:.1}"
        );
        assert!(
            (p_weak - 47.1).abs() < 12.0,
            "paper: 47.1 µW, model {p_weak:.1}"
        );
    }

    #[test]
    fn resume_is_about_15_percent_for_strong_tags() {
        // Appendix B: "recharging resumes from 1.95 V and requires only
        // 15.2 % of the full charging duration".
        let h = HarvestChain::paper();
        let frac =
            h.resume_charge_time(VP_STRONG).unwrap() / h.full_charge_time(VP_STRONG).unwrap();
        assert!((frac - 0.152).abs() < 0.03, "resume fraction {frac:.3}");
    }

    #[test]
    fn resume_within_10_seconds_for_typical_tags() {
        // Footnote 4: "enabling re-activation within 10 s" — holds for all
        // but the most starved placements.
        let h = HarvestChain::paper();
        for vp in [1.385, 1.0, 0.7, 0.5] {
            let t = h.resume_charge_time(vp).unwrap();
            assert!(t < 10.0, "vp={vp}: resume {t:.1} s");
        }
    }

    #[test]
    fn charge_time_monotone_in_input() {
        let h = HarvestChain::paper();
        let mut last = f64::MAX;
        for vp in [0.33, 0.40, 0.50, 0.70, 1.0, 1.385] {
            let t = h.full_charge_time(vp).unwrap();
            assert!(t < last, "charge time must fall with input voltage");
            last = t;
        }
    }

    #[test]
    fn insufficient_input_never_charges() {
        let h = HarvestChain::paper();
        // V_oc must exceed 2.3 V: V_P ≤ 0.29 V cannot activate.
        assert!(h.full_charge_time(0.29).is_none());
        assert!(!h.can_activate(0.29));
        assert!(h.can_activate(0.30));
    }

    #[test]
    fn simulated_charge_matches_closed_form() {
        let h = HarvestChain::paper();
        let analytic = h.full_charge_time(1.0).unwrap();
        let simulated = h.simulate_charge(1.0, 0.0, 2.3, 0.0, 100.0).unwrap();
        // Leakage in the simulation makes it slightly slower.
        assert!(simulated >= analytic * 0.98, "{simulated} vs {analytic}");
        assert!(simulated <= analytic * 1.10, "{simulated} vs {analytic}");
    }

    #[test]
    fn load_slows_or_prevents_charging() {
        let h = HarvestChain::paper();
        let free = h.simulate_charge(0.5, 1.95, 2.3, 0.0, 200.0).unwrap();
        // A 25 µW load (RX mode at 2 V ≈ 12.4 µA) slows the weak tag down.
        let loaded = h.simulate_charge(0.5, 1.95, 2.3, 12.4e-6, 200.0).unwrap();
        assert!(loaded > free);
        // A load exceeding the charge current stalls charging entirely.
        assert!(h.simulate_charge(0.33, 1.95, 2.3, 50e-6, 30.0).is_none());
    }

    #[test]
    fn charging_power_exceeds_rx_cost_for_all_deployed_tags() {
        // Sec. 6.2's sustainability argument: even the minimum charging
        // power (47.1 µW) exceeds the 24.8 µW RX cost, so duty-cycled
        // operation is sustainable everywhere.
        let h = HarvestChain::paper();
        let p_weak = h.net_charging_power(VP_WEAK).unwrap() * 1e6;
        assert!(
            p_weak > 24.8,
            "weakest tag cannot sustain RX: {p_weak:.1} µW"
        );
    }
}
