//! Property-based tests over the energy chain (arachnet-testkit).

use arachnet_energy::cutoff::LowVoltageCutoff;
use arachnet_energy::harvester::HarvestChain;
use arachnet_energy::ledger::{PowerLedger, PowerMode};
use arachnet_energy::multiplier::Multiplier;
use arachnet_energy::storage::SuperCap;
use arachnet_testkit::gen;
use arachnet_testkit::{check, prop_assert};

/// Pump output voltage is monotone in the input and in the stage count.
#[test]
fn multiplier_is_monotone() {
    let g = gen::zip(gen::f64_range(0.0, 2.0), gen::u32_range(1, 12));
    check("multiplier_is_monotone", &g, |&(vp, stages)| {
        let m = Multiplier::new(stages);
        let m_next = Multiplier::new(stages + 1);
        prop_assert!(m.open_circuit_voltage(vp + 0.1) >= m.open_circuit_voltage(vp));
        prop_assert!(m_next.open_circuit_voltage(vp) >= m.open_circuit_voltage(vp));
        prop_assert!(m.open_circuit_voltage(vp) >= 0.0);
        Ok(())
    });
}

/// Charging time decreases with input voltage and increases with the
/// voltage span, whenever defined.
#[test]
fn charge_time_monotonicity() {
    let g = gen::zip(gen::f64_range(0.35, 1.5), gen::f64_range(0.5, 2.2));
    check("charge_time_monotonicity", &g, |&(vp, v1)| {
        let h = HarvestChain::paper();
        let t1 = h.charge_time(vp, 0.0, v1).unwrap();
        let t2 = h.charge_time(vp + 0.05, 0.0, v1).unwrap();
        prop_assert!(t2 <= t1, "more input must not charge slower");
        let t3 = h.charge_time(vp, 0.0, v1 * 0.9).unwrap();
        prop_assert!(t3 <= t1, "a lower target must not take longer");
        prop_assert!(t1.is_finite() && t1 > 0.0);
        Ok(())
    });
}

/// The cutoff never oscillates inside the dead band: an arbitrary voltage
/// walk produces transitions only at threshold crossings.
#[test]
fn cutoff_transitions_only_at_thresholds() {
    let g = gen::vec(gen::f64_range(0.0, 3.0), 1, 199);
    check("cutoff_transitions_only_at_thresholds", &g, |walk| {
        let mut c = LowVoltageCutoff::paper();
        for &v in walk {
            let was = c.is_connected();
            let event = c.update(v);
            match event {
                Some(arachnet_energy::cutoff::CutoffEvent::PoweredOn) => {
                    prop_assert!(!was && v >= c.v_hth());
                }
                Some(arachnet_energy::cutoff::CutoffEvent::PoweredOff) => {
                    prop_assert!(was && v <= c.v_lth());
                }
                None => {}
            }
        }
        Ok(())
    });
}

/// Capacitor stepping conserves charge up to leakage: with zero leak, the
/// voltage change equals ∫i/C exactly.
#[test]
fn capacitor_integrates_current() {
    let g = gen::zip(
        gen::vec(gen::f64_range(-50e-6, 200e-6), 1, 99),
        gen::f64_range(0.0, 2.0),
    );
    check("capacitor_integrates_current", &g, |(currents, v0)| {
        let mut c = SuperCap::new(1.0e-3).with_leak(0.0);
        c.set_voltage(*v0);
        let dt = 0.5;
        let mut expected = *v0;
        for &i in currents {
            expected = (expected + i * dt / 1.0e-3).max(0.0);
            c.step(i, dt);
            prop_assert!((c.voltage() - expected).abs() < 1e-12);
        }
        Ok(())
    });
}

/// The power ledger is additive: splitting an interval never changes the
/// total energy.
#[test]
fn ledger_is_additive() {
    let g = gen::zip(gen::f64_range(0.001, 10.0), gen::f64_range(0.01, 0.99));
    check("ledger_is_additive", &g, |&(dt, split)| {
        let mode = PowerMode::rx_default();
        let mut whole = PowerLedger::new();
        whole.spend(mode, dt);
        let mut parts = PowerLedger::new();
        parts.spend(mode, dt * split);
        parts.spend(mode, dt * (1.0 - split));
        prop_assert!((whole.energy() - parts.energy()).abs() < 1e-15);
        prop_assert!((whole.time() - parts.time()).abs() < 1e-12);
        Ok(())
    });
}

/// Power modes are ordered TX > RX > IDLE at any legal rate pair.
#[test]
fn mode_power_ordering() {
    let g = gen::zip(gen::f64_range(90.0, 3000.0), gen::f64_range(125.0, 2000.0));
    check("mode_power_ordering", &g, |&(ul, dl)| {
        let tx = PowerMode::Tx { ul_bps: ul };
        let rx = PowerMode::Rx { dl_bps: dl };
        prop_assert!(tx.power() > PowerMode::Idle.power());
        prop_assert!(rx.power() > PowerMode::Idle.power());
        Ok(())
    });
}
