//! Property-based tests over the energy chain.

use arachnet_energy::cutoff::LowVoltageCutoff;
use arachnet_energy::harvester::HarvestChain;
use arachnet_energy::ledger::{PowerLedger, PowerMode};
use arachnet_energy::multiplier::Multiplier;
use arachnet_energy::storage::SuperCap;
use proptest::prelude::*;

proptest! {
    /// Pump output voltage is monotone in the input and in the stage count.
    #[test]
    fn multiplier_is_monotone(vp in 0.0f64..2.0, stages in 1u32..12) {
        let m = Multiplier::new(stages);
        let m_next = Multiplier::new(stages + 1);
        prop_assert!(m.open_circuit_voltage(vp + 0.1) >= m.open_circuit_voltage(vp));
        prop_assert!(m_next.open_circuit_voltage(vp) >= m.open_circuit_voltage(vp));
        prop_assert!(m.open_circuit_voltage(vp) >= 0.0);
    }

    /// Charging time decreases with input voltage and increases with the
    /// voltage span, whenever defined.
    #[test]
    fn charge_time_monotonicity(vp in 0.35f64..1.5, v1 in 0.5f64..2.2) {
        let h = HarvestChain::paper();
        let t1 = h.charge_time(vp, 0.0, v1).unwrap();
        let t2 = h.charge_time(vp + 0.05, 0.0, v1).unwrap();
        prop_assert!(t2 <= t1, "more input must not charge slower");
        let t3 = h.charge_time(vp, 0.0, v1 * 0.9).unwrap();
        prop_assert!(t3 <= t1, "a lower target must not take longer");
        prop_assert!(t1.is_finite() && t1 > 0.0);
    }

    /// The cutoff never oscillates inside the dead band: an arbitrary
    /// voltage walk produces transitions only at threshold crossings.
    #[test]
    fn cutoff_transitions_only_at_thresholds(walk in prop::collection::vec(0.0f64..3.0, 1..200)) {
        let mut c = LowVoltageCutoff::paper();
        for &v in &walk {
            let was = c.is_connected();
            let event = c.update(v);
            match event {
                Some(arachnet_energy::cutoff::CutoffEvent::PoweredOn) => {
                    prop_assert!(!was && v >= c.v_hth());
                }
                Some(arachnet_energy::cutoff::CutoffEvent::PoweredOff) => {
                    prop_assert!(was && v <= c.v_lth());
                }
                None => {}
            }
        }
    }

    /// Capacitor stepping conserves charge up to leakage: with zero leak,
    /// the voltage change equals ∫i/C exactly.
    #[test]
    fn capacitor_integrates_current(
        currents in prop::collection::vec(-50e-6f64..200e-6, 1..100),
        v0 in 0.0f64..2.0,
    ) {
        let mut c = SuperCap::new(1.0e-3).with_leak(0.0);
        c.set_voltage(v0);
        let dt = 0.5;
        let mut expected = v0;
        for &i in &currents {
            expected = (expected + i * dt / 1.0e-3).max(0.0);
            c.step(i, dt);
            prop_assert!((c.voltage() - expected).abs() < 1e-12);
        }
    }

    /// The power ledger is additive: splitting an interval never changes
    /// the total energy.
    #[test]
    fn ledger_is_additive(dt in 0.001f64..10.0, split in 0.01f64..0.99) {
        let mode = PowerMode::rx_default();
        let mut whole = PowerLedger::new();
        whole.spend(mode, dt);
        let mut parts = PowerLedger::new();
        parts.spend(mode, dt * split);
        parts.spend(mode, dt * (1.0 - split));
        prop_assert!((whole.energy() - parts.energy()).abs() < 1e-15);
        prop_assert!((whole.time() - parts.time()).abs() < 1e-12);
    }

    /// Power modes are ordered TX > RX > IDLE at any legal rate pair.
    #[test]
    fn mode_power_ordering(ul in 90.0f64..3000.0, dl in 125.0f64..2000.0) {
        let tx = PowerMode::Tx { ul_bps: ul };
        let rx = PowerMode::Rx { dl_bps: dl };
        prop_assert!(tx.power() > PowerMode::Idle.power());
        prop_assert!(rx.power() > PowerMode::Idle.power());
    }
}
