//! Timed-event scenarios: dynamic-network stress descriptions.
//!
//! Every experiment the paper reproduces runs a *static* deployment: the
//! tag set, the channel, and the reader are fixed for the whole run. A
//! [`Scenario`] makes time a first-class dimension — it is a validated,
//! zero-dependency description of timed disturbances that the simulators
//! ([`crate::slotsim::SlotSim`], [`crate::cosim::CoSim`], and the
//! waveform-level drift path in [`crate::wavesim`]) replay deterministically:
//!
//! * **tag churn** — [`ScenarioEvent::TagJoin`] /
//!   [`ScenarioEvent::TagLeave`] / [`ScenarioEvent::Brownout`] (forced
//!   discharge → brownout-death, then natural recharge);
//! * **reader duty-cycling** — [`ScenarioEvent::ReaderOutage`]: the reader
//!   goes dark for a window, so tags see beacon timeouts *and* harvest
//!   nothing (the carrier is off);
//! * **channel weather** — [`ScenarioEvent::NoiseBurst`] (slot-domain loss
//!   storm) and [`ScenarioEvent::ChannelEpoch`] (PHY drift epoch marker;
//!   the waveform simulators pair it with
//!   `biw_channel::timevarying::TimeVaryingChannel`).
//!
//! Scenarios are plain data: replaying one draws no randomness of its own,
//! so a simulation with a scenario attached stays bit-identical at any
//! `--threads` count, and a simulation with *no* scenario attached is
//! byte-identical to the pre-scenario code path.
//!
//! The **re-convergence-time** metric is defined here too: each disruption
//! (join/leave/brownout at its event slot; outage/burst at its *end* slot,
//! when recovery can begin) restarts the convergence detector, and the
//! sample closes when the schedule is collision-free again (32 consecutive
//! non-collision slots, the paper's Sec. 6.4 criterion). The sample value
//! is the number of slots from the disruption until the streak completes.
//!
//! ```
//! use arachnet_core::slot::Period;
//! use arachnet_sim::scenario::Scenario;
//!
//! let p4 = Period::new(4).unwrap();
//! let s = Scenario::builder()
//!     .leave(500, 7)
//!     .join(600, 7, p4)
//!     .outage(800, 40)
//!     .build()
//!     .unwrap();
//! assert_eq!(s.disruption_slots(), vec![500, 600, 840]);
//! ```

use arachnet_core::slot::Period;

use crate::config::ConfigError;

/// One timed disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioEvent {
    /// A tag (known to the reader's registry) joins the live deployment.
    TagJoin {
        /// Tag id.
        tid: u8,
        /// Its transmission period.
        period: Period,
    },
    /// A tag leaves the deployment (removed physically; it will never
    /// transmit again unless a later [`ScenarioEvent::TagJoin`] re-adds it).
    TagLeave {
        /// Tag id.
        tid: u8,
    },
    /// A tag's storage cap is force-discharged (brownout-death). Unlike
    /// [`ScenarioEvent::TagLeave`] the device stays deployed and recharges
    /// from the carrier, eventually re-arriving on its own.
    Brownout {
        /// Tag id.
        tid: u8,
    },
    /// The reader goes dark for `slots` slots: no beacons, no feedback,
    /// no carrier (tags cannot harvest during the window).
    ReaderOutage {
        /// Window length in slots.
        slots: u64,
    },
    /// A noise storm: for `slots` slots the slot-domain loss probabilities
    /// are replaced by the given values.
    NoiseBurst {
        /// Window length in slots.
        slots: u64,
        /// Per-tag per-beacon downlink loss probability during the storm.
        dl_loss: f64,
        /// Clean-slot uplink decode-failure probability during the storm.
        ul_loss: f64,
    },
    /// The physical channel enters drift epoch `epoch`. Slot-level
    /// simulators record the marker; waveform-level simulators switch the
    /// `TimeVaryingChannel` epoch.
    ChannelEpoch {
        /// Epoch index within the drift schedule.
        epoch: u16,
    },
}

impl ScenarioEvent {
    /// Window length for windowed events, 0 otherwise.
    fn duration(&self) -> u64 {
        match self {
            ScenarioEvent::ReaderOutage { slots } | ScenarioEvent::NoiseBurst { slots, .. } => {
                *slots
            }
            _ => 0,
        }
    }

    /// Whether the event disrupts the schedule (defines a re-convergence
    /// measurement origin). Epoch markers do not by themselves.
    fn is_disruptive(&self) -> bool {
        !matches!(self, ScenarioEvent::ChannelEpoch { .. })
    }
}

/// A [`ScenarioEvent`] pinned to a slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Slot (0-based sim slot index) at which the event fires, before the
    /// slot's beacon.
    pub at: u64,
    /// What happens.
    pub event: ScenarioEvent,
}

/// A validated, replayable schedule of timed events (sorted by slot;
/// same-slot events fire in insertion order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scenario {
    events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario (the identity: attaching it changes nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Returns a validating builder.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder { events: Vec::new() }
    }

    /// The events, sorted by slot (stable for same-slot events).
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// True when the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `(tid, period)` of every joined tag — the reader's a-priori registry
    /// must include these ("all tags periods are known to the reader",
    /// Sec. 5.6, extended to future joiners).
    pub fn join_registry(&self) -> Vec<(u8, Period)> {
        let mut out: Vec<(u8, Period)> = Vec::new();
        for ev in &self.events {
            if let ScenarioEvent::TagJoin { tid, period } = ev.event {
                if !out.iter().any(|&(t, _)| t == tid) {
                    out.push((tid, period));
                }
            }
        }
        out
    }

    /// Slots at which re-convergence measurements begin: the event slot for
    /// churn events, the *end* of the window for outages and bursts (the
    /// schedule cannot start recovering before the disturbance ends).
    /// Sorted and deduplicated.
    pub fn disruption_slots(&self) -> Vec<u64> {
        let mut slots: Vec<u64> = self
            .events
            .iter()
            .filter(|ev| ev.event.is_disruptive())
            .map(|ev| ev.at + ev.event.duration())
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots
    }

    /// Last slot at which the scenario is still doing something: the
    /// maximum event end. 0 for an empty scenario.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|ev| ev.at + ev.event.duration())
            .max()
            .unwrap_or(0)
    }
}

/// Validating builder for [`Scenario`] (mirrors `arachnet-sim::config`:
/// typed [`ConfigError`]s instead of panics-later).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    events: Vec<TimedEvent>,
}

impl ScenarioBuilder {
    fn push(mut self, at: u64, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent { at, event });
        self
    }

    /// Tag `tid` joins at slot `at` with the given period.
    pub fn join(self, at: u64, tid: u8, period: Period) -> Self {
        self.push(at, ScenarioEvent::TagJoin { tid, period })
    }

    /// Tag `tid` leaves at slot `at`.
    pub fn leave(self, at: u64, tid: u8) -> Self {
        self.push(at, ScenarioEvent::TagLeave { tid })
    }

    /// Tag `tid` is force-discharged (brownout-death) at slot `at`.
    pub fn brownout(self, at: u64, tid: u8) -> Self {
        self.push(at, ScenarioEvent::Brownout { tid })
    }

    /// The reader goes dark for `slots` slots starting at slot `at`.
    pub fn outage(self, at: u64, slots: u64) -> Self {
        self.push(at, ScenarioEvent::ReaderOutage { slots })
    }

    /// A loss storm of `slots` slots starting at `at`, with the given
    /// downlink/uplink loss probabilities while it lasts.
    pub fn noise_burst(self, at: u64, slots: u64, dl_loss: f64, ul_loss: f64) -> Self {
        self.push(
            at,
            ScenarioEvent::NoiseBurst {
                slots,
                dl_loss,
                ul_loss,
            },
        )
    }

    /// The channel enters drift epoch `epoch` at slot `at`.
    pub fn channel_epoch(self, at: u64, epoch: u16) -> Self {
        self.push(at, ScenarioEvent::ChannelEpoch { epoch })
    }

    /// Validates and produces the scenario. Events are sorted by slot
    /// (stable, so same-slot events keep insertion order).
    pub fn build(mut self) -> Result<Scenario, ConfigError> {
        for ev in &self.events {
            match ev.event {
                ScenarioEvent::ReaderOutage { slots: 0 } => {
                    return Err(ConfigError::NotPositive {
                        field: "outage.slots",
                        value: 0.0,
                    });
                }
                ScenarioEvent::ReaderOutage { .. } => {}
                ScenarioEvent::NoiseBurst {
                    slots,
                    dl_loss,
                    ul_loss,
                } => {
                    if slots == 0 {
                        return Err(ConfigError::NotPositive {
                            field: "noise_burst.slots",
                            value: 0.0,
                        });
                    }
                    if !(0.0..=1.0).contains(&dl_loss) {
                        return Err(ConfigError::ProbabilityOutOfRange {
                            field: "noise_burst.dl_loss",
                            value: dl_loss,
                        });
                    }
                    if !(0.0..=1.0).contains(&ul_loss) {
                        return Err(ConfigError::ProbabilityOutOfRange {
                            field: "noise_burst.ul_loss",
                            value: ul_loss,
                        });
                    }
                }
                _ => {}
            }
        }
        self.events.sort_by_key(|ev| ev.at);
        // Internal churn consistency: a tag may not join twice without an
        // intervening leave (its initial pattern-presence is checked by the
        // simulator at attach time, not here).
        let mut joined: Vec<u8> = Vec::new();
        for ev in &self.events {
            match ev.event {
                ScenarioEvent::TagJoin { tid, .. } => {
                    if joined.contains(&tid) {
                        return Err(ConfigError::DuplicateTag { tid });
                    }
                    joined.push(tid);
                }
                ScenarioEvent::TagLeave { tid } => joined.retain(|&t| t != tid),
                _ => {}
            }
        }
        Ok(Scenario {
            events: self.events,
        })
    }
}

/// One re-convergence measurement: a disruption and how long the network
/// took to become collision-free again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconvergenceSample {
    /// Slot at which the measured disruption fired (window end for
    /// outages/bursts).
    pub disruption_slot: u64,
    /// Slots from the disruption until 32 consecutive non-collision slots
    /// were observed; `None` if the run ended first.
    pub slots: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> Period {
        Period::new(v).unwrap()
    }

    #[test]
    fn builder_sorts_and_reports_disruptions() {
        let s = Scenario::builder()
            .outage(800, 40)
            .leave(500, 7)
            .join(600, 7, p(4))
            .channel_epoch(100, 1)
            .build()
            .unwrap();
        let ats: Vec<u64> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![100, 500, 600, 800]);
        // Epoch markers are not disruptions; the outage disrupts at its end.
        assert_eq!(s.disruption_slots(), vec![500, 600, 840]);
        assert_eq!(s.horizon(), 840);
        assert_eq!(s.join_registry(), vec![(7, p(4))]);
    }

    #[test]
    fn builder_rejects_zero_windows_and_bad_probabilities() {
        assert!(matches!(
            Scenario::builder().outage(10, 0).build(),
            Err(ConfigError::NotPositive { field: "outage.slots", .. })
        ));
        assert!(matches!(
            Scenario::builder().noise_burst(10, 5, 1.5, 0.0).build(),
            Err(ConfigError::ProbabilityOutOfRange { field: "noise_burst.dl_loss", .. })
        ));
        assert!(matches!(
            Scenario::builder().noise_burst(10, 5, 0.5, -0.1).build(),
            Err(ConfigError::ProbabilityOutOfRange { field: "noise_burst.ul_loss", .. })
        ));
    }

    #[test]
    fn builder_rejects_double_join_without_leave() {
        let err = Scenario::builder()
            .join(10, 5, p(4))
            .join(20, 5, p(4))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateTag { tid: 5 });
        // Leave in between makes it legal (churn cycle).
        assert!(Scenario::builder()
            .join(10, 5, p(4))
            .leave(15, 5)
            .join(20, 5, p(4))
            .build()
            .is_ok());
    }

    #[test]
    fn empty_scenario_is_identity_shaped() {
        let s = Scenario::empty();
        assert!(s.is_empty());
        assert_eq!(s.horizon(), 0);
        assert!(s.disruption_slots().is_empty());
        assert!(s.join_registry().is_empty());
    }

    #[test]
    fn same_slot_events_keep_insertion_order() {
        let s = Scenario::builder()
            .leave(100, 1)
            .leave(100, 2)
            .join(100, 13, p(8))
            .build()
            .unwrap();
        assert!(matches!(s.events()[0].event, ScenarioEvent::TagLeave { tid: 1 }));
        assert!(matches!(s.events()[1].event, ScenarioEvent::TagLeave { tid: 2 }));
        assert!(matches!(s.events()[2].event, ScenarioEvent::TagJoin { tid: 13, .. }));
        // One shared disruption origin for the whole storm.
        assert_eq!(s.disruption_slots(), vec![100]);
    }
}
