//! Multi-reader fleet simulation: K reader cells sharing one Body-in-White.
//!
//! Two engines, mirroring the single-reader split:
//!
//! * [`FleetWaveSim`] — waveform-level: every cell's tag modulates its own
//!   packet, the [`biw_channel::fleet::FleetChannel`] matrix superposes all
//!   K carriers (plus reader→reader and reader→tag leakage) at one reader's
//!   DAQ, and the [`arachnet_reader::fleet::FleetReceiver`] decodes after
//!   rejecting the foreign carriers. A one-reader fleet reproduces
//!   [`WaveSim`](crate::wavesim::WaveSim) bit for bit.
//! * [`run_fleet`] — slot-level: each cell replays its own dynamic-network
//!   [`Scenario`] under the shared FDMA [`FleetPlan`], sharded over the
//!   sweep worker pool as a K×trials matrix. Cell `c`, trial `t` always
//!   runs at seed `trial_seed(trial_seed(base, c), t)`, so results are
//!   byte-identical at any `--threads`.
//!
//! Fleet-level telemetry rides on the flight recorder: each observed cell
//! trial opens with an [`EventKind::ReaderAssigned`] stamp, and cells that
//! share a sub-band (the plan ran out of spectrum, or the co-channel
//! baseline) carry an [`EventKind::CrossReaderCollision`] marker counting
//! their same-band neighbours.

use std::cell::RefCell;

use arachnet_core::fm0::Fm0Encoder;
use arachnet_core::packet::UlPacket;
use arachnet_core::rng::TagRng;
use arachnet_obs::{DecodeFailReason, Event, EventKind, Recorder, RecorderSnapshot};
use arachnet_reader::fleet::{FleetPlan, FleetReceiver, FleetRxScratch};
use arachnet_tag::mcu::McuClock;
use biw_channel::channel::ChannelConfig;
use biw_channel::fleet::{FleetChannel, FleetChannelConfig};
use biw_channel::noise::NoiseConfig;
use biw_channel::pzt::PztState;

use crate::config::ConfigError;
use crate::patterns::Pattern;
use crate::scenario::{ReconvergenceSample, Scenario};
use crate::slotsim::run_scenario_trial;
use crate::sweep::{
    run_matrix_sweep, trial_seed, SweepConfig, SweepStats, TrialError, TrialResult,
};

/// Reusable fleet PHY working set: one PZT state stream per reader cell,
/// the superposed reader-side waveform, and the fleet receiver's scratch.
/// Capacities persist between packets; contents never influence results.
#[derive(Debug, Default)]
pub struct FleetPhyScratch {
    /// Per-cell per-sample PZT state streams for the packet under synthesis.
    pub states: Vec<Vec<PztState>>,
    /// Superposed waveform at the observed reader's DAQ.
    pub wave: Vec<f64>,
    /// Fleet receiver scratch (rejection buffer + single-reader DSP).
    pub rx: FleetRxScratch,
}

thread_local! {
    static FLEET_SCRATCH: RefCell<FleetPhyScratch> = RefCell::new(FleetPhyScratch::default());
}

/// Runs `f` with this thread's persistent [`FleetPhyScratch`]. Do not nest
/// calls (the inner one would re-borrow).
pub fn with_fleet_scratch<R>(f: impl FnOnce(&mut FleetPhyScratch) -> R) -> R {
    FLEET_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Result of a multi-reader uplink packet-loss trial at one reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetUplinkResult {
    /// Packets sent by the observed reader's own tag.
    pub sent: u64,
    /// Packets not decoded (or decoded wrong) at the observed reader.
    pub lost: u64,
    /// Packets where cross-reader interference was implicated: the slot
    /// was lost or the IQ clustering flagged a collision while foreign
    /// readers were active. Always 0 for a one-reader fleet.
    pub cross_collisions: u64,
    /// PSD-band SNR (dB) of the representative (index-0) waveform, after
    /// the receiver's interference rejection.
    pub snr_db: f64,
}

/// Waveform-level co-simulation of a reader fleet over one BiW.
///
/// Every cell runs the *same* tag id per trial — the worst case for
/// frequency-space division, since the foreign copies of the tag modulate
/// independent payloads on their own carriers and all of it lands on the
/// observed reader's DAQ.
pub struct FleetWaveSim {
    channel: FleetChannel,
    plan: FleetPlan,
    seed: u64,
}

impl FleetWaveSim {
    /// Fleet environment over the plan's carriers with the given noise
    /// floor at every cell.
    pub fn new(plan: FleetPlan, seed: u64, noise: NoiseConfig) -> Self {
        let channel = FleetChannel::new(FleetChannelConfig {
            base: ChannelConfig {
                noise,
                seed,
                ..ChannelConfig::default()
            },
            ..FleetChannelConfig::paper(plan.carriers().to_vec())
        });
        Self {
            channel,
            plan,
            seed,
        }
    }

    /// Default environment: the same calibrated noise floor as
    /// [`WaveSim::paper`](crate::wavesim::WaveSim::paper), so a one-reader
    /// fleet is the single-reader simulator exactly.
    pub fn paper(plan: FleetPlan, seed: u64) -> Self {
        Self::new(
            plan,
            seed,
            NoiseConfig {
                floor_sigma: 0.013,
                ..NoiseConfig::default()
            },
        )
    }

    /// The underlying channel matrix.
    pub fn channel(&self) -> &FleetChannel {
        &self.channel
    }

    /// The frequency plan this fleet runs under.
    pub fn plan(&self) -> &FleetPlan {
        &self.plan
    }

    /// A fleet receiver for `reader` at `ul_bps`, with interference
    /// rejection enabled. Build one per (reader, rate) — not per packet.
    pub fn fleet_rx(&self, reader: usize, ul_bps: f64) -> FleetReceiver {
        FleetReceiver::new(&self.plan, reader, ul_bps)
    }

    /// Base seed for `reader`'s (tag, rate) packet sequence: packet `i`
    /// uses `trial_seed(base, i)`. Reader 0 degenerates to
    /// [`WaveSim::uplink_base_seed`](crate::wavesim::WaveSim::uplink_base_seed),
    /// which is what makes the K=1 fleet bit-identical to the
    /// single-reader path.
    pub fn uplink_base_seed(&self, reader: usize, tid: u8, ul_bps: f64) -> u64 {
        trial_seed(
            self.seed ^ ((reader as u64) << 40) ^ (u64::from(tid) << 32),
            ul_bps.to_bits(),
        )
    }

    /// Expands raw FM0 bits into a padded per-sample PZT state stream —
    /// the same expansion the single-reader `WaveSim` performs.
    fn expand_states_into(raw: &arachnet_core::bits::BitBuf, spb: usize, pad: usize, out: &mut Vec<PztState>) {
        out.clear();
        out.reserve(raw.len() * spb + 2 * pad);
        out.extend(std::iter::repeat_n(PztState::Absorptive, pad));
        for bit in raw.iter() {
            let s = if bit {
                PztState::Reflective
            } else {
                PztState::Absorptive
            };
            out.extend(std::iter::repeat_n(s, spb));
        }
        out.extend(std::iter::repeat_n(PztState::Absorptive, pad));
    }

    /// Synthesizes cell `c`'s seeded packet into `out` and returns the
    /// packet that cell's tag sent (or the packet-field violation for an
    /// out-of-range `tid`). The recipe (payload draw, supply sag, clock
    /// stretch) matches the single-reader simulator exactly; each cell's
    /// clock is salted by its reader index (cell 0 unsalted).
    fn synth_cell_states(
        &self,
        c: usize,
        tid: u8,
        ul_bps: f64,
        packet_seed: u64,
        out: &mut Vec<PztState>,
    ) -> Result<UlPacket, arachnet_core::packet::PacketError> {
        let fs = self.channel.cell(c).config().sample_rate;
        let mut rng = TagRng::new(packet_seed);
        let payload = (rng.next_u64() & 0xFFF) as u16;
        let pkt = UlPacket::new(tid, payload)?;
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(pkt.to_bits().iter());
        let mut clock = McuClock::for_tag(self.seed ^ ((c as u64) << 40), tid);
        clock.set_supply(1.95 + 0.35 * rng.unit_f64());
        let spb = (fs * (1.0 / ul_bps) * (12_000.0 / clock.actual_hz())).round() as usize;
        Self::expand_states_into(&raw, spb, 6 * spb, out);
        Ok(pkt)
    }

    /// Sends packet `i` of every cell's sequence and decodes at `reader`.
    /// Returns `(own packet, decode)`, or a [`TrialError`] (trial = packet
    /// index) when `reader` is not in the fleet or `tid` overflows the
    /// packet's 4-bit TID field. Pure in `(reader, tid, i)`.
    fn uplink_packet_at(
        &self,
        rx: &FleetReceiver,
        reader: usize,
        tid: u8,
        i: u64,
        s: &mut FleetPhyScratch,
    ) -> Result<(UlPacket, arachnet_reader::rx::SlotRx), TrialError> {
        let k = self.channel.readers();
        let ul_bps = rx.inner().config().ul_bps;
        s.states.resize_with(k, Vec::new);
        let mut own_pkt = None;
        for c in 0..k {
            let seed_c = trial_seed(self.uplink_base_seed(c, tid, ul_bps), i);
            let mut states = std::mem::take(&mut s.states[c]);
            let pkt = self
                .synth_cell_states(c, tid, ul_bps, seed_c, &mut states)
                .map_err(|e| TrialError {
                    trial: i,
                    payload: format!("cell {c} packet synthesis: {e}"),
                    attempts: 1,
                })?;
            s.states[c] = states;
            if c == reader {
                own_pkt = Some(pkt);
            }
        }
        let own_pkt = own_pkt.ok_or_else(|| TrialError {
            trial: i,
            payload: format!("observed reader {reader} is not in the {k}-reader fleet"),
            attempts: 1,
        })?;
        let tags: Vec<[(u8, &[PztState]); 1]> =
            s.states.iter().map(|st| [(tid, st.as_slice())]).collect();
        let cell_tags: Vec<&[(u8, &[PztState])]> =
            tags.iter().map(|t| t.as_slice()).collect();
        let len = s.states[reader].len();
        let seed_own = trial_seed(self.uplink_base_seed(reader, tid, ul_bps), i);
        self.channel
            .rx_waveform_into(reader, &cell_tags, len, seed_own, &mut s.wave);
        let out = rx.process_slot_with(&s.wave, &mut s.rx);
        Ok((own_pkt, out))
    }

    /// Multi-reader Fig. 12 analogue: sends `n` packets from `reader`'s
    /// own tag `tid` while every other cell's copy of the tag transmits
    /// concurrently on its own carrier; counts losses at `reader` and
    /// packets where cross-reader interference was implicated. Errors
    /// (rather than panicking) on an out-of-range `tid` or a `reader`
    /// index outside the fleet.
    pub fn uplink_trial(
        &self,
        rx: &FleetReceiver,
        reader: usize,
        tid: u8,
        n: u64,
    ) -> Result<FleetUplinkResult, TrialError> {
        self.uplink_trial_observed(rx, reader, tid, n, &mut Recorder::disabled())
    }

    /// [`Self::uplink_trial`] with a flight recorder watching every
    /// packet: decodes count as [`EventKind::Decoded`], losses land as
    /// [`EventKind::DecodeFail`], and interference-implicated packets as
    /// [`EventKind::CrossReaderCollision`] (slot = packet index).
    pub fn uplink_trial_observed(
        &self,
        rx: &FleetReceiver,
        reader: usize,
        tid: u8,
        n: u64,
        recorder: &mut Recorder,
    ) -> Result<FleetUplinkResult, TrialError> {
        let k = self.channel.readers();
        with_fleet_scratch(|s| {
            let mut snr_db = f64::NAN;
            let mut lost = 0;
            let mut cross = 0;
            for i in 0..n.max(1) {
                let (pkt, out) = self.uplink_packet_at(rx, reader, tid, i, s)?;
                if i == 0 {
                    snr_db = rx.uplink_snr_db_with(&s.wave, &mut s.rx);
                }
                if i >= n {
                    continue;
                }
                let ok = out.packet == Some(pkt);
                if ok {
                    recorder.note(EventKind::Decoded);
                } else {
                    lost += 1;
                    let reason = out.fail.unwrap_or(DecodeFailReason::BadCrc);
                    recorder.record(i, tid, EventKind::DecodeFail { reason });
                }
                if k > 1 && (!ok || out.collision) {
                    cross += 1;
                    recorder.record(
                        i,
                        tid,
                        EventKind::CrossReaderCollision {
                            readers: (k - 1).min(u8::MAX as usize) as u8,
                        },
                    );
                }
            }
            Ok(FleetUplinkResult {
                sent: n,
                lost,
                cross_collisions: cross,
                snr_db,
            })
        })
    }
}

/// One reader cell of a slot-level fleet run: its workload pattern and the
/// dynamic-network scenario it replays.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Metric label for this cell (e.g. `"cell0"`).
    pub name: String,
    /// The cell's Table-3 workload.
    pub pattern: Pattern,
    /// The cell's disruption script.
    pub scenario: Scenario,
}

/// Outcome of one cell × trial of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Sub-band index the plan assigned this cell.
    pub band: usize,
    /// Number of *other* cells sharing the band (frequency-space
    /// collisions waiting to happen; 0 under a clean FDMA plan).
    pub band_sharers: u8,
    /// Re-convergence measurements, one per disruption.
    pub samples: Vec<ReconvergenceSample>,
    /// Slots executed.
    pub slots: u64,
    /// Flight-recorder snapshot (empty unless this was the observed
    /// trial); opens with the cell's `ReaderAssigned` stamp, plus a
    /// `CrossReaderCollision` marker when the band is shared.
    pub snapshot: RecorderSnapshot,
}

/// Result grid of a slot-level fleet run plus its sweep execution
/// counters (quarantine / resume / budget, see [`SweepStats`]).
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-cell rows of per-trial outcomes: `cells[cell][trial]`.
    pub cells: Vec<Vec<TrialResult<CellOutcome>>>,
    /// Resilience counters for the whole K×trials grid.
    pub stats: SweepStats,
    /// Wall-domain run telemetry (worker lanes, stall events) for the
    /// grid; empty unless the sweep config requested telemetry.
    pub telemetry: crate::sweep::RunTelemetry,
}

/// Runs a K-cell fleet as a sharded (cell × trial) matrix over the sweep
/// worker pool. Cell `c`, trial `t` runs `run_scenario_trial` at seed
/// `trial_seed(trial_seed(sweep.base_seed, c), t)` — the same derivation
/// `run_matrix` applies everywhere else — so the result grid is
/// byte-identical at any thread count. The sweep config's resilience
/// policy (retries, checkpoint/resume, budget) applies over the flattened
/// job space; counters land in [`FleetRun::stats`].
///
/// When `observe` is set, trial 0 of every cell records its flight; the
/// snapshot is prefixed with [`EventKind::ReaderAssigned`] (tag = reader
/// index) and, for cells whose sub-band is reused by a neighbour, an
/// [`EventKind::CrossReaderCollision`] marker counting the sharers.
///
/// # Errors
///
/// [`ConfigError::Inconsistent`] when `plan.readers() != cells.len()`.
pub fn run_fleet(
    plan: &FleetPlan,
    cells: &[FleetCell],
    trials: u64,
    sweep: &SweepConfig,
    cap: u64,
    observe: bool,
) -> Result<FleetRun, ConfigError> {
    if plan.readers() != cells.len() {
        return Err(ConfigError::Inconsistent {
            reason: "fleet needs one FleetCell per planned reader",
        });
    }
    let sharing: Vec<u8> = (0..cells.len())
        .map(|c| {
            (0..cells.len())
                .filter(|&o| o != c && plan.band(o) == plan.band(c))
                .count()
                .min(u8::MAX as usize) as u8
        })
        .collect();
    let indexed: Vec<(usize, &FleetCell)> = cells.iter().enumerate().collect();
    let run = run_matrix_sweep(sweep, &indexed, trials, |&(c, cell), trial, seed| {
        let record = observe && trial == 0;
        let t = run_scenario_trial(&cell.pattern, &cell.scenario, seed, cap, false, record);
        let mut snapshot = t.snapshot;
        if record {
            let assigned = EventKind::ReaderAssigned {
                band: plan.band(c).min(u16::MAX as usize) as u16,
            };
            let mut events = Vec::with_capacity(snapshot.events.len() + 2);
            events.push(Event {
                slot: 0,
                tag: c as u8,
                kind: assigned,
            });
            snapshot.counts[assigned.index()] += 1;
            if sharing[c] > 0 {
                let collide = EventKind::CrossReaderCollision {
                    readers: sharing[c],
                };
                events.push(Event {
                    slot: 0,
                    tag: c as u8,
                    kind: collide,
                });
                snapshot.counts[collide.index()] += 1;
            }
            events.append(&mut snapshot.events);
            snapshot.events = events;
        }
        CellOutcome {
            band: plan.band(c),
            band_sharers: sharing[c],
            samples: t.samples,
            slots: t.slots,
            snapshot,
        }
    });
    Ok(FleetRun {
        cells: run.cells,
        stats: run.stats,
        telemetry: run.telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::wavesim::WaveSim;
    use arachnet_core::slot::Period;

    const FS: f64 = 500_000.0;

    #[test]
    fn one_reader_fleet_matches_the_single_reader_wavesim() {
        // The whole point of the K=1 degenerate case: same seeds, same
        // channel, same receiver → bit-identical losses and SNR.
        let plan = FleetPlan::fdma(1, FS).unwrap();
        let fleet = FleetWaveSim::paper(plan, 42);
        let rx = fleet.fleet_rx(0, 375.0);
        let a = fleet.uplink_trial(&rx, 0, 8, 6).unwrap();
        let b = WaveSim::paper(42).uplink_trial(8, 375.0, 6);
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.snr_db, b.snr_db);
        assert_eq!(a.cross_collisions, 0);
    }

    #[test]
    fn fdma_fleet_survives_an_active_neighbour() {
        // Two cells 4 kHz apart, both tags transmitting: the observed
        // reader's rejection keeps the strong tag decodable.
        let plan = FleetPlan::fdma(2, FS).unwrap();
        let fleet = FleetWaveSim::paper(plan, 7);
        let rx = fleet.fleet_rx(0, 375.0);
        let r = fleet.uplink_trial(&rx, 0, 8, 5).unwrap();
        assert!(r.lost <= 1, "{}/{} lost under FDMA", r.lost, r.sent);
        assert!(r.snr_db > 5.0, "snr {:.1}", r.snr_db);
    }

    #[test]
    fn co_channel_fleet_flags_collisions_that_fdma_removes() {
        // Same fleet, same seeds, two plans. On the co-channel baseline
        // the neighbour's tag backscatters *in band*, so the IQ clustering
        // flags a cross-reader collision on every packet; under the FDMA
        // plan the neighbour sits 4 kHz away and the packets come through
        // clean. (The PSD band-ratio SNR is deliberately not compared:
        // in-band interference masquerades as signal energy there.)
        let fdma = {
            let plan = FleetPlan::fdma(2, FS).unwrap();
            let fleet = FleetWaveSim::paper(plan, 9);
            let rx = fleet.fleet_rx(0, 375.0);
            fleet.uplink_trial(&rx, 0, 8, 6).unwrap()
        };
        let co = {
            let plan = FleetPlan::co_channel(2, 90_000.0, FS).unwrap();
            let fleet = FleetWaveSim::paper(plan, 9);
            let rx = fleet.fleet_rx(0, 375.0);
            fleet.uplink_trial(&rx, 0, 8, 6).unwrap()
        };
        assert_eq!(fdma.cross_collisions, 0, "FDMA flagged {}", fdma.cross_collisions);
        assert_eq!(fdma.lost, 0, "FDMA lost {}/{}", fdma.lost, fdma.sent);
        assert!(
            co.cross_collisions > fdma.cross_collisions,
            "co-channel {} vs fdma {}",
            co.cross_collisions,
            fdma.cross_collisions
        );
    }

    #[test]
    fn fleet_trial_records_cross_reader_events() {
        let plan = FleetPlan::co_channel(2, 90_000.0, FS).unwrap();
        let fleet = FleetWaveSim::paper(plan, 21);
        let rx = fleet.fleet_rx(0, 1_500.0);
        let mut rec = Recorder::enabled(21);
        let r = fleet.uplink_trial_observed(&rx, 0, 11, 8, &mut rec).unwrap();
        let snap = rec.into_snapshot();
        let xidx = EventKind::CrossReaderCollision { readers: 0 }.index();
        assert_eq!(snap.count_at(xidx), r.cross_collisions);
        // Observed trials and bare trials agree.
        let bare = fleet.uplink_trial(&rx, 0, 11, 8).unwrap();
        assert_eq!(bare.lost, r.lost);
        assert_eq!(bare.cross_collisions, r.cross_collisions);
        assert_eq!(bare.snr_db, r.snr_db);
    }

    fn cells3() -> Vec<FleetCell> {
        let p = |v: u32| Period::new(v).unwrap();
        (0..3u64)
            .map(|c| FleetCell {
                name: format!("cell{c}"),
                pattern: Pattern::c1(),
                scenario: Scenario::builder()
                    .join(40 + 10 * c, 9, p(4))
                    .leave(200, 9)
                    .build()
                    .unwrap(),
            })
            .collect()
    }

    #[test]
    fn fleet_run_is_thread_invariant() {
        let plan = FleetPlan::fdma_reuse(3, 2, FS).unwrap();
        let cells = cells3();
        let run = |threads| {
            let cfg = SweepConfig::new(77).with_threads(threads);
            run_fleet(&plan, &cells, 2, &cfg, 20_000, true).unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.cells.len(), 3);
        assert_eq!(a.stats.completed, 6);
        assert_eq!(a.stats.quarantined, 0);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            for (ta, tb) in ca.iter().zip(cb) {
                assert_eq!(ta.as_ref().unwrap(), tb.as_ref().unwrap());
            }
        }
    }

    #[test]
    fn out_of_range_tid_is_an_error_not_a_panic() {
        // TID is a 4-bit packet field; 31 overflows it. The old library
        // `expect` aborted the whole sweep here.
        let plan = FleetPlan::fdma(2, FS).unwrap();
        let fleet = FleetWaveSim::paper(plan, 13);
        let rx = fleet.fleet_rx(0, 375.0);
        let e = fleet.uplink_trial(&rx, 0, 31, 4).unwrap_err();
        assert_eq!(e.trial, 0, "fails on the first packet");
        assert!(e.payload.contains("TID 31"), "{}", e.payload);
    }

    #[test]
    fn absent_observed_reader_is_an_error_not_a_panic() {
        let plan = FleetPlan::fdma(2, FS).unwrap();
        let fleet = FleetWaveSim::paper(plan, 13);
        let rx = fleet.fleet_rx(0, 375.0);
        let e = fleet.uplink_trial(&rx, 5, 8, 4).unwrap_err();
        assert!(
            e.payload.contains("reader 5 is not in the 2-reader fleet"),
            "{}",
            e.payload
        );
    }

    #[test]
    fn mismatched_plan_and_cells_is_a_config_error() {
        let plan = FleetPlan::fdma(2, FS).unwrap();
        let cells = cells3(); // 3 cells against a 2-reader plan
        let cfg = SweepConfig::new(1).with_threads(1);
        let err = run_fleet(&plan, &cells, 1, &cfg, 20_000, false).unwrap_err();
        assert!(matches!(err, ConfigError::Inconsistent { .. }));
    }

    #[test]
    fn fleet_snapshots_open_with_reader_assignment() {
        // fdma_reuse(3, 2) puts cells 0 and 2 on band 0, cell 1 on band 1:
        // the sharers get a CrossReaderCollision marker, the loner none.
        let plan = FleetPlan::fdma_reuse(3, 2, FS).unwrap();
        let cells = cells3();
        let cfg = SweepConfig::new(5).with_threads(1);
        let grid = run_fleet(&plan, &cells, 1, &cfg, 20_000, true)
            .unwrap()
            .cells;
        for (c, row) in grid.iter().enumerate() {
            let out = row[0].as_ref().unwrap();
            let first = out.snapshot.events.first().expect("recorded trial");
            assert_eq!(first.slot, 0);
            assert_eq!(first.tag, c as u8);
            assert_eq!(
                first.kind,
                EventKind::ReaderAssigned {
                    band: out.band as u16
                }
            );
            let xidx = EventKind::CrossReaderCollision { readers: 0 }.index();
            if out.band_sharers > 0 {
                assert_eq!(out.snapshot.count_at(xidx), 1, "cell {c}");
            } else {
                assert_eq!(out.snapshot.count_at(xidx), 0, "cell {c}");
            }
            // Convergence still measured per cell.
            assert!(out.slots > 0);
            assert_eq!(out.samples.len(), 2, "join + leave disruptions");
        }
        // Band reuse shape: two distinct bands across three cells.
        let bands: Vec<usize> = grid
            .iter()
            .map(|row| row[0].as_ref().unwrap().band)
            .collect();
        assert_eq!(bands, vec![0, 1, 0]);
    }

    #[test]
    fn unobserved_fleet_trials_carry_empty_snapshots() {
        let plan = FleetPlan::fdma(2, FS).unwrap();
        let cells = cells3().into_iter().take(2).collect::<Vec<_>>();
        let cfg = SweepConfig::new(3).with_threads(2);
        let grid = run_fleet(&plan, &cells, 2, &cfg, 20_000, false)
            .unwrap()
            .cells;
        for row in &grid {
            for t in row {
                assert!(t.as_ref().unwrap().snapshot.events.is_empty());
            }
        }
    }
}
