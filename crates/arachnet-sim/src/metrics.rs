//! Statistics helpers for experiment summaries.
//!
//! The evaluation reports medians and spreads (box plots in Fig. 15), CDFs
//! (Fig. 14b), and trailing-window ratios (Fig. 16 — those live in
//! `arachnet_core::convergence`). These are the small, exact helpers that
//! turn raw trial vectors into the numbers the tables print.

/// Five-number summary of a sample (the box-plot numbers of Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes a percentile (0–100) with linear interpolation. Panics on an
/// empty sample.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Five-number summary of an unsorted sample.
pub fn five_num(values: &[f64]) -> FiveNum {
    assert!(!values.is_empty());
    let mut s = values.to_vec();
    s.sort_by(f64::total_cmp);
    FiveNum {
        min: s[0],
        q1: percentile(&s, 25.0),
        median: percentile(&s, 50.0),
        q3: percentile(&s, 75.0),
        max: s[s.len() - 1],
    }
}

/// An empirical CDF over a sample (Fig. 14b).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from a sample.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile: the smallest sample value `v` with `P(X ≤ v) ≥ q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty());
        assert!((0.0..=1.0).contains(&q));
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Evenly spaced `(x, F(x))` points for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1).max(1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// Mean of a sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 50.0), 2.5);
        assert!((percentile(&s, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn five_num_of_known_sample() {
        let f = five_num(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q3, 4.0);
    }

    #[test]
    fn single_value_summary() {
        let f = five_num(&[7.0]);
        assert_eq!(f.min, 7.0);
        assert_eq!(f.median, 7.0);
        assert_eq!(f.max, 7.0);
    }

    #[test]
    fn ecdf_basic_properties() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(2.0), 0.5);
        assert_eq!(e.at(10.0), 1.0);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_quantile_matches_paper_usage() {
        // "99 % of Stage 2 delays under 281.9 ms" style query.
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let e = Ecdf::new(&values);
        assert_eq!(e.quantile(0.99), 99.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(1.0), 100.0);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 8.0, 5.0]);
        let curve = e.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe_where_documented() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!(Ecdf::new(&[]).is_empty());
        assert_eq!(Ecdf::new(&[]).at(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }
}
