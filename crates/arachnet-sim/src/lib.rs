//! # arachnet-sim — simulation engines for the ARACHNET evaluation
//!
//! Two granularities, matching how the paper's experiments operate:
//!
//! * **slot level** ([`slotsim`]) — the distributed slot-allocation
//!   protocol over thousands of 1-second slots: first-convergence time
//!   (Fig. 15), long-running slot statistics (Fig. 16), beacon-loss and
//!   late-arrival fault injection, with the full energy lifecycle of each
//!   tag ([`arachnet_tag::device::TagDevice`]);
//! * **waveform level** ([`wavesim`]) — individual packets synthesized
//!   through the acoustic channel and decoded by the reader DSP chain:
//!   uplink SNR and loss (Fig. 12), downlink loss and synchronization
//!   offsets (Fig. 13), ping-pong latency (Fig. 14);
//! * **fleet level** ([`fleet`]) — K reader cells sharing the body under a
//!   frequency-space division plan: waveform-level cross-reader
//!   interference trials, and sharded slot-level soaks where every cell
//!   replays its own scenario over the sweep pool.
//!
//! Plus the workload definitions ([`patterns`]: Table 3's nine
//! configurations), the contention baseline ([`aloha`]: Appendix B),
//! statistics helpers ([`metrics`]), validating configuration builders
//! ([`config`]), dynamic-network scenario descriptions ([`scenario`]: tag
//! churn, reader duty-cycling, channel weather, with the re-convergence
//! metric), and the deterministic parallel trial runner ([`sweep`]) that
//! fans pattern × seed matrices over a worker pool with bit-identical
//! results at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aloha;
pub mod codec;
pub mod config;
pub mod cosim;
pub mod fleet;
pub mod metrics;
pub mod patterns;
pub mod scenario;
pub mod slotsim;
pub mod sweep;
pub mod vanilla;
pub mod wavesim;

pub use codec::TrialCodec;
pub use config::{AlohaConfigBuilder, ConfigError, CoSimConfigBuilder, SlotSimConfigBuilder};
pub use fleet::{run_fleet, CellOutcome, FleetCell, FleetRun, FleetUplinkResult, FleetWaveSim};
pub use patterns::Pattern;
pub use scenario::{ReconvergenceSample, Scenario, ScenarioEvent, TimedEvent};
pub use slotsim::{SlotSim, SlotSimConfig};
pub use sweep::{
    run_matrix, run_matrix_sweep, run_sweep, run_trials, CheckpointSpec, MatrixRun,
    ResiliencePolicy, RunTelemetry, SweepConfig, SweepRun, SweepStats, SweepSummary,
    TelemetrySpec,
};
