//! Validating builders for the simulator configurations.
//!
//! The plain config structs ([`SlotSimConfig`], [`AlohaConfig`],
//! [`CoSimConfig`]) stay public-field plain data for tests that want to
//! poke them directly, but external callers should go through these
//! builders: every setter is checked at [`build`](SlotSimConfigBuilder::build)
//! time and an invalid combination comes back as a typed [`ConfigError`]
//! instead of a panic (or a silently nonsensical simulation) later.

use arachnet_core::slot::Period;

use crate::aloha::AlohaConfig;
use crate::cosim::CoSimConfig;
use crate::patterns::Pattern;
use crate::slotsim::SlotSimConfig;

/// A rejected configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be a probability lies outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A field that must be strictly positive (and finite) is not.
    NotPositive {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A field that must be finite is NaN or infinite.
    NotFinite {
        /// Field name.
        field: &'static str,
    },
    /// A collection that must be non-empty is empty.
    Empty {
        /// Field name.
        field: &'static str,
    },
    /// The same tag ID appears twice.
    DuplicateTag {
        /// The duplicated tag ID.
        tid: u8,
    },
    /// Two fields are individually valid but mutually inconsistent.
    Inconsistent {
        /// Human-readable description of the violated relation.
        reason: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} must be positive and finite, got {value}")
            }
            ConfigError::NotFinite { field } => write!(f, "{field} must be finite"),
            ConfigError::Empty { field } => write!(f, "{field} must not be empty"),
            ConfigError::DuplicateTag { tid } => write!(f, "tag {tid} listed more than once"),
            ConfigError::Inconsistent { reason } => write!(f, "inconsistent config: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

fn probability(field: &'static str, value: f64) -> Result<f64, ConfigError> {
    if !(0.0..=1.0).contains(&value) {
        return Err(ConfigError::ProbabilityOutOfRange { field, value });
    }
    Ok(value)
}

fn positive(field: &'static str, value: f64) -> Result<f64, ConfigError> {
    if !value.is_finite() {
        return Err(ConfigError::NotFinite { field });
    }
    if value <= 0.0 {
        return Err(ConfigError::NotPositive { field, value });
    }
    Ok(value)
}

/// Builder for [`SlotSimConfig`]; starts from the paper-default channel of
/// [`SlotSimConfig::new`].
#[derive(Debug, Clone)]
pub struct SlotSimConfigBuilder {
    inner: SlotSimConfig,
}

impl SlotSimConfigBuilder {
    /// Starts from paper defaults for `pattern` and `seed`.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        Self {
            inner: SlotSimConfig::new(pattern, seed),
        }
    }

    /// Per-tag per-beacon downlink loss probability.
    pub fn dl_loss_prob(mut self, p: f64) -> Self {
        self.inner.dl_loss_prob = p;
        self
    }

    /// Decode-failure probability for a clean single-transmitter slot.
    pub fn ul_loss_prob(mut self, p: f64) -> Self {
        self.inner.ul_loss_prob = p;
        self
    }

    /// Probability that a collision still yields one decodable packet.
    pub fn capture_prob(mut self, p: f64) -> Self {
        self.inner.capture_prob = p;
        self
    }

    /// Whether tags start charged (skip the cold-start phase).
    pub fn charged_start(mut self, charged: bool) -> Self {
        self.inner.charged_start = charged;
        self
    }

    /// An idealized lossless channel (the [`SlotSimConfig::ideal`] preset).
    pub fn ideal_channel(mut self) -> Self {
        self.inner.dl_loss_prob = 0.0;
        self.inner.ul_loss_prob = 0.0;
        self.inner.capture_prob = 0.0;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<SlotSimConfig, ConfigError> {
        probability("dl_loss_prob", self.inner.dl_loss_prob)?;
        probability("ul_loss_prob", self.inner.ul_loss_prob)?;
        probability("capture_prob", self.inner.capture_prob)?;
        if self.inner.pattern.tags.is_empty() {
            return Err(ConfigError::Empty {
                field: "pattern.tags",
            });
        }
        Ok(self.inner)
    }
}

impl SlotSimConfig {
    /// Returns a validating builder seeded with paper defaults.
    pub fn builder(pattern: Pattern, seed: u64) -> SlotSimConfigBuilder {
        SlotSimConfigBuilder::new(pattern, seed)
    }
}

/// Builder for [`AlohaConfig`]; starts from Appendix B defaults.
#[derive(Debug, Clone)]
pub struct AlohaConfigBuilder {
    inner: AlohaConfig,
}

impl AlohaConfigBuilder {
    /// Starts from [`AlohaConfig::default`] with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: AlohaConfig {
                seed,
                ..AlohaConfig::default()
            },
        }
    }

    /// Simulated duration in seconds.
    pub fn duration_s(mut self, s: f64) -> Self {
        self.inner.duration_s = s;
        self
    }

    /// Packet on-air time in seconds.
    pub fn packet_s(mut self, s: f64) -> Self {
        self.inner.packet_s = s;
        self
    }

    /// Resume-charge fraction of a full charge; `None` derives per-tag
    /// fractions from the harvesting chain.
    pub fn resume_fraction(mut self, f: Option<f64>) -> Self {
        self.inner.resume_fraction = f;
        self
    }

    /// Multiplicative noise on each recharge duration.
    pub fn charge_noise(mut self, sigma: f64) -> Self {
        self.inner.charge_noise = sigma;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<AlohaConfig, ConfigError> {
        positive("duration_s", self.inner.duration_s)?;
        positive("packet_s", self.inner.packet_s)?;
        if self.inner.packet_s >= self.inner.duration_s {
            return Err(ConfigError::Inconsistent {
                reason: "packet_s must be shorter than duration_s",
            });
        }
        if let Some(f) = self.inner.resume_fraction {
            positive("resume_fraction", f)?;
            if f > 1.0 {
                return Err(ConfigError::ProbabilityOutOfRange {
                    field: "resume_fraction",
                    value: f,
                });
            }
        }
        probability("charge_noise", self.inner.charge_noise)?;
        Ok(self.inner)
    }
}

impl AlohaConfig {
    /// Returns a validating builder seeded with Appendix B defaults.
    pub fn builder(seed: u64) -> AlohaConfigBuilder {
        AlohaConfigBuilder::new(seed)
    }
}

/// Builder for [`CoSimConfig`]; starts from paper-default rates.
#[derive(Debug, Clone)]
pub struct CoSimConfigBuilder {
    inner: CoSimConfig,
}

impl CoSimConfigBuilder {
    /// Starts from [`CoSimConfig::new`] over the given tag set.
    pub fn new(tags: Vec<(u8, Period)>, seed: u64) -> Self {
        Self {
            inner: CoSimConfig::new(tags, seed),
        }
    }

    /// Downlink raw bit rate (bps).
    pub fn dl_bps(mut self, bps: f64) -> Self {
        self.inner.dl_bps = bps;
        self
    }

    /// Uplink raw bit rate (bps).
    pub fn ul_bps(mut self, bps: f64) -> Self {
        self.inner.ul_bps = bps;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<CoSimConfig, ConfigError> {
        if self.inner.tags.is_empty() {
            return Err(ConfigError::Empty { field: "tags" });
        }
        let mut seen = [false; 256];
        for &(tid, _) in &self.inner.tags {
            if seen[tid as usize] {
                return Err(ConfigError::DuplicateTag { tid });
            }
            seen[tid as usize] = true;
        }
        positive("dl_bps", self.inner.dl_bps)?;
        positive("ul_bps", self.inner.ul_bps)?;
        Ok(self.inner)
    }
}

impl CoSimConfig {
    /// Returns a validating builder seeded with paper-default rates.
    pub fn builder(tags: Vec<(u8, Period)>, seed: u64) -> CoSimConfigBuilder {
        CoSimConfigBuilder::new(tags, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotsim_builder_accepts_defaults_and_matches_new() {
        let built = SlotSimConfig::builder(Pattern::c3(), 7).build().unwrap();
        let direct = SlotSimConfig::new(Pattern::c3(), 7);
        assert_eq!(built.dl_loss_prob, direct.dl_loss_prob);
        assert_eq!(built.seed, 7);
    }

    #[test]
    fn slotsim_builder_rejects_bad_probability() {
        let err = SlotSimConfig::builder(Pattern::c1(), 1)
            .capture_prob(1.5)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ProbabilityOutOfRange {
                field: "capture_prob",
                value: 1.5
            }
        );
        assert!(err.to_string().contains("capture_prob"));
    }

    #[test]
    fn slotsim_ideal_channel_matches_ideal_preset() {
        let built = SlotSimConfig::builder(Pattern::c1(), 3)
            .ideal_channel()
            .build()
            .unwrap();
        let preset = SlotSimConfig::ideal(Pattern::c1(), 3);
        assert_eq!(built.dl_loss_prob, preset.dl_loss_prob);
        assert_eq!(built.ul_loss_prob, preset.ul_loss_prob);
        assert_eq!(built.capture_prob, preset.capture_prob);
    }

    #[test]
    fn aloha_builder_validates_durations() {
        assert!(AlohaConfig::builder(1).build().is_ok());
        assert!(matches!(
            AlohaConfig::builder(1).duration_s(-5.0).build(),
            Err(ConfigError::NotPositive { .. })
        ));
        assert!(matches!(
            AlohaConfig::builder(1).duration_s(0.1).build(),
            Err(ConfigError::Inconsistent { .. })
        ));
        assert!(matches!(
            AlohaConfig::builder(1).duration_s(f64::NAN).build(),
            Err(ConfigError::NotFinite { .. })
        ));
        assert!(matches!(
            AlohaConfig::builder(1).resume_fraction(Some(2.0)).build(),
            Err(ConfigError::ProbabilityOutOfRange { .. })
        ));
    }

    #[test]
    fn cosim_builder_rejects_empty_and_duplicate_tags() {
        let p = |v| Period::new(v).unwrap();
        assert!(matches!(
            CoSimConfig::builder(vec![], 1).build(),
            Err(ConfigError::Empty { field: "tags" })
        ));
        assert_eq!(
            CoSimConfig::builder(vec![(8, p(2)), (8, p(4))], 1)
                .build()
                .unwrap_err(),
            ConfigError::DuplicateTag { tid: 8 }
        );
        assert!(CoSimConfig::builder(vec![(8, p(2)), (7, p(4))], 1)
            .build()
            .is_ok());
    }

    #[test]
    fn cosim_builder_rejects_nonpositive_rates() {
        let p = |v| Period::new(v).unwrap();
        assert!(matches!(
            CoSimConfig::builder(vec![(8, p(2))], 1).dl_bps(0.0).build(),
            Err(ConfigError::NotPositive { field: "dl_bps", .. })
        ));
    }
}
