//! Full waveform co-simulation: the MAC loop closed over real signals.
//!
//! The slot-level simulator ([`crate::slotsim`]) abstracts the PHY into
//! loss probabilities. This engine removes that abstraction for the
//! ultimate integration check: every slot, the reader *really* transmits a
//! jittered PIE beacon as an edge stream, every tag *really* demodulates it
//! with its drifting 12 kHz clock and envelope-response delays, the MAC
//! state machines decide, transmitting tags *really* modulate FM0 onto the
//! synthesized acoustic channel (superposed if they collide), and the
//! reader *really* runs its DSP chain — decode, CRC, IQ-cluster collision
//! detection — before its MAC issues the next beacon.
//!
//! It is ~10⁵× more expensive per slot than the slot-level engine, so it
//! runs tens of slots, not tens of thousands — enough to watch a small
//! network converge with zero modeling shortcuts.

use arachnet_core::mac::{ProtocolConfig, ReaderMac, SlotObservation};
use arachnet_core::packet::UlPacket;
use arachnet_core::rng::TagRng;
use arachnet_core::slot::Period;
use arachnet_obs::{DecodeFailReason, EventKind, Recorder, RecorderSnapshot, NO_TAG};
use arachnet_reader::rx::{RxConfig, RxScratch, SlotRx, UplinkReceiver};
use arachnet_reader::tx::BeaconTransmitter;
use arachnet_tag::demod::PieDemodulator;
use arachnet_tag::mcu::McuClock;
use arachnet_tag::modulator::Fm0Modulator;
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::noise::NoiseConfig;
use biw_channel::pzt::PztState;

use crate::scenario::{Scenario, ScenarioEvent};

/// Configuration of the co-simulation.
#[derive(Debug, Clone)]
pub struct CoSimConfig {
    /// `(tid, period)` for each tag (tids must exist in the deployment).
    pub tags: Vec<(u8, Period)>,
    /// Protocol parameters.
    pub protocol: ProtocolConfig,
    /// DL raw bit rate (bps).
    pub dl_bps: f64,
    /// UL raw bit rate (bps).
    pub ul_bps: f64,
    /// Channel noise.
    pub noise: NoiseConfig,
    /// Experiment seed.
    pub seed: u64,
}

impl CoSimConfig {
    /// Paper-default rates over the given tag set.
    pub fn new(tags: Vec<(u8, Period)>, seed: u64) -> Self {
        Self {
            tags,
            protocol: ProtocolConfig::default(),
            dl_bps: 250.0,
            ul_bps: 375.0,
            noise: NoiseConfig {
                floor_sigma: 0.013,
                ..NoiseConfig::default()
            },
            seed,
        }
    }
}

/// Ground truth + reader view of one co-simulated slot.
#[derive(Debug, Clone)]
pub struct CoSimSlot {
    /// Tags that actually transmitted.
    pub transmitters: Vec<u8>,
    /// Tags that failed to decode the beacon this slot.
    pub beacon_losses: Vec<u8>,
    /// What the reader's RX chain reported.
    pub rx: SlotRx,
}

struct CoSimTag {
    tid: u8,
    mac: arachnet_core::mac::TagMac,
    clock: McuClock,
    rng: TagRng,
    /// Physically present (scenario churn toggles this; absent tags hear
    /// nothing and never transmit).
    deployed: bool,
}

/// Persistent per-engine working storage: slots reuse these buffers
/// instead of allocating fresh edge/state/waveform vectors each step.
/// Contents never carry over between slots (each is cleared before use),
/// only capacities do.
#[derive(Debug, Default)]
struct CoSimScratch {
    tag_edges: Vec<(f64, bool)>,
    streams: Vec<Vec<PztState>>,
    wave: Vec<f64>,
    rx: RxScratch,
}

/// Scenario playback state for a co-simulation (see [`crate::scenario`]).
struct CoSimScenario {
    scenario: Scenario,
    next_event: usize,
    outage_until: u64,
}

/// The engine.
pub struct CoSim {
    config: CoSimConfig,
    channel: BiwChannel,
    reader_mac: ReaderMac,
    tx: BeaconTransmitter,
    rx: UplinkReceiver,
    tags: Vec<CoSimTag>,
    beacon: Option<arachnet_core::packet::DlBeacon>,
    slots_run: u64,
    scratch: CoSimScratch,
    recorder: Recorder,
    scenario: Option<CoSimScenario>,
}

impl CoSim {
    /// Builds the engine over the paper deployment.
    pub fn new(config: CoSimConfig) -> Self {
        Self::build(config, None)
    }

    /// Builds the engine with a dynamic-network scenario: churn events
    /// toggle tags in and out of the deployment, reader outages silence the
    /// beacon. Tags that only ever appear through
    /// [`ScenarioEvent::TagJoin`] are pre-registered with the reader but
    /// start undeployed. [`ScenarioEvent::NoiseBurst`] is a slot-domain
    /// abstraction and is ignored at the waveform level (the noise floor is
    /// baked into the channel); use [`crate::slotsim`] to study bursts.
    pub fn with_scenario(config: CoSimConfig, scenario: Scenario) -> Self {
        Self::build(config, Some(scenario))
    }

    fn build(config: CoSimConfig, scenario: Option<Scenario>) -> Self {
        // The reader registry covers the configured tags plus every tag the
        // scenario will ever join; join-only tags start undeployed.
        let mut roster = config.tags.clone();
        if let Some(sc) = &scenario {
            for (tid, period) in sc.join_registry() {
                if !roster.iter().any(|&(t, _)| t == tid) {
                    roster.push((tid, period));
                }
            }
        }
        let channel = BiwChannel::paper(ChannelConfig {
            noise: config.noise,
            seed: config.seed,
            ..ChannelConfig::default()
        });
        let reader_mac = ReaderMac::new(config.protocol, &roster);
        let tx = BeaconTransmitter::new(config.dl_bps, config.seed ^ 0xBEAC);
        let rx = UplinkReceiver::new(RxConfig {
            ul_bps: config.ul_bps,
            ..RxConfig::default()
        });
        let preset = config.tags.len();
        let tags = roster
            .iter()
            .enumerate()
            .map(|(i, &(tid, period))| CoSimTag {
                tid,
                mac: arachnet_core::mac::TagMac::new(
                    tid,
                    period,
                    config.protocol,
                    TagRng::for_tag(config.seed, tid),
                ),
                clock: McuClock::for_tag(config.seed, tid),
                rng: TagRng::for_tag(config.seed ^ 0x51de, tid),
                deployed: i < preset,
            })
            .collect();
        Self {
            config,
            channel,
            reader_mac,
            tx,
            rx,
            tags,
            beacon: None,
            slots_run: 0,
            scratch: CoSimScratch::default(),
            recorder: Recorder::disabled(),
            scenario: scenario.map(|scenario| CoSimScenario {
                scenario,
                next_event: 0,
                outage_until: 0,
            }),
        }
    }

    /// Attach a flight recorder; subsequent [`CoSim::step`] calls will log
    /// structured events into it. Has no effect on sim outcomes.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The currently attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Detach the recorder and consume it into an immutable snapshot
    /// (subsequent slots run unobserved).
    pub fn take_recorder_snapshot(&mut self) -> RecorderSnapshot {
        std::mem::replace(&mut self.recorder, Recorder::disabled()).into_snapshot()
    }

    /// Slots executed.
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// Settled-tag count among deployed tags (for convergence checks).
    pub fn settled(&self) -> usize {
        self.tags
            .iter()
            .filter(|t| t.deployed && t.mac.state() == arachnet_core::mac::MacState::Settle)
            .count()
    }

    /// Tags currently deployed (physically present).
    pub fn deployed(&self) -> usize {
        self.tags.iter().filter(|t| t.deployed).count()
    }

    /// Per-tag `(tid, state, offset)` snapshot.
    pub fn tag_states(&self) -> Vec<(u8, arachnet_core::mac::MacState, u32)> {
        self.tags
            .iter()
            .map(|t| (t.tid, t.mac.state(), t.mac.offset()))
            .collect()
    }

    /// Delay + envelope response for beacon edges at a tag (same physics as
    /// the wavesim's downlink path). Writes into `out` (cleared first);
    /// `false` means the tag's received amplitude is below the comparator
    /// threshold and it hears nothing.
    fn beacon_edges_at_tag(
        channel: &BiwChannel,
        tid: u8,
        edges: &[(f64, bool)],
        out: &mut Vec<(f64, bool)>,
    ) -> bool {
        out.clear();
        let Some(site) = channel.deployment().site(tid) else {
            return false;
        };
        let Some(v) = channel.tag_carrier_voltage(tid) else {
            return false;
        };
        let a = (v - 0.15).max(0.0);
        let vth = 0.12;
        if a <= vth {
            return false;
        }
        let tau = 9.0 / 90_000.0;
        let rise = tau * (a / (a - vth)).ln();
        let fall = (tau + 2.0 * 28.0 / (2.0 * std::f64::consts::PI * 90_000.0)) * (a / vth).ln();
        let delay = site.path.delay_s();
        out.extend(
            edges
                .iter()
                .map(|&(t, r)| (t + delay + if r { rise } else { fall }, r)),
        );
        true
    }

    /// Plays every scenario event due at `slot` (events are sorted by
    /// [`crate::scenario::ScenarioBuilder::build`]).
    fn apply_scenario_events(&mut self, slot: u64) {
        loop {
            let ev = {
                let st = self.scenario.as_ref().expect("scenario playback state");
                match st.scenario.events().get(st.next_event) {
                    Some(ev) if ev.at <= slot => ev.event,
                    _ => break,
                }
            };
            match ev {
                ScenarioEvent::TagJoin { tid, .. } => {
                    if let Some(tag) = self.tags.iter_mut().find(|t| t.tid == tid && !t.deployed) {
                        tag.deployed = true;
                        tag.mac.power_on_reset();
                        self.recorder.record(slot, tid, EventKind::TagJoined);
                    }
                }
                ScenarioEvent::TagLeave { tid } => {
                    if let Some(tag) = self.tags.iter_mut().find(|t| t.tid == tid && t.deployed) {
                        tag.deployed = false;
                        self.recorder.record(slot, tid, EventKind::TagDeparted);
                    }
                }
                ScenarioEvent::Brownout { tid } => {
                    // No energy model here — a brownout is a bare MAC reset.
                    if let Some(tag) = self.tags.iter_mut().find(|t| t.tid == tid && t.deployed) {
                        tag.mac.power_on_reset();
                        self.recorder.record(slot, tid, EventKind::PowerCutoff);
                    }
                }
                ScenarioEvent::ReaderOutage { slots } => {
                    let st = self.scenario.as_mut().expect("scenario playback state");
                    st.outage_until = st.outage_until.max(slot + slots);
                    let clamped = slots.min(u64::from(u16::MAX)) as u16;
                    self.recorder
                        .record(slot, NO_TAG, EventKind::ReaderOutage { slots: clamped });
                }
                // Slot-domain loss probabilities do not exist at the
                // waveform level; see `with_scenario` docs.
                ScenarioEvent::NoiseBurst { .. } => {}
                ScenarioEvent::ChannelEpoch { epoch } => {
                    self.recorder
                        .record(slot, NO_TAG, EventKind::ChannelEpoch { epoch });
                }
            }
            self.scenario.as_mut().expect("scenario playback state").next_event += 1;
        }
    }

    /// One slot with the reader dark: no beacon goes out, every deployed
    /// tag times out, and the reader's pending beacon (and MAC slot
    /// counter) stays frozen until the outage ends.
    fn dark_step(&mut self, slot: u64) -> CoSimSlot {
        let mut beacon_losses: Vec<u8> = Vec::new();
        let recorder = &mut self.recorder;
        for tag in self.tags.iter_mut().filter(|t| t.deployed) {
            tag.mac.on_beacon_timeout();
            beacon_losses.push(tag.tid);
            if recorder.is_enabled() {
                recorder.record(slot, tag.tid, EventKind::BeaconLost);
                for &ev in tag.mac.events() {
                    recorder.record(slot, tag.tid, ev);
                }
            }
        }
        self.slots_run += 1;
        CoSimSlot {
            transmitters: Vec::new(),
            beacon_losses,
            rx: SlotRx {
                packet: None,
                collision: false,
                clusters: 0,
                edges: 0,
                fail: None,
            },
        }
    }

    /// Runs one slot end to end; returns what happened.
    pub fn step(&mut self) -> CoSimSlot {
        let slot = self.slots_run;
        if self.scenario.is_some() {
            self.apply_scenario_events(slot);
            if self.scenario.as_ref().is_some_and(|st| slot < st.outage_until) {
                return self.dark_step(slot);
            }
        }
        let beacon = match self.beacon.take() {
            Some(b) => b,
            None => self.reader_mac.start(),
        };

        // --- Downlink: real edges through the channel to every tag. ------
        let edges = self.tx.edges(&beacon, 0.0);
        let mut transmitters: Vec<u8> = Vec::new();
        let mut beacon_losses: Vec<u8> = Vec::new();
        let dl_bps = self.config.dl_bps;
        let recorder = &mut self.recorder;
        for tag in self.tags.iter_mut().filter(|t| t.deployed) {
            let heard = Self::beacon_edges_at_tag(
                &self.channel,
                tag.tid,
                &edges,
                &mut self.scratch.tag_edges,
            );
            let decoded = if heard {
                let mut demod = PieDemodulator::new(tag.clock, dl_bps);
                demod.set_supply(1.95 + 0.35 * tag.rng.unit_f64());
                demod.feed_edges(&self.scratch.tag_edges)
            } else {
                Vec::new()
            };
            let action = match decoded.first() {
                Some(d) => Some(tag.mac.on_beacon(d.beacon.cmd)),
                None => {
                    beacon_losses.push(tag.tid);
                    tag.mac.on_beacon_timeout();
                    None
                }
            };
            if recorder.is_enabled() {
                if action.is_none() {
                    recorder.record(slot, tag.tid, EventKind::BeaconLost);
                }
                for &ev in tag.mac.events() {
                    recorder.record(slot, tag.tid, ev);
                }
            }
            if action.is_some_and(|a| a.transmit) {
                transmitters.push(tag.tid);
            }
        }

        // --- Uplink: real FM0 waveforms, superposed. ----------------------
        let fs = self.channel.config().sample_rate;
        while self.scratch.streams.len() < transmitters.len() {
            self.scratch.streams.push(Vec::new());
        }
        for (k, &tid) in transmitters.iter().enumerate() {
            let tag = self
                .tags
                .iter_mut()
                .find(|t| t.tid == tid)
                .expect("known tid");
            let payload = (tag.rng.next_u64() & 0xFFF) as u16;
            let pkt = UlPacket::new(tid % 16, payload).expect("12-bit payload");
            let modulator = Fm0Modulator::new(tag.clock, (12_000.0 / self.config.ul_bps) as u32);
            let (raw, _) = modulator.modulate_packet(&pkt, 0.0);
            let spb = (fs * modulator.actual_raw_interval()).round() as usize;
            let states = &mut self.scratch.streams[k];
            states.clear();
            states.reserve(raw.len() * spb + 8 * spb);
            states.extend(std::iter::repeat_n(PztState::Absorptive, 4 * spb));
            for bit in raw.iter() {
                let s = if bit {
                    PztState::Reflective
                } else {
                    PztState::Absorptive
                };
                states.extend(std::iter::repeat_n(s, spb));
            }
            states.extend(std::iter::repeat_n(PztState::Absorptive, 4 * spb));
        }
        // The channel's own seed keys slot noise, exactly as the eager
        // `uplink_waveform` did before buffers were made reusable.
        let noise_seed = self.channel.config().seed;
        let active = &self.scratch.streams[..transmitters.len()];
        let len = if transmitters.is_empty() {
            // Still listen to an idle window (leak + noise only).
            (0.05 * fs) as usize
        } else {
            active.iter().map(|s| s.len()).max().unwrap_or(0) + 2_000
        };
        let refs: Vec<(u8, &[PztState])> = transmitters
            .iter()
            .zip(active)
            .map(|(&t, s)| (t, s.as_slice()))
            .collect();
        self.channel
            .uplink_waveform_seeded_into(&refs, len, noise_seed, &mut self.scratch.wave);
        let CoSimScratch { wave, rx: rxs, .. } = &mut self.scratch;
        let rx_out = self.rx.process_slot_with(wave, rxs);

        // --- Reader MAC closes the loop. ----------------------------------
        let obs = SlotObservation {
            decoded: rx_out.packet.map(|p| {
                // Map the 4-bit on-air TID back to the deployment TID.
                self.tags
                    .iter()
                    .map(|t| t.tid)
                    .find(|&t| t % 16 == p.tid())
                    .unwrap_or(p.tid())
            }),
            collision: rx_out.collision,
        };
        if self.recorder.is_enabled() {
            if rx_out.collision {
                let n = transmitters.len().min(255) as u8;
                self.recorder
                    .record(slot, NO_TAG, EventKind::Collision { transmitters: n });
            } else if let Some(tid) = obs.decoded {
                self.recorder.note(EventKind::Decoded);
                let offset = self
                    .tags
                    .iter()
                    .find(|t| t.tid == tid)
                    .map_or(0, |t| t.mac.offset() as u16);
                self.recorder
                    .record(slot, tid, EventKind::SlotClaimed { offset });
            } else if transmitters.is_empty() {
                self.recorder.note(EventKind::Empty);
            } else {
                // Real transmissions the DSP chain could not recover: the
                // receiver's own stage-of-failure diagnosis is the reason.
                let reason = rx_out.fail.unwrap_or(DecodeFailReason::NoPreamble);
                let tag = if transmitters.len() == 1 { transmitters[0] } else { NO_TAG };
                self.recorder
                    .record(slot, tag, EventKind::DecodeFail { reason });
            }
        }
        self.beacon = Some(self.reader_mac.end_slot(obs));
        self.slots_run += 1;
        CoSimSlot {
            transmitters,
            beacon_losses,
            rx: rx_out,
        }
    }

    /// Runs until every deployed tag is settled and the last
    /// `clean_streak` slots were collision-free, or `cap` slots. Returns
    /// the slot count on success.
    pub fn run_until_converged(&mut self, clean_streak: u32, cap: u64) -> Option<u64> {
        let mut streak = 0;
        while self.slots_run < cap {
            let slot = self.step();
            if slot.rx.collision {
                streak = 0;
            } else {
                streak += 1;
            }
            if streak >= clean_streak && self.settled() == self.deployed() {
                return Some(self.slots_run);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> Period {
        Period::new(v).unwrap()
    }

    #[test]
    fn two_tag_network_converges_on_real_waveforms() {
        let mut sim = CoSim::new(CoSimConfig::new(vec![(8, p(2)), (7, p(2))], 3));
        let at = sim.run_until_converged(4, 60);
        assert!(at.is_some(), "no convergence in 60 waveform slots");
        assert_eq!(sim.settled(), 2);
    }

    #[test]
    fn four_tag_table1_network_converges() {
        let tags = vec![(8, p(2)), (7, p(4)), (5, p(8)), (6, p(8))];
        let mut sim = CoSim::new(CoSimConfig::new(tags, 7));
        let at = sim.run_until_converged(8, 150);
        assert!(
            at.is_some(),
            "Table-1 network failed to converge end to end"
        );
    }

    #[test]
    fn collisions_are_really_detected_from_waveforms() {
        // Two period-1 tags must collide every slot until migration breaks
        // the tie — the collision flag must come from IQ clustering, and
        // eventually single transmissions decode.
        let mut sim = CoSim::new(CoSimConfig::new(vec![(8, p(2)), (5, p(2))], 11));
        let mut saw_collision = false;
        let mut saw_decode = false;
        for _ in 0..40 {
            let slot = sim.step();
            if slot.transmitters.len() > 1 {
                assert!(
                    slot.rx.collision,
                    "simultaneous TX not flagged: {:?}",
                    slot.rx
                );
                saw_collision = true;
            }
            if slot.transmitters.len() == 1 && slot.rx.packet.is_some() {
                saw_decode = true;
            }
            if saw_collision && saw_decode {
                break;
            }
        }
        assert!(saw_decode, "no clean decode in 40 slots");
    }

    #[test]
    fn recorder_sees_real_phy_collisions_and_decodes() {
        // Same scenario as `collisions_are_really_detected_from_waveforms`,
        // but observed through the flight recorder: it must log at least one
        // IQ-clustered collision and one clean decode, and attaching it must
        // not perturb the simulated outcomes.
        let tags = vec![(8, p(2)), (5, p(2))];
        let mut bare = CoSim::new(CoSimConfig::new(tags.clone(), 11));
        let mut observed = CoSim::new(CoSimConfig::new(tags, 11));
        observed.attach_recorder(Recorder::enabled(11));
        for _ in 0..25 {
            let a = bare.step();
            let b = observed.step();
            assert_eq!(a.transmitters, b.transmitters, "recorder perturbed the sim");
            assert_eq!(a.rx.collision, b.rx.collision);
        }
        let snap = observed.take_recorder_snapshot();
        assert_eq!(snap.seed, 11);
        assert!(
            snap.count_at(EventKind::Collision { transmitters: 0 }.index()) >= 1,
            "no collision events: {:?}",
            snap.counts
        );
        assert!(
            snap.count_at(EventKind::Decoded.index()) >= 1,
            "no decode events: {:?}",
            snap.counts
        );
        // Both period-1 tags start on the same schedule, so at least one
        // must have migrated to break the tie.
        assert!(
            snap.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::TagMigrated { .. })),
            "no migration in the event ring"
        );
    }

    #[test]
    fn scenario_playback_matches_plain_cosim_until_disturbed() {
        // A scenario whose only event lies far past the slots we run must
        // not perturb a single waveform outcome.
        let tags = vec![(8, p(2)), (7, p(2))];
        let scenario = Scenario::builder().channel_epoch(500, 1).build().unwrap();
        let mut plain = CoSim::new(CoSimConfig::new(tags.clone(), 3));
        let mut scripted = CoSim::with_scenario(CoSimConfig::new(tags, 3), scenario);
        for _ in 0..20 {
            let a = plain.step();
            let b = scripted.step();
            assert_eq!(a.transmitters, b.transmitters, "scenario perturbed the sim");
            assert_eq!(a.rx.collision, b.rx.collision);
            assert_eq!(a.beacon_losses, b.beacon_losses);
        }
    }

    #[test]
    fn reader_outage_darkens_waveform_slots_and_recovers() {
        let tags = vec![(8, p(2)), (7, p(2))];
        let scenario = Scenario::builder().outage(10, 6).build().unwrap();
        let mut sim = CoSim::with_scenario(CoSimConfig::new(tags, 3), scenario);
        sim.attach_recorder(Recorder::enabled(3));
        for _ in 0..10 {
            sim.step();
        }
        for _ in 0..6 {
            let s = sim.step();
            assert!(s.transmitters.is_empty(), "tag transmitted into a dark slot");
            assert!(s.rx.packet.is_none() && !s.rx.collision);
            assert_eq!(s.beacon_losses.len(), 2, "both tags must time out");
        }
        let at = sim.run_until_converged(4, 140);
        assert!(at.is_some(), "no re-convergence after the outage");
        let snap = sim.take_recorder_snapshot();
        assert!(
            snap.count_at(EventKind::ReaderOutage { slots: 0 }.index()) >= 1,
            "outage not recorded: {:?}",
            snap.counts
        );
    }

    #[test]
    fn churn_join_and_leave_play_out_on_real_waveforms() {
        let scenario = Scenario::builder()
            .join(15, 7, p(2))
            .leave(40, 8)
            .build()
            .unwrap();
        let mut sim = CoSim::with_scenario(CoSimConfig::new(vec![(8, p(2))], 5), scenario);
        sim.attach_recorder(Recorder::enabled(5));
        assert_eq!(sim.deployed(), 1);
        for _ in 0..16 {
            sim.step();
        }
        assert_eq!(sim.deployed(), 2, "joined tag not deployed");
        while sim.slots_run() <= 40 {
            sim.step();
        }
        assert_eq!(sim.deployed(), 1, "departed tag still deployed");
        let mut saw_joined_tx = false;
        for _ in 0..30 {
            let s = sim.step();
            assert!(!s.transmitters.contains(&8), "departed tag transmitted");
            saw_joined_tx |= s.transmitters.contains(&7);
        }
        assert!(saw_joined_tx, "joined tag never transmitted after the churn");
        let snap = sim.take_recorder_snapshot();
        assert!(snap.count_at(EventKind::TagJoined.index()) >= 1);
        assert!(snap.count_at(EventKind::TagDeparted.index()) >= 1);
    }

    #[test]
    fn beacon_losses_are_rare_at_default_rate() {
        let mut sim = CoSim::new(CoSimConfig::new(vec![(8, p(2)), (11, p(4))], 13));
        let mut losses = 0;
        for _ in 0..30 {
            losses += sim.step().beacon_losses.len();
        }
        assert!(losses <= 1, "{losses} beacon losses in 60 deliveries");
    }
}
