//! Deterministic, resilient parallel trial runner.
//!
//! The evaluation sweeps (Fig. 15's 9 patterns × dozens of convergence
//! trials, Fig. 19's ALOHA runs, the dyn-* soaks, the fleet grids) are
//! embarrassingly parallel: every trial is a pure function of
//! `(pattern, seed)`. This module runs such sweeps over a
//! `std::thread::scope` worker pool while keeping results **bit-identical
//! at any thread count**:
//!
//! * each trial's seed is derived from the sweep's base seed and the trial
//!   index alone ([`trial_seed`], a splitmix64 finalizer) — never from
//!   which worker picks the job up;
//! * workers pull job indices from a shared atomic counter and keep
//!   `(index, result)` pairs locally; the results are merged by index
//!   after the pool joins, so scheduling order cannot leak into output
//!   order;
//! * every trial runs under `catch_unwind`, so one panicking trial shows
//!   up as a [`TrialError`] in its slot instead of poisoning the sweep —
//!   and even a worker thread dying outside the isolated-panic window
//!   surfaces as structured errors for its unreported trials, never as a
//!   harness panic.
//!
//! On top of that baseline, [`ResiliencePolicy`] adds the machinery long
//! sweeps need to survive real hosts:
//!
//! * **trial quarantine** — a panicking trial is retried up to
//!   [`ResiliencePolicy::retries`] times, each attempt at a
//!   deterministically-salted seed ([`retry_seed`]); a trial that fails
//!   every attempt is *quarantined*: its slot carries the final
//!   [`TrialError`] (with the attempt count) and the sweep keeps going.
//!   Because panics are pure in `(trial, seed)`, the quarantine set is
//!   itself deterministic and safe to export in metrics.
//! * **checkpoint/resume** — with a [`CheckpointSpec`], [`run_sweep`] /
//!   [`run_matrix_sweep`] append every completed trial to a
//!   length-prefixed binary file (exact [`TrialCodec`] encodings, floats
//!   as raw bits). A resumed sweep restores those slots instead of
//!   recomputing them, so an interrupted-then-resumed run is
//!   byte-identical to an uninterrupted one at any thread count. The file
//!   is deleted when the sweep completes.
//! * **deadline budgets** — [`ResiliencePolicy::budget`] stops
//!   *dispatching* new trials once the wall-clock deadline passes (already
//!   running trials finish and are checkpointed); undispatched slots come
//!   back as budget-skip errors and [`SweepStats::partial`] flags the
//!   report. [`ResiliencePolicy::halt_after`] is the deterministic
//!   test/CI analogue: it caps the number of dispatched jobs by *index*,
//!   which is scheduler-independent.
//!
//! ```
//! use arachnet_sim::sweep::{SweepConfig, run_trials};
//!
//! let cfg = SweepConfig::new(42).with_threads(4);
//! let squares = run_trials(&cfg, 8, |trial, _seed| trial * trial);
//! assert_eq!(squares[3], Ok(9));
//! ```

use std::fs;
use std::io::{Seek, SeekFrom, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use arachnet_obs::{
    flush_thread_spans, global_counter_add, global_histo_record, progress_rates, span, Event,
    EventKind, Heartbeat, Journal, TrialLane, Watchdog, NO_TAG,
};

use crate::codec::TrialCodec;
use crate::metrics::{five_num, Ecdf, FiveNum};

/// Sweep configuration: worker count, base seed, and resilience policy.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub threads: usize,
    /// Base seed; trial `i` runs with [`trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
    /// Retry / checkpoint / budget behaviour (see [`ResiliencePolicy`]).
    pub policy: ResiliencePolicy,
    /// Wall-domain run telemetry: journal, watchdog, trial lanes.
    /// `None` (default) costs nothing — no monitor thread is spawned.
    pub telemetry: Option<TelemetrySpec>,
}

impl SweepConfig {
    /// A sweep seeded with `base_seed`, using all available cores (or the
    /// `ARACHNET_SWEEP_THREADS` environment override) and the default
    /// resilience policy (one retry, no checkpoint, no budget).
    pub fn new(base_seed: u64) -> Self {
        let threads = std::env::var("ARACHNET_SWEEP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self {
            threads,
            base_seed,
            policy: ResiliencePolicy::default(),
            telemetry: None,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the per-trial retry budget (0 disables retries).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.policy.retries = retries;
        self
    }

    /// Sets a wall-clock budget: once it elapses, no new trials are
    /// dispatched and the sweep reports [`SweepStats::partial`].
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.policy.budget = Some(budget);
        self
    }

    /// Caps the number of jobs dispatched this run (deterministic
    /// interruption for tests and the resume-determinism CI gate).
    pub fn with_halt_after(mut self, jobs: u64) -> Self {
        self.policy.halt_after = Some(jobs);
        self
    }

    /// Attaches a checkpoint file ([`run_sweep`] / [`run_matrix_sweep`]
    /// honour it; the codec-less [`run_trials`] / [`run_matrix`] ignore
    /// it, since they cannot serialize results).
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.policy.checkpoint = Some(spec);
        self
    }

    /// A copy of this config whose checkpoint path (if any) is suffixed
    /// with `tag` — for experiments that run several sweeps and must not
    /// share one checkpoint file between them.
    pub fn checkpoint_tagged(&self, tag: &str) -> Self {
        let mut cfg = self.clone();
        if let Some(spec) = cfg.policy.checkpoint.take() {
            cfg.policy.checkpoint = Some(spec.tagged(tag));
        }
        cfg
    }

    /// Attaches run telemetry (journal heartbeats, stall watchdog, trial
    /// lanes). All of it is wall-domain: it cannot change the sweep's
    /// deterministic results at any thread count.
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }
}

/// Wall-domain run-telemetry options for a sweep.
///
/// Attaching a spec makes the sweep entry points spawn one
/// monitor thread alongside the workers (even at `--threads 1`, so the
/// watchdog can observe a single stuck worker). With no spec attached the
/// sweep runs exactly as before — zero extra threads, zero extra work.
#[derive(Debug, Clone)]
pub struct TelemetrySpec {
    /// Append [`Heartbeat`] lines to this JSONL file and mirror them to
    /// stderr as a live progress line. `None` disables heartbeats (the
    /// watchdog can still run).
    pub journal: Option<PathBuf>,
    /// Interval between heartbeats (min 100 ms; default 1 s).
    pub heartbeat: Duration,
    /// Stall watchdog soft deadline override in seconds. `None` derives
    /// the deadline from the running median of trial durations.
    pub stall_secs: Option<f64>,
    /// When `true`, also derive a per-trial stall watchdog even without a
    /// `stall_secs` override, and capture per-worker [`TrialLane`]s for
    /// the Chrome trace export (small per-trial allocation).
    pub lanes: bool,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetrySpec {
    /// A spec with no journal, auto watchdog deadline, no lane capture.
    pub fn new() -> Self {
        Self {
            journal: None,
            heartbeat: Duration::from_secs(1),
            stall_secs: None,
            lanes: false,
        }
    }

    /// Journal heartbeats to `path` (conventionally `JOURNAL_<id>.jsonl`).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Overrides the heartbeat interval (clamped to ≥ 100 ms).
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval.max(Duration::from_millis(100));
        self
    }

    /// Fixes the watchdog soft deadline instead of deriving it from the
    /// running median of trial durations.
    pub fn with_stall_secs(mut self, secs: f64) -> Self {
        self.stall_secs = Some(secs);
        self
    }

    /// Enables per-worker trial-lane capture for the Chrome trace export.
    pub fn with_lanes(mut self, lanes: bool) -> Self {
        self.lanes = lanes;
        self
    }
}

/// Wall-domain telemetry a sweep collected while it ran. Diagnostics
/// only — trace and journal artifacts, never the deterministic metrics
/// export (a lane's timing differs every run).
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Per-worker trial lanes (empty unless [`TelemetrySpec::lanes`]).
    pub lanes: Vec<TrialLane>,
    /// One [`EventKind::TrialStalled`] per trial the watchdog flagged.
    pub stall_events: Vec<Event>,
    /// Trials flagged by the stall watchdog.
    pub stalled: u64,
}

impl RunTelemetry {
    /// Accumulates another run's telemetry (for multi-pass experiments).
    pub fn merge(&mut self, other: RunTelemetry) {
        self.lanes.extend(other.lanes);
        self.stall_events.extend(other.stall_events);
        self.stalled += other.stalled;
    }
}

/// How a sweep behaves when trials fail, hosts die, or time runs out.
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Extra attempts for a panicking trial, each at a salted
    /// deterministic seed ([`retry_seed`]). Default 1.
    pub retries: u32,
    /// Wall-clock dispatch budget. `None` (default) runs to completion.
    pub budget: Option<Duration>,
    /// Deterministic dispatch cap: at most this many jobs (by dispatch
    /// index) run; the rest are budget-skipped. `None` (default) is
    /// unlimited. Unlike [`Self::budget`], the skip set is independent of
    /// scheduling, so partial results stay thread-invariant.
    pub halt_after: Option<u64>,
    /// Persist completed trials for crash/interrupt recovery.
    pub checkpoint: Option<CheckpointSpec>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            retries: 1,
            budget: None,
            halt_after: None,
            checkpoint: None,
        }
    }
}

/// Where and how often a sweep checkpoints completed trials.
///
/// File format (all integers little-endian):
///
/// ```text
/// header:  "ACP1" | base_seed u64 | total_trials u64          (20 bytes)
/// record:  trial u64 | kind u8 | attempts u32 | len u32 | payload
/// ```
///
/// `kind` 0 carries a [`TrialCodec`] encoding of the result; `kind` 1 a
/// UTF-8 quarantine payload. A torn tail (the process died mid-write) is
/// detected by the length prefix and truncated away on resume; a header
/// that does not match the resuming sweep's `(base_seed, trials)` shape
/// makes the whole file ignored — never silently misapplied.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path (conventionally `CHECKPOINT_<id>.bin`).
    pub path: PathBuf,
    /// Flush to disk after this many completed trials (min 1).
    pub every: u64,
    /// Restore completed trials from an existing file before running.
    /// When `false`, any existing file is overwritten.
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec at `path`, flushing every 16 trials, not resuming.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every: 16,
            resume: false,
        }
    }

    /// Overrides the flush interval (clamped to at least 1).
    pub fn with_every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }

    /// Sets whether an existing file is restored or overwritten.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// A copy of this spec whose file name carries `.<tag>` before the
    /// extension (`CHECKPOINT_x.bin` → `CHECKPOINT_x.<tag>.bin`), so
    /// multiple sweeps inside one experiment get distinct files. Tag
    /// characters outside `[A-Za-z0-9_-]` are replaced with `_`.
    pub fn tagged(&self, tag: &str) -> Self {
        let safe: String = tag
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let stem = self
            .path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("CHECKPOINT");
        let name = match self.path.extension().and_then(|e| e.to_str()) {
            Some(ext) => format!("{stem}.{safe}.{ext}"),
            None => format!("{stem}.{safe}"),
        };
        let mut spec = self.clone();
        spec.path = self.path.with_file_name(name);
        spec
    }
}

/// Payload of a budget-skipped slot: the trial was never dispatched
/// because the sweep's budget (or dispatch cap) ran out first.
pub const BUDGET_SKIP_PAYLOAD: &str = "skipped: sweep budget exhausted before dispatch";

/// A trial that failed instead of returning a value: it panicked on every
/// attempt, its worker thread died before reporting it, or the sweep's
/// budget ran out before it was dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    /// Index of the failed trial.
    pub trial: u64,
    /// The panic payload (or a description of how the trial was lost).
    pub payload: String,
    /// Attempts made (first run plus retries); 0 for budget-skipped
    /// slots that never ran.
    pub attempts: u32,
}

impl TrialError {
    /// `true` when this slot was never dispatched because the sweep's
    /// wall-clock budget (or dispatch cap) ran out — a *partial-report*
    /// marker, not a quarantined failure.
    pub fn is_budget_skip(&self) -> bool {
        self.payload == BUDGET_SKIP_PAYLOAD
    }
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.attempts > 1 {
            write!(
                f,
                "trial {} failed after {} attempts: {}",
                self.trial, self.attempts, self.payload
            )
        } else {
            write!(f, "trial {} failed: {}", self.trial, self.payload)
        }
    }
}

impl std::error::Error for TrialError {}

/// Per-trial outcome: the trial's value, or the error that ate it.
pub type TrialResult<T> = Result<T, TrialError>;

/// Derives trial `index`'s seed from the sweep's base seed using the
/// splitmix64 finalizer, so neighbouring trials get decorrelated streams
/// and the mapping is independent of worker scheduling.
pub fn trial_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt folded into retry seeds so attempt `a > 0` of a trial draws a
/// stream decorrelated from attempt 0 (and from every other trial).
const RETRY_SALT: u64 = 0xA5A5_5EED_0BAD_F00D;

/// Seed for retry `attempt` (1-based) of a trial whose first attempt ran
/// at `first_seed`. Deterministic: a flaky-by-seed trial either always
/// recovers on the same attempt or is always quarantined.
pub fn retry_seed(first_seed: u64, attempt: u64) -> u64 {
    trial_seed(first_seed ^ RETRY_SALT, attempt)
}

/// Counters describing how resilient a sweep's execution was. The
/// sim-domain fields (`trials`, `completed`, `quarantined`, `retried`,
/// `skipped`, `partial`) are deterministic and safe to export in metrics;
/// `restored` is run-shape provenance (how this particular invocation got
/// its results) and must stay out of deterministic exports, or a resumed
/// run could never be byte-identical to an uninterrupted one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total slots in the sweep.
    pub trials: u64,
    /// Slots that hold a value.
    pub completed: u64,
    /// Slots quarantined after exhausting every attempt (plus slots lost
    /// to a dying worker).
    pub quarantined: u64,
    /// Extra attempts made beyond each trial's first (counting restored
    /// trials' recorded attempts, so resumed runs report identically).
    pub retried: u64,
    /// Slots restored from a checkpoint instead of recomputed.
    pub restored: u64,
    /// Slots never dispatched because the budget/dispatch cap ran out.
    pub skipped: u64,
    /// `true` when any slot was budget-skipped: the report is partial.
    pub partial: bool,
}

impl SweepStats {
    /// Accumulates another sweep's counters into this one (for
    /// experiments that run several sweeps and report once).
    pub fn merge(&mut self, other: &SweepStats) {
        self.trials += other.trials;
        self.completed += other.completed;
        self.quarantined += other.quarantined;
        self.retried += other.retried;
        self.restored += other.restored;
        self.skipped += other.skipped;
        self.partial |= other.partial;
    }
}

/// A resilient sweep's results plus its execution counters.
#[derive(Debug, Clone)]
pub struct SweepRun<T> {
    /// Per-trial outcomes, ordered by trial index.
    pub results: Vec<TrialResult<T>>,
    /// Quarantine / resume / budget counters.
    pub stats: SweepStats,
    /// Wall-domain telemetry (empty unless the config attached a
    /// [`TelemetrySpec`]).
    pub telemetry: RunTelemetry,
}

impl<T> SweepRun<T> {
    /// Flight-recorder events for the quarantined slots (deterministic:
    /// safe to merge into exported snapshots).
    pub fn quarantine_events(&self) -> Vec<Event> {
        quarantine_events(&self.results)
    }
}

/// A resilient matrix run: `cells[cell][trial]` plus execution counters.
#[derive(Debug, Clone)]
pub struct MatrixRun<T> {
    /// Per-cell rows of per-trial outcomes, ordered like the inputs.
    pub cells: Vec<Vec<TrialResult<T>>>,
    /// Quarantine / resume / budget counters for the whole grid.
    pub stats: SweepStats,
    /// Wall-domain telemetry (empty unless the config attached a
    /// [`TelemetrySpec`]; lane `trial` values are flat job indices).
    pub telemetry: RunTelemetry,
}

impl<T> MatrixRun<T> {
    /// Flight-recorder events for the quarantined slots (slot = flat job
    /// index over the `cells × trials` grid).
    pub fn quarantine_events(&self) -> Vec<Event> {
        quarantine_events(self.cells.iter().flatten())
    }
}

/// One [`EventKind::TrialQuarantined`] per quarantined slot (budget skips
/// excluded — they are partial-report markers, not failures).
pub fn quarantine_events<'a, T: 'a>(
    results: impl IntoIterator<Item = &'a TrialResult<T>>,
) -> Vec<Event> {
    results
        .into_iter()
        .filter_map(|r| r.as_ref().err())
        .filter(|e| !e.is_budget_skip())
        .map(|e| Event {
            slot: e.trial,
            tag: NO_TAG,
            kind: EventKind::TrialQuarantined {
                attempts: e.attempts.min(u8::MAX as u32) as u8,
            },
        })
        .collect()
}

/// Provenance events for how this run executed ([`EventKind::SweepResumed`],
/// [`EventKind::BudgetExhausted`]). Wall/run-shape domain: print or trace
/// them, but never fold them into deterministic metric exports — a resumed
/// run restores a different number of trials than an uninterrupted one.
pub fn provenance_events(stats: &SweepStats) -> Vec<Event> {
    let mut out = Vec::new();
    if stats.restored > 0 {
        out.push(Event {
            slot: 0,
            tag: NO_TAG,
            kind: EventKind::SweepResumed {
                restored: stats.restored.min(u64::from(u16::MAX)) as u16,
            },
        });
    }
    if stats.partial {
        out.push(Event {
            slot: 0,
            tag: NO_TAG,
            kind: EventKind::BudgetExhausted,
        });
    }
    out
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Function-pointer vtable for checkpoint serialization, so the core
/// runner stays monomorphic over `T` without a `TrialCodec` bound on the
/// codec-less entry points.
struct CodecVt<T> {
    encode: fn(&T, &mut Vec<u8>),
    decode: fn(&mut &[u8]) -> Option<T>,
}

impl<T> Clone for CodecVt<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for CodecVt<T> {}

const CKPT_MAGIC: [u8; 4] = *b"ACP1";
const CKPT_HEADER_LEN: usize = 20;
const CKPT_REC_HEADER_LEN: usize = 17;

/// One parsed checkpoint record.
struct CkptRecord {
    trial: u64,
    ok: bool,
    attempts: u32,
    payload: Vec<u8>,
}

fn encode_record(trial: u64, kind: u8, attempts: u32, payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&trial.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&attempts.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses a checkpoint file. Returns the valid records and the byte
/// length of the valid prefix (a torn tail is reported and dropped), or
/// `None` when the file is absent or its header does not match this
/// sweep's `(base_seed, trials)` shape.
fn load_checkpoint(path: &Path, base_seed: u64, trials: u64) -> Option<(Vec<CkptRecord>, u64)> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < CKPT_HEADER_LEN || bytes[..4] != CKPT_MAGIC {
        arachnet_obs::warn!(
            "ignoring checkpoint '{}': missing or foreign header",
            path.display()
        );
        return None;
    }
    let seed = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let total = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
    if seed != base_seed || total != trials {
        arachnet_obs::warn!(
            "ignoring checkpoint '{}': shape mismatch (file seed {seed}, {total} trials; sweep seed {base_seed}, {trials} trials)",
            path.display()
        );
        return None;
    }
    let mut records = Vec::new();
    let mut off = CKPT_HEADER_LEN;
    while bytes.len() - off >= CKPT_REC_HEADER_LEN {
        let trial = u64::from_le_bytes(bytes[off..off + 8].try_into().ok()?);
        let kind = bytes[off + 8];
        let attempts = u32::from_le_bytes(bytes[off + 9..off + 13].try_into().ok()?);
        let len = u32::from_le_bytes(bytes[off + 13..off + 17].try_into().ok()?) as usize;
        let body = off + CKPT_REC_HEADER_LEN;
        if kind > 1 || trial >= trials || bytes.len() - body < len {
            break;
        }
        records.push(CkptRecord {
            trial,
            ok: kind == 0,
            attempts,
            payload: bytes[body..body + len].to_vec(),
        });
        off = body + len;
    }
    if off < bytes.len() {
        arachnet_obs::warn!(
            "checkpoint '{}': dropping {} torn trailing bytes",
            path.display(),
            bytes.len() - off
        );
    }
    Some((records, off as u64))
}

/// Buffered appender for checkpoint records.
struct CkptWriter {
    file: fs::File,
    buf: Vec<u8>,
    buffered: u64,
    every: u64,
}

impl CkptWriter {
    fn push(&mut self, rec: &[u8]) -> std::io::Result<()> {
        self.buf.extend_from_slice(rec);
        self.buffered += 1;
        if self.buffered >= self.every {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.buffered = 0;
        Ok(())
    }
}

/// Opens the checkpoint file for appending. `append_at` truncates to the
/// valid prefix of a resumed file; `None` starts a fresh file with a new
/// header. I/O failure disables checkpointing (with a warning) — it never
/// fails the sweep.
fn open_writer(
    spec: &CheckpointSpec,
    base_seed: u64,
    trials: u64,
    append_at: Option<u64>,
) -> Option<CkptWriter> {
    let opened = (|| -> std::io::Result<fs::File> {
        match append_at {
            Some(valid) => {
                let mut f = fs::OpenOptions::new().write(true).open(&spec.path)?;
                f.set_len(valid)?;
                f.seek(SeekFrom::End(0))?;
                Ok(f)
            }
            None => {
                let mut f = fs::File::create(&spec.path)?;
                let mut header = Vec::with_capacity(CKPT_HEADER_LEN);
                header.extend_from_slice(&CKPT_MAGIC);
                header.extend_from_slice(&base_seed.to_le_bytes());
                header.extend_from_slice(&trials.to_le_bytes());
                f.write_all(&header)?;
                Ok(f)
            }
        }
    })();
    match opened {
        Ok(file) => Some(CkptWriter {
            file,
            buf: Vec::new(),
            buffered: 0,
            every: spec.every.max(1),
        }),
        Err(e) => {
            arachnet_obs::warn!(
                "sweep checkpoint '{}' unavailable, checkpointing disabled: {e}",
                spec.path.display()
            );
            None
        }
    }
}

type JobOutput<T> = (u64, u32, TrialResult<T>);

/// Live telemetry shared between the workers and the monitor thread.
/// Everything in here is wall-domain; no field ever feeds results.
struct TeleRt {
    spec: TelemetrySpec,
    watchdog: Watchdog,
    start: Instant,
    journal: Mutex<Option<Journal>>,
    finished_live: AtomicU64,
    quarantined_live: AtomicU64,
    inflight: AtomicU32,
}

impl TeleRt {
    fn new(spec: TelemetrySpec, workers: usize) -> Self {
        let journal = spec.journal.as_deref().map(Journal::open);
        let watchdog = Watchdog::new(workers, spec.stall_secs);
        TeleRt {
            spec,
            watchdog,
            start: Instant::now(),
            journal: Mutex::new(journal),
            finished_live: AtomicU64::new(0),
            quarantined_live: AtomicU64::new(0),
            inflight: AtomicU32::new(0),
        }
    }

    fn begin(&self, worker: usize, trial: u64) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        self.watchdog.begin(worker, trial);
    }

    fn end<T>(&self, worker: usize, out: &JobOutput<T>) {
        self.watchdog.end(worker);
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        self.finished_live.fetch_add(1, Ordering::Relaxed);
        if out.2.is_err() {
            self.quarantined_live.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Emit one heartbeat: append to the journal and mirror a progress
    /// line to stderr. No-op without a journal path.
    fn emit(
        &self,
        trials: u64,
        restored: u64,
        skipped: u64,
        workers: u32,
        deadline: Option<Instant>,
        done: bool,
    ) {
        if self.spec.journal.is_none() {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let finished = self.finished_live.load(Ordering::Relaxed);
        let quarantined = self.quarantined_live.load(Ordering::Relaxed);
        let completed = restored + finished.saturating_sub(quarantined);
        let remaining = trials
            .saturating_sub(restored)
            .saturating_sub(finished)
            .saturating_sub(skipped);
        // Clamped rate math (`progress_rates`): the first beat after a
        // checkpoint resume can fire on a ~zero wall delta, and a naive
        // division would serialize `inf` tps / eta into the journal,
        // breaking readback. Zero-rate windows report 0.0 and a null ETA.
        let (tps, eta) = progress_rates(finished, elapsed, remaining);
        let eta_secs = if done {
            None
        } else if remaining == 0 {
            Some(0.0)
        } else {
            eta
        };
        let budget_secs_left = deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_secs_f64())
            .filter(|_| !done);
        let beat = Heartbeat {
            t_ms: self.start.elapsed().as_millis().min(u64::MAX as u128) as u64,
            trials,
            completed,
            quarantined,
            restored,
            skipped,
            inflight: self.inflight.load(Ordering::Relaxed),
            workers,
            stalled: self.watchdog.stalled(),
            tps,
            eta_secs,
            budget_secs_left,
            done,
        };
        if let Some(j) = self.journal.lock().unwrap_or_else(|p| p.into_inner()).as_mut() {
            j.append(&beat);
        }
        eprintln!("{}", beat.progress_line());
    }
}

/// The shared runner behind every public entry point: seed derivation via
/// `seed_of`, retry/quarantine around `f`, optional checkpoint restore +
/// append when `codec` is present, budget/halt dispatch gating, and the
/// scheduling-independent merge.
fn run_core<T, F, S>(
    cfg: &SweepConfig,
    trials: u64,
    seed_of: S,
    f: F,
    codec: Option<CodecVt<T>>,
) -> SweepRun<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
    S: Fn(u64) -> u64 + Sync,
{
    let pol = &cfg.policy;
    let mut slots: Vec<Option<TrialResult<T>>> = (0..trials).map(|_| None).collect();
    let mut attempts_of: Vec<u32> = vec![0; trials as usize];
    let mut restored = 0u64;

    // --- restore from checkpoint ---------------------------------------
    let ckpt = match (&codec, pol.checkpoint.as_ref()) {
        (Some(_), Some(spec)) => Some(spec),
        _ => None,
    };
    let mut writer: Option<CkptWriter> = None;
    if let (Some(vt), Some(spec)) = (codec, ckpt) {
        let mut append_at = None;
        if spec.resume {
            if let Some((records, valid)) = load_checkpoint(&spec.path, cfg.base_seed, trials) {
                let mut dup_warned = false;
                for rec in records {
                    let i = rec.trial as usize;
                    if slots[i].is_some() {
                        // Duplicate record for an already-restored trial
                        // (a crash between append and fsync can replay a
                        // record on the next run). Policy: FIRST wins —
                        // the earliest record is the one whose bytes the
                        // original run committed; a later duplicate may be
                        // a retry from a torn rewrite. Warn once per file,
                        // keep `restored` consistent (the trial was
                        // already counted).
                        if !dup_warned {
                            arachnet_obs::warn!(
                                "checkpoint '{}': duplicate record for trial {} \
                                 (keeping the first occurrence)",
                                spec.path.display(),
                                rec.trial
                            );
                            dup_warned = true;
                        }
                        continue;
                    }
                    let slot = if rec.ok {
                        let mut input = rec.payload.as_slice();
                        match (vt.decode)(&mut input) {
                            Some(v) if input.is_empty() => Ok(v),
                            _ => {
                                arachnet_obs::warn!(
                                    "checkpoint '{}': undecodable record for trial {}, re-running it",
                                    spec.path.display(),
                                    rec.trial
                                );
                                continue;
                            }
                        }
                    } else {
                        Err(TrialError {
                            trial: rec.trial,
                            payload: String::from_utf8_lossy(&rec.payload).into_owned(),
                            attempts: rec.attempts,
                        })
                    };
                    restored += 1;
                    slots[i] = Some(slot);
                    attempts_of[i] = rec.attempts;
                }
                append_at = Some(valid);
            }
        }
        writer = open_writer(spec, cfg.base_seed, trials, append_at);
    }

    let pending: Vec<u64> = (0..trials)
        .filter(|&i| slots[i as usize].is_none())
        .collect();
    let workers = cfg.threads.clamp(1, pending.len().max(1));

    // Wall-domain utilization stats land in the obs globals; `take_global_stats`
    // reads them out. They are diagnostics about this host's scheduling, so
    // they are never part of the deterministic metrics export (DESIGN.md §11).
    let _sweep_span = span("sweep.run_trials");
    global_counter_add("sweep.sweeps", 1);
    global_counter_add("sweep.trials", trials);
    global_counter_add("sweep.workers", workers as u64);
    if restored > 0 {
        global_counter_add("sweep.resumed_trials", restored);
    }

    let deadline = pol.budget.map(|b| Instant::now() + b);
    let retries = pol.retries;
    let next_job = AtomicU64::new(0);
    let starved = AtomicBool::new(false);
    let sink: Mutex<Option<CkptWriter>> = Mutex::new(writer);
    let tele: Option<TeleRt> = cfg
        .telemetry
        .as_ref()
        .map(|spec| TeleRt::new(spec.clone(), workers));

    let one_job = |i: u64| -> JobOutput<T> {
        let first = seed_of(i);
        let mut attempt = 0u32;
        loop {
            let seed = if attempt == 0 {
                first
            } else {
                retry_seed(first, u64::from(attempt))
            };
            let r = catch_unwind(AssertUnwindSafe(|| f(i, seed)));
            attempt += 1;
            match r {
                Ok(v) => return (i, attempt, Ok(v)),
                Err(p) => {
                    if attempt > retries {
                        return (
                            i,
                            attempt,
                            Err(TrialError {
                                trial: i,
                                payload: panic_text(p),
                                attempts: attempt,
                            }),
                        );
                    }
                    global_counter_add("sweep.retries", 1);
                }
            }
        }
    };

    let checkpoint_one = |i: u64, attempts: u32, r: &TrialResult<T>| {
        let Some(vt) = codec else { return };
        let mut guard = sink.lock().unwrap_or_else(|p| p.into_inner());
        let Some(w) = guard.as_mut() else { return };
        let mut payload = Vec::new();
        let kind = match r {
            Ok(v) => {
                (vt.encode)(v, &mut payload);
                0u8
            }
            Err(e) => {
                payload.extend_from_slice(e.payload.as_bytes());
                1
            }
        };
        let mut rec = Vec::with_capacity(CKPT_REC_HEADER_LEN + payload.len());
        encode_record(i, kind, attempts, &payload, &mut rec);
        if let Err(e) = w.push(&rec) {
            arachnet_obs::warn!("sweep checkpoint write failed, checkpointing disabled: {e}");
            *guard = None;
        }
    };

    let work = |widx: usize| {
        let mut local: Vec<JobOutput<T>> = Vec::new();
        let mut lanes: Vec<TrialLane> = Vec::new();
        loop {
            let k = next_job.fetch_add(1, Ordering::Relaxed);
            if k >= pending.len() as u64 {
                break;
            }
            if pol.halt_after.is_some_and(|h| k >= h)
                || deadline.is_some_and(|d| Instant::now() >= d)
            {
                starved.store(true, Ordering::Relaxed);
                break;
            }
            let i = pending[k as usize];
            let _t = span("sweep.trial");
            let lane_start = tele.as_ref().map(|t| {
                t.begin(widx, i);
                t.start.elapsed()
            });
            let out = one_job(i);
            if let Some(t) = tele.as_ref() {
                t.end(widx, &out);
                if t.spec.lanes {
                    let start_us = lane_start
                        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
                        .unwrap_or(0);
                    let end_us = t.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    lanes.push(TrialLane {
                        trial: i,
                        worker: widx as u32,
                        start_us,
                        dur_us: end_us.saturating_sub(start_us),
                        ok: out.2.is_ok(),
                    });
                }
            }
            checkpoint_one(out.0, out.1, &out.2);
            local.push(out);
        }
        // How evenly the shared counter spread jobs across workers (a
        // proxy for steal balance).
        global_histo_record("sweep.jobs_per_worker", local.len() as u64);
        (local, lanes)
    };

    let mut worker_deaths: Vec<String> = Vec::new();
    let mut outputs: Vec<JobOutput<T>> = Vec::new();
    let mut all_lanes: Vec<TrialLane> = Vec::new();
    if pending.is_empty() {
        // Fully restored (or zero trials): nothing to dispatch — and no
        // jobs_per_worker sample, so readers of that histogram must
        // tolerate its absence.
    } else if workers <= 1 && tele.is_none() {
        let (local, lanes) = work(0);
        outputs = local;
        all_lanes = lanes;
    } else {
        // With telemetry attached, even a 1-worker sweep takes the scoped
        // path so the monitor thread can watch it.
        let monitor_stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = (0..workers)
                .map(|widx| {
                    scope.spawn(move || {
                        let out = work(widx);
                        // Spans recorded inside trials live in this worker's
                        // thread-local map; merge them before the thread dies.
                        flush_thread_spans();
                        out
                    })
                })
                .collect();
            let monitor = tele.as_ref().map(|t| {
                let monitor_stop = &monitor_stop;
                scope.spawn(move || {
                    let mut last_beat = Instant::now();
                    while !monitor_stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(25));
                        t.watchdog.poll();
                        if last_beat.elapsed() >= t.spec.heartbeat {
                            last_beat = Instant::now();
                            t.emit(trials, restored, 0, workers as u32, deadline, false);
                        }
                    }
                })
            });
            for h in handles {
                match h.join() {
                    Ok((local, lanes)) => {
                        outputs.extend(local);
                        all_lanes.extend(lanes);
                    }
                    Err(p) => worker_deaths.push(panic_text(p)),
                }
            }
            monitor_stop.store(true, Ordering::Relaxed);
            if let Some(m) = monitor {
                let _ = m.join();
            }
        });
    }
    for (i, a, r) in outputs {
        attempts_of[i as usize] = a;
        slots[i as usize] = Some(r);
    }

    // --- merge ----------------------------------------------------------
    let starved = starved.load(Ordering::Relaxed);
    let death_detail = if worker_deaths.is_empty() {
        "trial was never executed".to_string()
    } else {
        format!(
            "sweep worker died before reporting this trial: {}",
            worker_deaths.join("; ")
        )
    };
    let mut stats = SweepStats {
        trials,
        restored,
        ..SweepStats::default()
    };
    let results: Vec<TrialResult<T>> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(r) => r,
            None if starved && worker_deaths.is_empty() => {
                stats.skipped += 1;
                Err(TrialError {
                    trial: i as u64,
                    payload: BUDGET_SKIP_PAYLOAD.to_string(),
                    attempts: 0,
                })
            }
            None => Err(TrialError {
                trial: i as u64,
                payload: death_detail.clone(),
                attempts: 1,
            }),
        })
        .collect();
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(_) => stats.completed += 1,
            Err(e) if e.is_budget_skip() => {}
            Err(_) => stats.quarantined += 1,
        }
        stats.retried += u64::from(attempts_of[i].saturating_sub(1));
    }
    stats.partial = stats.skipped > 0;
    if stats.quarantined > 0 {
        global_counter_add("sweep.quarantined", stats.quarantined);
    }
    if stats.skipped > 0 {
        global_counter_add("sweep.budget_skipped", stats.skipped);
    }

    // --- finalize the checkpoint ----------------------------------------
    {
        let mut guard = sink.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.flush() {
                arachnet_obs::warn!("sweep checkpoint final flush failed: {e}");
            }
        }
        if let Some(spec) = ckpt {
            if !stats.partial && worker_deaths.is_empty() {
                // The sweep completed: the checkpoint has served its
                // purpose (quarantined slots are final results, not work
                // to redo).
                *guard = None;
                let _ = fs::remove_file(&spec.path);
            }
        }
    }

    // --- finalize telemetry ---------------------------------------------
    // The final heartbeat is written here (outside the monitor loop) so
    // even a sweep shorter than one heartbeat interval journals at least
    // one line, with `done:true` and the final skip count.
    let telemetry = match tele {
        None => RunTelemetry::default(),
        Some(t) => {
            t.watchdog.poll();
            t.emit(
                trials,
                restored,
                stats.skipped,
                workers as u32,
                deadline,
                true,
            );
            let stall_events = t.watchdog.take_events();
            all_lanes.sort_unstable_by_key(|l| (l.start_us, l.worker, l.trial));
            RunTelemetry {
                lanes: all_lanes,
                stalled: t.watchdog.stalled(),
                stall_events,
            }
        }
    };

    SweepRun {
        results,
        stats,
        telemetry,
    }
}

/// Runs `trials` independent trials of `f(trial_index, trial_seed)` across
/// the worker pool and returns results ordered by trial index. Bit-identical
/// at any thread count; a panicking trial is retried per the config's
/// [`ResiliencePolicy`] and quarantined as `Err(TrialError)` in its slot on
/// final failure. Even a worker thread dying outside the isolated-panic
/// window cannot poison the sweep: the trials it never reported come back
/// as structured errors. Checkpoint specs are ignored here (no codec) —
/// use [`run_sweep`] for resumable sweeps.
pub fn run_trials<T, F>(cfg: &SweepConfig, trials: u64, f: F) -> Vec<TrialResult<T>>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    run_core(
        cfg,
        trials,
        |i| trial_seed(cfg.base_seed, i),
        f,
        None::<CodecVt<T>>,
    )
    .results
}

/// [`run_trials`] with the full resilience feature set: the returned
/// [`SweepRun`] carries quarantine/resume/budget counters, and when the
/// config has a [`CheckpointSpec`], completed trials are persisted and
/// restored so an interrupted sweep resumes byte-identically.
pub fn run_sweep<T, F>(cfg: &SweepConfig, trials: u64, f: F) -> SweepRun<T>
where
    T: Send + TrialCodec,
    F: Fn(u64, u64) -> T + Sync,
{
    run_core(
        cfg,
        trials,
        |i| trial_seed(cfg.base_seed, i),
        f,
        Some(CodecVt {
            encode: <T as TrialCodec>::encode,
            decode: <T as TrialCodec>::decode,
        }),
    )
}

fn matrix_core<P, T, F>(
    cfg: &SweepConfig,
    cells: &[P],
    trials: u64,
    f: F,
    codec: Option<CodecVt<T>>,
) -> SweepRun<T>
where
    P: Sync,
    T: Send,
    F: Fn(&P, u64, u64) -> T + Sync,
{
    let per = trials.max(1);
    let total = cells.len() as u64 * trials;
    run_core(
        cfg,
        total,
        |job| trial_seed(trial_seed(cfg.base_seed, job / per), job % per),
        |job, seed| f(&cells[(job / per) as usize], job % per, seed),
        codec,
    )
}

fn reshape<T>(flat: Vec<TrialResult<T>>, cells: usize, trials: u64) -> Vec<Vec<TrialResult<T>>> {
    let mut out: Vec<Vec<TrialResult<T>>> = Vec::with_capacity(cells);
    let mut it = flat.into_iter();
    for _ in 0..cells {
        out.push(it.by_ref().take(trials as usize).collect());
    }
    out
}

/// Runs a `cells × trials` matrix (e.g. Table 3 patterns × seeds) over one
/// shared worker pool, returning `results[cell][trial]` ordered like the
/// inputs. A trial's seed depends only on `(base_seed, cell index, trial
/// index)` — never on worker scheduling — so the whole matrix is
/// bit-identical at any thread count. Retries re-run a trial at a salted
/// seed ([`retry_seed`] over the cell-trial seed).
pub fn run_matrix<P, T, F>(
    cfg: &SweepConfig,
    cells: &[P],
    trials: u64,
    f: F,
) -> Vec<Vec<TrialResult<T>>>
where
    P: Sync,
    T: Send,
    F: Fn(&P, u64, u64) -> T + Sync,
{
    let run = matrix_core(cfg, cells, trials, f, None::<CodecVt<T>>);
    reshape(run.results, cells.len(), trials)
}

/// [`run_matrix`] with the full resilience feature set (checkpoint/resume
/// over the flattened `cells × trials` job space, quarantine and budget
/// counters in [`MatrixRun::stats`]).
pub fn run_matrix_sweep<P, T, F>(
    cfg: &SweepConfig,
    cells: &[P],
    trials: u64,
    f: F,
) -> MatrixRun<T>
where
    P: Sync,
    T: Send + TrialCodec,
    F: Fn(&P, u64, u64) -> T + Sync,
{
    let run = matrix_core(
        cfg,
        cells,
        trials,
        f,
        Some(CodecVt {
            encode: <T as TrialCodec>::encode,
            decode: <T as TrialCodec>::decode,
        }),
    );
    MatrixRun {
        cells: reshape(run.results, cells.len(), trials),
        stats: run.stats,
        telemetry: run.telemetry,
    }
}

/// Aggregate of a sweep of scalar trials: five-number summary, empirical
/// CDF, and the errors that were excluded from both.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Trials that returned a value.
    pub ok: usize,
    /// Trials that failed (panicked or were lost with their worker).
    pub errors: Vec<TrialError>,
    /// Five-number summary over the successful trials.
    pub stats: FiveNum,
    /// Empirical CDF over the successful trials.
    pub ecdf: Ecdf,
}

/// Reduces scalar trial results to a [`SweepSummary`] (errors set aside,
/// statistics over the survivors).
pub fn summarize(results: &[TrialResult<f64>]) -> SweepSummary {
    let mut values = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(v) => values.push(*v),
            Err(e) => errors.push(e.clone()),
        }
    }
    SweepSummary {
        ok: values.len(),
        errors,
        stats: five_num(&values),
        ecdf: Ecdf::new(&values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use crate::slotsim::first_convergence_time;
    use std::sync::atomic::AtomicUsize;

    /// A unique checkpoint path under the system temp dir (tests run in
    /// parallel within one process and across processes).
    fn temp_ckpt(label: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "arachnet_ckpt_{}_{label}_{n}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn results_are_ordered_by_trial_index() {
        let cfg = SweepConfig::new(7).with_threads(4);
        let out = run_trials(&cfg, 64, |i, _| i);
        let expect: Vec<_> = (0..64).map(Ok).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn bit_identical_at_any_thread_count() {
        // The acceptance property of the whole module: 1 worker and N
        // workers produce byte-for-byte identical sweeps (seeds derive from
        // the trial index, never the scheduler).
        let run_at = |threads| {
            let cfg = SweepConfig::new(42).with_threads(threads);
            run_trials(&cfg, 24, |_i, seed| {
                first_convergence_time(&Pattern::c1(), seed, 50_000, true)
            })
        };
        let single = run_at(1);
        for threads in [2, 4, 8] {
            assert_eq!(single, run_at(threads), "threads={threads}");
        }
    }

    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let cells = [1u64, 2, 3];
        let run_at = |threads| {
            let cfg = SweepConfig::new(9).with_threads(threads);
            run_matrix(&cfg, &cells, 5, |&c, t, seed| (c, t, seed))
        };
        let single = run_at(1);
        assert_eq!(single, run_at(4));
        assert_eq!(single, run_at(7));
        assert_eq!(single.len(), 3);
        assert!(single.iter().all(|row| row.len() == 5));
        // Distinct cells must not share trial seeds. Error slots are
        // propagated, never unwrapped: collect the successes explicitly.
        let oks: Vec<u64> = single
            .iter()
            .flatten()
            .filter_map(|r| r.as_ref().ok())
            .map(|&(_, _, seed)| seed)
            .collect();
        assert_eq!(oks.len(), 15, "all matrix slots succeeded");
        let seeds: std::collections::HashSet<u64> = oks.into_iter().collect();
        assert_eq!(seeds.len(), 15);
    }

    #[test]
    fn matrix_quarantines_injected_panic_without_poisoning_the_grid() {
        // Regression for the aggregator unwrap: one poisoned slot must
        // stay a structured error in its own cell while every other slot
        // keeps its value — at any thread count.
        let cells = ["a", "b", "c"];
        let run_at = |threads| {
            let cfg = SweepConfig::new(11).with_threads(threads).with_retries(1);
            run_matrix(&cfg, &cells, 4, |&name, t, seed| {
                assert!(
                    !(name == "b" && t == 2),
                    "injected failure in cell b trial 2"
                );
                (name.len() as u64, t, seed)
            })
        };
        let grid = run_at(1);
        assert_eq!(grid, run_at(5), "error slots are thread-invariant too");
        for (c, row) in grid.iter().enumerate() {
            for (t, r) in row.iter().enumerate() {
                if c == 1 && t == 2 {
                    let e = r.as_ref().unwrap_err();
                    assert!(e.payload.contains("injected failure"), "{}", e.payload);
                    assert_eq!(e.attempts, 2, "first attempt plus one retry");
                    // Flat job index over the 3×4 grid.
                    assert_eq!(e.trial, 6);
                } else {
                    assert!(r.is_ok(), "cell {c} trial {t} poisoned: {r:?}");
                }
            }
        }
        // The quarantined slot surfaces as a deterministic recorder event.
        let events = quarantine_events(grid.iter().flatten());
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            EventKind::TrialQuarantined { attempts: 2 }
        );
    }

    #[test]
    fn panics_are_isolated_per_trial() {
        let cfg = SweepConfig::new(1).with_threads(3);
        let out = run_trials(&cfg, 10, |i, _| {
            assert!(i != 7, "trial seven always fails");
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.trial, 7);
                assert!(e.payload.contains("seven"), "{}", e.payload);
            } else {
                assert_eq!(*r, Ok(i as u64 * 2));
            }
        }
    }

    #[test]
    fn retry_recovers_a_seed_flaky_trial() {
        // A trial that panics only at its attempt-0 seed succeeds on the
        // salted retry — deterministically.
        let base = 1234;
        let cfg = SweepConfig::new(base).with_threads(2).with_retries(1);
        let run = run_sweep(&cfg, 6, |i, seed| {
            assert!(
                !(i == 3 && seed == trial_seed(base, 3)),
                "flaky at first seed"
            );
            seed
        });
        assert!(run.results.iter().all(Result::is_ok));
        assert_eq!(run.results[3], Ok(retry_seed(trial_seed(base, 3), 1)));
        assert_eq!(run.stats.completed, 6);
        assert_eq!(run.stats.retried, 1);
        assert_eq!(run.stats.quarantined, 0);
        assert!(!run.stats.partial);
    }

    #[test]
    fn exhausted_retries_quarantine_with_attempt_count() {
        let cfg = SweepConfig::new(5).with_threads(1).with_retries(2);
        let run = run_sweep(&cfg, 4, |i, _seed| {
            assert!(i != 1, "always fails");
            i
        });
        let e = run.results[1].as_ref().unwrap_err();
        assert_eq!(e.attempts, 3, "first attempt plus two retries");
        assert!(!e.is_budget_skip());
        assert_eq!(run.stats.quarantined, 1);
        assert_eq!(run.stats.retried, 2);
        assert_eq!(run.stats.completed, 3);
        let events = run.quarantine_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].slot, 1);
        assert_eq!(events[0].kind, EventKind::TrialQuarantined { attempts: 3 });
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        // Regression: 8 requested workers with 2 trials must neither
        // spawn idle workers nor panic any utilization bookkeeping.
        let cfg = SweepConfig::new(3).with_threads(8);
        let out = run_trials(&cfg, 2, |i, _| i * 10);
        assert_eq!(out, vec![Ok(0), Ok(10)]);
        // The jobs_per_worker histogram may have been drained by a
        // concurrent test (the global sinks are process-wide), so its
        // absence is tolerated — the old `.expect()` here was the bug.
        let stats = arachnet_obs::take_global_stats();
        if let Some(jobs) = stats.histos.get("sweep.jobs_per_worker") {
            assert!(jobs.count() >= 1);
        }
    }

    #[test]
    fn sweeps_publish_worker_utilization_stats() {
        // Utilization diagnostics land in the process-global obs sinks.
        // Other tests in this binary also run sweeps concurrently, so the
        // assertions are lower bounds, never exact counts — and a
        // concurrent `take_global_stats` can have drained a sink entirely,
        // so presence is checked gracefully instead of `.expect()`ed.
        let cfg = SweepConfig::new(77).with_threads(3);
        let out = run_trials(&cfg, 12, |i, _| i + 1);
        assert_eq!(out.len(), 12);
        let stats = arachnet_obs::take_global_stats();
        if let Some(jobs) = stats.histos.get("sweep.jobs_per_worker") {
            assert!(jobs.count() >= 1, "at least this sweep's workers sampled");
        }
        if let Some(&trials) = stats.counters.get("sweep.trials") {
            assert!(trials >= 12, "sweep.trials: {trials}");
        }
    }

    #[test]
    fn budget_zero_skips_everything_as_a_partial_report() {
        let cfg = SweepConfig::new(8)
            .with_threads(4)
            .with_budget(Duration::ZERO);
        let run = run_sweep(&cfg, 5, |i, _| i);
        assert_eq!(run.stats.skipped, 5);
        assert_eq!(run.stats.completed, 0);
        assert!(run.stats.partial);
        assert!(run
            .results
            .iter()
            .all(|r| r.as_ref().is_err_and(TrialError::is_budget_skip)));
        // Skips are partial-report markers, not quarantined failures.
        assert_eq!(run.stats.quarantined, 0);
        assert!(run.quarantine_events().is_empty());
        let prov = provenance_events(&run.stats);
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].kind, EventKind::BudgetExhausted);
    }

    #[test]
    fn halt_after_is_deterministic_across_thread_counts() {
        let run_at = |threads| {
            let cfg = SweepConfig::new(21).with_threads(threads).with_halt_after(3);
            run_sweep(&cfg, 8, |i, seed| (i, seed))
        };
        let single = run_at(1);
        assert_eq!(single.stats.completed, 3);
        assert_eq!(single.stats.skipped, 5);
        assert!(single.stats.partial);
        for threads in [2, 4, 8] {
            let multi = run_at(threads);
            assert_eq!(single.results, multi.results, "threads={threads}");
            assert_eq!(single.stats, multi.stats, "threads={threads}");
        }
    }

    #[test]
    fn checkpoint_resume_reproduces_an_uninterrupted_run() {
        let path = temp_ckpt("resume");
        let uninterrupted = {
            let cfg = SweepConfig::new(99).with_threads(2);
            run_sweep(&cfg, 10, |i, seed| (i, seed))
        };
        // Interrupt after 4 dispatched jobs, checkpointing every trial.
        let partial = {
            let cfg = SweepConfig::new(99)
                .with_threads(2)
                .with_halt_after(4)
                .with_checkpoint(CheckpointSpec::new(&path).with_every(1));
            run_sweep(&cfg, 10, |i, seed| (i, seed))
        };
        assert!(partial.stats.partial);
        assert_eq!(partial.stats.completed, 4);
        assert!(path.exists(), "partial run must keep its checkpoint");
        // Resume at a different thread count: byte-identical results.
        let resumed = {
            let cfg = SweepConfig::new(99).with_threads(8).with_checkpoint(
                CheckpointSpec::new(&path).with_every(1).with_resume(true),
            );
            run_sweep(&cfg, 10, |i, seed| (i, seed))
        };
        assert_eq!(resumed.results, uninterrupted.results);
        assert_eq!(resumed.stats.restored, 4);
        assert_eq!(resumed.stats.completed, 10);
        assert!(!resumed.stats.partial);
        let prov = provenance_events(&resumed.stats);
        assert_eq!(prov[0].kind, EventKind::SweepResumed { restored: 4 });
        assert!(!path.exists(), "completed run must delete its checkpoint");
    }

    #[test]
    fn checkpoint_restores_quarantined_trials_with_their_attempts() {
        let path = temp_ckpt("quarantine");
        let mk = |halt: Option<u64>, resume: bool| {
            let spec = CheckpointSpec::new(&path).with_every(1).with_resume(resume);
            let mut cfg = SweepConfig::new(4)
                .with_threads(1)
                .with_retries(1)
                .with_checkpoint(spec);
            if let Some(h) = halt {
                cfg = cfg.with_halt_after(h);
            }
            run_sweep(&cfg, 5, |i, _seed| {
                assert!(i != 0, "poison pill");
                i
            })
        };
        let first = mk(Some(2), false);
        assert_eq!(first.stats.quarantined, 1);
        assert!(first.stats.partial);
        let resumed = mk(None, true);
        assert_eq!(resumed.stats.restored, 2, "err and ok records restored");
        assert_eq!(resumed.stats.quarantined, 1);
        assert_eq!(resumed.stats.retried, 1, "restored attempts counted");
        let e = resumed.results[0].as_ref().unwrap_err();
        assert!(e.payload.contains("poison pill"), "{}", e.payload);
        assert_eq!(e.attempts, 2);
        // Identical to a run that never checkpointed.
        let fresh = {
            let cfg = SweepConfig::new(4).with_threads(1).with_retries(1);
            run_sweep(&cfg, 5, |i, _seed| {
                assert!(i != 0, "poison pill");
                i
            })
        };
        assert_eq!(resumed.results, fresh.results);
        assert_eq!(resumed.stats.quarantined, fresh.stats.quarantined);
        assert_eq!(resumed.stats.retried, fresh.stats.retried);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_checkpoint_tail_is_truncated_not_trusted() {
        let path = temp_ckpt("torn");
        {
            let cfg = SweepConfig::new(31)
                .with_threads(1)
                .with_halt_after(3)
                .with_checkpoint(CheckpointSpec::new(&path).with_every(1));
            run_sweep(&cfg, 6, |i, seed| (i, seed));
        }
        // Simulate a crash mid-write: garbage half-record at the tail.
        {
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 9, 9, 9, 9]).unwrap();
        }
        let resumed = {
            let cfg = SweepConfig::new(31).with_threads(2).with_checkpoint(
                CheckpointSpec::new(&path).with_every(1).with_resume(true),
            );
            run_sweep(&cfg, 6, |i, seed| (i, seed))
        };
        assert_eq!(resumed.stats.restored, 3, "valid prefix only");
        let fresh = {
            let cfg = SweepConfig::new(31).with_threads(1);
            run_sweep(&cfg, 6, |i, seed| (i, seed))
        };
        assert_eq!(resumed.results, fresh.results);
        assert!(!path.exists());
    }

    #[test]
    fn duplicate_checkpoint_records_keep_the_first_and_warn_once() {
        let path = temp_ckpt("dup");
        // Craft a checkpoint by hand: header for (seed 77, 4 trials), a
        // record for trial 0, a record for trial 1, then TWO duplicates of
        // trial 0 with different payloads — the replay pattern a crash
        // between append and fsync leaves behind.
        let first: (u64, u64) = (123_456, 999);
        let dup: (u64, u64) = (42, 43);
        let tr1: (u64, u64) = (1, trial_seed(77, 1));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&CKPT_MAGIC);
        bytes.extend_from_slice(&77u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        let mut payload = Vec::new();
        for (trial, val) in [(0u64, first), (1, tr1), (0, dup), (0, dup)] {
            payload.clear();
            val.encode(&mut payload);
            encode_record(trial, 0, 1, &payload, &mut bytes);
        }
        fs::write(&path, &bytes).unwrap();

        let (run, warnings) = arachnet_obs::capture(|| {
            let cfg = SweepConfig::new(77).with_threads(2).with_checkpoint(
                CheckpointSpec::new(&path).with_every(1).with_resume(true),
            );
            run_sweep(&cfg, 4, |i, seed| (i, seed))
        });
        // First-wins: trial 0 keeps the earliest record's payload, and the
        // duplicates neither inflate `restored` nor shadow it.
        assert_eq!(run.results[0].as_ref().unwrap(), &first);
        assert_eq!(run.results[1].as_ref().unwrap(), &tr1);
        assert_eq!(run.stats.restored, 2);
        assert_eq!(run.stats.completed, 4);
        assert!(!run.stats.partial);
        let dup_warns: Vec<_> = warnings
            .iter()
            .filter(|w| w.contains("duplicate record"))
            .collect();
        assert_eq!(dup_warns.len(), 1, "warn once per file: {warnings:?}");
        assert!(dup_warns[0].contains("trial 0"), "{dup_warns:?}");
        assert!(!path.exists(), "completed run cleans up");
    }

    #[test]
    fn mismatched_checkpoint_header_is_ignored() {
        let path = temp_ckpt("mismatch");
        {
            let cfg = SweepConfig::new(1)
                .with_threads(1)
                .with_halt_after(2)
                .with_checkpoint(CheckpointSpec::new(&path).with_every(1));
            run_sweep(&cfg, 4, |i, seed| (i, seed));
        }
        // Different base seed: the file must be ignored, not misapplied.
        let (_, warnings) = arachnet_obs::capture(|| {
            let cfg = SweepConfig::new(2).with_threads(1).with_checkpoint(
                CheckpointSpec::new(&path).with_every(1).with_resume(true),
            );
            let run = run_sweep(&cfg, 4, |i, seed| (i, seed));
            assert_eq!(run.stats.restored, 0);
            assert_eq!(run.stats.completed, 4);
        });
        assert!(
            warnings.iter().any(|w| w.contains("shape mismatch")),
            "{warnings:?}"
        );
        assert!(!path.exists(), "completed run cleans up");
    }

    #[test]
    fn matrix_sweep_checkpoints_over_the_flat_job_space() {
        let path = temp_ckpt("matrix");
        let cells = [10u64, 20, 30];
        let full = {
            let cfg = SweepConfig::new(55).with_threads(2);
            run_matrix_sweep(&cfg, &cells, 4, |&c, t, seed| (c + t, seed))
        };
        let partial = {
            let cfg = SweepConfig::new(55)
                .with_threads(2)
                .with_halt_after(5)
                .with_checkpoint(CheckpointSpec::new(&path).with_every(1));
            run_matrix_sweep(&cfg, &cells, 4, |&c, t, seed| (c + t, seed))
        };
        assert!(partial.stats.partial);
        let resumed = {
            let cfg = SweepConfig::new(55).with_threads(7).with_checkpoint(
                CheckpointSpec::new(&path).with_every(1).with_resume(true),
            );
            run_matrix_sweep(&cfg, &cells, 4, |&c, t, seed| (c + t, seed))
        };
        assert_eq!(resumed.cells, full.cells);
        assert_eq!(resumed.stats.restored, 5);
        assert!(!path.exists());
    }

    #[test]
    fn tagged_checkpoint_specs_get_distinct_files() {
        let spec = CheckpointSpec::new("CHECKPOINT_mr-fdma.bin");
        let a = spec.tagged("k2");
        let b = spec.tagged("k4");
        assert_eq!(a.path, PathBuf::from("CHECKPOINT_mr-fdma.k2.bin"));
        assert_eq!(b.path, PathBuf::from("CHECKPOINT_mr-fdma.k4.bin"));
        // Hostile tag characters are sanitized away from the filesystem.
        let c = spec.tagged("../../etc");
        assert_eq!(c.path, PathBuf::from("CHECKPOINT_mr-fdma.______etc.bin"));
        // Configs without a checkpoint pass through tagging unchanged.
        let cfg = SweepConfig::new(1).checkpoint_tagged("x");
        assert!(cfg.policy.checkpoint.is_none());
    }

    #[test]
    fn summarize_splits_values_and_panics() {
        let cfg = SweepConfig::new(3).with_threads(2);
        let out = run_trials(&cfg, 9, |i, _| {
            assert!(i % 4 != 3, "boom");
            i as f64
        });
        let s = summarize(&out);
        assert_eq!(s.ok, 7);
        assert_eq!(s.errors.len(), 2);
        assert_eq!(s.stats.min, 0.0);
        assert_eq!(s.stats.max, 8.0);
        assert_eq!(s.ecdf.len(), 7);
    }

    /// Property (testkit): whatever the trial count, thread count and
    /// panic pattern, a panicking trial surfaces as `Err(TrialError)` in
    /// its own slot — never as a harness panic — and every other slot
    /// still carries its value.
    #[test]
    fn property_panics_surface_as_errors_not_harness_panics() {
        use arachnet_testkit::{check, gen, prop_assert, prop_assert_eq};
        let g = gen::zip3(
            gen::u64_range(0, 33),
            gen::u64_range(1, 9),
            gen::u64_range(2, 7),
        );
        check(
            "sweep_panic_isolation",
            &g,
            |&(trials, threads, modulus)| {
                let cfg = SweepConfig::new(trials ^ 0xC0FFEE)
                    .with_threads(threads as usize)
                    .with_retries(0);
                let out = run_trials(&cfg, trials, |i, _| {
                    assert!(i % modulus != 0, "synthetic failure at {i}");
                    i * 3
                });
                prop_assert_eq!(out.len(), trials as usize);
                for (i, r) in out.iter().enumerate() {
                    if (i as u64).is_multiple_of(modulus) {
                        let e = r.as_ref().err().ok_or("expected an error slot")?;
                        prop_assert_eq!(e.trial, i as u64);
                        prop_assert!(e.payload.contains("synthetic failure"));
                    } else {
                        prop_assert_eq!(r, &Ok(i as u64 * 3));
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn telemetry_journals_heartbeats_and_captures_lanes() {
        let path = temp_ckpt("journal").with_extension("jsonl");
        let _ = fs::remove_file(&path);
        let cfg = SweepConfig::new(5).with_threads(2).with_telemetry(
            TelemetrySpec::new().with_journal(&path).with_lanes(true),
        );
        let run = run_sweep(&cfg, 6, |i, seed| (i, seed));
        assert_eq!(run.stats.completed, 6);
        // At least the final heartbeat is journaled, marked done, and
        // reads back through the torn-tail-tolerant parser.
        let beats = arachnet_obs::read_journal(&path).unwrap();
        let last = beats.last().expect("final heartbeat");
        assert!(last.done);
        assert_eq!(last.trials, 6);
        assert_eq!(last.completed, 6);
        assert_eq!(last.inflight, 0);
        assert_eq!(last.workers, 2);
        // Every trial got a lane, each assigned to a real worker.
        assert_eq!(run.telemetry.lanes.len(), 6);
        let mut seen: Vec<u64> = run.telemetry.lanes.iter().map(|l| l.trial).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert!(run.telemetry.lanes.iter().all(|l| l.worker < 2 && l.ok));
        // Telemetry is wall-domain: results identical to a plain run.
        let plain = run_sweep(&SweepConfig::new(5).with_threads(1), 6, |i, seed| (i, seed));
        assert_eq!(run.results, plain.results);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn watchdog_flags_an_injected_slow_trial() {
        let cfg = SweepConfig::new(9)
            .with_threads(2)
            .with_telemetry(TelemetrySpec::new().with_stall_secs(0.05));
        let (run, warnings) = arachnet_obs::capture(|| {
            run_sweep(&cfg, 3, |i, _seed| {
                if i == 1 {
                    std::thread::sleep(Duration::from_millis(250));
                }
                i
            })
        });
        assert_eq!(run.stats.completed, 3, "a stalled trial still completes");
        assert_eq!(run.telemetry.stalled, 1);
        assert_eq!(run.telemetry.stall_events.len(), 1);
        let e = &run.telemetry.stall_events[0];
        assert_eq!(e.slot, 1, "stall event carries the trial index");
        assert!(
            matches!(e.kind, EventKind::TrialStalled { waited_ms } if waited_ms >= 50),
            "{e:?}"
        );
        assert!(
            warnings.iter().any(|w| w.contains("stalled") && w.contains("trial 1")),
            "{warnings:?}"
        );
    }

    #[test]
    fn trial_seeds_are_decorrelated() {
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
        // Retry seeds are decorrelated from first-attempt seeds too.
        let r1 = retry_seed(a, 1);
        assert_ne!(r1, a);
        assert!((r1 ^ a).count_ones() > 8);
        assert_ne!(retry_seed(a, 1), retry_seed(a, 2));
    }

    #[test]
    fn zero_trials_is_fine() {
        let cfg = SweepConfig::new(5).with_threads(4);
        let out = run_trials(&cfg, 0, |i, _| i);
        assert!(out.is_empty());
        let m = run_matrix(&cfg, &[1, 2], 0, |_, _, _| 0u8);
        assert_eq!(m, vec![Vec::new(), Vec::new()]);
        // Even with a checkpoint attached: no residue left behind.
        let path = temp_ckpt("empty");
        let cfg = SweepConfig::new(5)
            .with_threads(4)
            .with_checkpoint(CheckpointSpec::new(&path).with_resume(true));
        let run = run_sweep(&cfg, 0, |i, _| i);
        assert!(run.results.is_empty());
        assert_eq!(run.stats, SweepStats::default());
        assert!(!path.exists());
    }
}
