//! Deterministic parallel trial runner.
//!
//! The evaluation sweeps (Fig. 15's 9 patterns × dozens of convergence
//! trials, Fig. 19's ALOHA runs, the ablations) are embarrassingly
//! parallel: every trial is a pure function of `(pattern, seed)`. This
//! module runs such sweeps over a `std::thread::scope` worker pool while
//! keeping results **bit-identical at any thread count**:
//!
//! * each trial's seed is derived from the sweep's base seed and the trial
//!   index alone ([`trial_seed`], a splitmix64 finalizer) — never from
//!   which worker picks the job up;
//! * workers pull job indices from a shared atomic counter and keep
//!   `(index, result)` pairs locally; the results are merged by index
//!   after the pool joins, so scheduling order cannot leak into output
//!   order;
//! * every trial runs under `catch_unwind`, so one panicking trial shows
//!   up as a [`TrialError`] in its slot instead of poisoning the sweep —
//!   and even a worker thread dying outside the isolated-panic window
//!   surfaces as structured errors for its unreported trials, never as a
//!   harness panic.
//!
//! ```
//! use arachnet_sim::sweep::{SweepConfig, run_trials};
//!
//! let cfg = SweepConfig::new(42).with_threads(4);
//! let squares = run_trials(&cfg, 8, |trial, _seed| trial * trial);
//! assert_eq!(squares[3], Ok(9));
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use arachnet_obs::{flush_thread_spans, global_counter_add, global_histo_record, span};

use crate::metrics::{five_num, Ecdf, FiveNum};

/// Sweep configuration: worker count and base seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads. `1` runs inline on the calling thread.
    pub threads: usize,
    /// Base seed; trial `i` runs with [`trial_seed`]`(base_seed, i)`.
    pub base_seed: u64,
}

impl SweepConfig {
    /// A sweep seeded with `base_seed`, using all available cores (or the
    /// `ARACHNET_SWEEP_THREADS` environment override).
    pub fn new(base_seed: u64) -> Self {
        let threads = std::env::var("ARACHNET_SWEEP_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self {
            threads,
            base_seed,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// A trial that failed instead of returning a value: it panicked, or its
/// worker thread died before reporting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialError {
    /// Index of the failed trial.
    pub trial: u64,
    /// The panic payload (or a description of how the trial was lost).
    pub payload: String,
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {} failed: {}", self.trial, self.payload)
    }
}

impl std::error::Error for TrialError {}

/// Per-trial outcome: the trial's value, or the error that ate it.
pub type TrialResult<T> = Result<T, TrialError>;

/// Derives trial `index`'s seed from the sweep's base seed using the
/// splitmix64 finalizer, so neighbouring trials get decorrelated streams
/// and the mapping is independent of worker scheduling.
pub fn trial_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = base_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `trials` independent trials of `f(trial_index, trial_seed)` across
/// the worker pool and returns results ordered by trial index. Bit-identical
/// at any thread count; a panicking trial yields `Err(TrialError)` in its
/// slot. Even a worker thread dying outside the isolated-panic window (a
/// panic escaping `catch_unwind`, e.g. a panic-in-panic abort path caught
/// as unwind) cannot poison the sweep: the trials it never reported come
/// back as structured errors.
pub fn run_trials<T, F>(cfg: &SweepConfig, trials: u64, f: F) -> Vec<TrialResult<T>>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let one_trial = |i: u64| -> (u64, TrialResult<T>) {
        let seed = trial_seed(cfg.base_seed, i);
        let r = catch_unwind(AssertUnwindSafe(|| f(i, seed))).map_err(|p| TrialError {
            trial: i,
            payload: panic_text(p),
        });
        (i, r)
    };

    let workers = cfg.threads.clamp(1, trials.max(1) as usize);
    let mut slots: Vec<Option<TrialResult<T>>> = (0..trials).map(|_| None).collect();
    let mut worker_deaths: Vec<String> = Vec::new();
    // Wall-domain utilization stats land in the obs globals; `take_global_stats`
    // reads them out. They are diagnostics about this host's scheduling, so
    // they are never part of the deterministic metrics export (DESIGN.md §11).
    let _sweep_span = span("sweep.run_trials");
    global_counter_add("sweep.sweeps", 1);
    global_counter_add("sweep.trials", trials);
    global_counter_add("sweep.workers", workers as u64);
    if workers <= 1 {
        for i in 0..trials {
            let _t = span("sweep.trial");
            let (idx, r) = one_trial(i);
            slots[idx as usize] = Some(r);
        }
        global_histo_record("sweep.jobs_per_worker", trials);
    } else {
        let next_job = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next_job.fetch_add(1, Ordering::Relaxed);
                            if i >= trials {
                                break;
                            }
                            let _t = span("sweep.trial");
                            local.push(one_trial(i));
                        }
                        // How evenly the shared counter spread jobs across
                        // workers (a proxy for steal balance).
                        global_histo_record("sweep.jobs_per_worker", local.len() as u64);
                        // Spans recorded inside trials live in this worker's
                        // thread-local map; merge them before the thread dies.
                        flush_thread_spans();
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i as usize] = Some(r);
                        }
                    }
                    Err(p) => worker_deaths.push(panic_text(p)),
                }
            }
        });
    }
    let detail = if worker_deaths.is_empty() {
        "trial was never executed".to_string()
    } else {
        format!(
            "sweep worker died before reporting this trial: {}",
            worker_deaths.join("; ")
        )
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(TrialError {
                    trial: i as u64,
                    payload: detail.clone(),
                })
            })
        })
        .collect()
}

/// Runs a `cells × trials` matrix (e.g. Table 3 patterns × seeds) over one
/// shared worker pool, returning `results[cell][trial]` ordered like the
/// inputs. A trial's seed depends only on `(base_seed, cell index, trial
/// index)` — never on worker scheduling — so the whole matrix is
/// bit-identical at any thread count.
pub fn run_matrix<P, T, F>(
    cfg: &SweepConfig,
    cells: &[P],
    trials: u64,
    f: F,
) -> Vec<Vec<TrialResult<T>>>
where
    P: Sync,
    T: Send,
    F: Fn(&P, u64, u64) -> T + Sync,
{
    let total = cells.len() as u64 * trials;
    let flat = run_trials(cfg, total, |job, _job_seed| {
        let cell = (job / trials.max(1)) as usize;
        let trial = job % trials.max(1);
        let seed = trial_seed(trial_seed(cfg.base_seed, cell as u64), trial);
        f(&cells[cell], trial, seed)
    });
    let mut out: Vec<Vec<TrialResult<T>>> = Vec::with_capacity(cells.len());
    let mut it = flat.into_iter();
    for _ in 0..cells.len() {
        out.push(it.by_ref().take(trials as usize).collect());
    }
    out
}

/// Aggregate of a sweep of scalar trials: five-number summary, empirical
/// CDF, and the errors that were excluded from both.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Trials that returned a value.
    pub ok: usize,
    /// Trials that failed (panicked or were lost with their worker).
    pub errors: Vec<TrialError>,
    /// Five-number summary over the successful trials.
    pub stats: FiveNum,
    /// Empirical CDF over the successful trials.
    pub ecdf: Ecdf,
}

/// Reduces scalar trial results to a [`SweepSummary`] (errors set aside,
/// statistics over the survivors).
pub fn summarize(results: &[TrialResult<f64>]) -> SweepSummary {
    let mut values = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(v) => values.push(*v),
            Err(e) => errors.push(e.clone()),
        }
    }
    SweepSummary {
        ok: values.len(),
        errors,
        stats: five_num(&values),
        ecdf: Ecdf::new(&values),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use crate::slotsim::first_convergence_time;

    #[test]
    fn results_are_ordered_by_trial_index() {
        let cfg = SweepConfig::new(7).with_threads(4);
        let out = run_trials(&cfg, 64, |i, _| i);
        let expect: Vec<_> = (0..64).map(Ok).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn bit_identical_at_any_thread_count() {
        // The acceptance property of the whole module: 1 worker and N
        // workers produce byte-for-byte identical sweeps (seeds derive from
        // the trial index, never the scheduler).
        let run_at = |threads| {
            let cfg = SweepConfig::new(42).with_threads(threads);
            run_trials(&cfg, 24, |_i, seed| {
                first_convergence_time(&Pattern::c1(), seed, 50_000, true)
            })
        };
        let single = run_at(1);
        for threads in [2, 4, 8] {
            assert_eq!(single, run_at(threads), "threads={threads}");
        }
    }

    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let cells = [1u64, 2, 3];
        let run_at = |threads| {
            let cfg = SweepConfig::new(9).with_threads(threads);
            run_matrix(&cfg, &cells, 5, |&c, t, seed| (c, t, seed))
        };
        let single = run_at(1);
        assert_eq!(single, run_at(4));
        assert_eq!(single, run_at(7));
        assert_eq!(single.len(), 3);
        assert!(single.iter().all(|row| row.len() == 5));
        // Distinct cells must not share trial seeds.
        let seeds: std::collections::HashSet<u64> = single
            .iter()
            .flatten()
            .map(|r| r.as_ref().unwrap().2)
            .collect();
        assert_eq!(seeds.len(), 15);
    }

    #[test]
    fn panics_are_isolated_per_trial() {
        let cfg = SweepConfig::new(1).with_threads(3);
        let out = run_trials(&cfg, 10, |i, _| {
            assert!(i != 7, "trial seven always fails");
            i * 2
        });
        for (i, r) in out.iter().enumerate() {
            if i == 7 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.trial, 7);
                assert!(e.payload.contains("seven"), "{}", e.payload);
            } else {
                assert_eq!(*r, Ok(i as u64 * 2));
            }
        }
    }

    /// Property (testkit): whatever the trial count, thread count and
    /// panic pattern, a panicking trial surfaces as `Err(TrialError)` in
    /// its own slot — never as a harness panic — and every other slot
    /// still carries its value.
    #[test]
    fn property_panics_surface_as_errors_not_harness_panics() {
        use arachnet_testkit::{check, gen, prop_assert, prop_assert_eq};
        let g = gen::zip3(
            gen::u64_range(0, 33),
            gen::u64_range(1, 9),
            gen::u64_range(2, 7),
        );
        check(
            "sweep_panic_isolation",
            &g,
            |&(trials, threads, modulus)| {
                let cfg = SweepConfig::new(trials ^ 0xC0FFEE).with_threads(threads as usize);
                let out = run_trials(&cfg, trials, |i, _| {
                    assert!(i % modulus != 0, "synthetic failure at {i}");
                    i * 3
                });
                prop_assert_eq!(out.len(), trials as usize);
                for (i, r) in out.iter().enumerate() {
                    if (i as u64).is_multiple_of(modulus) {
                        let e = r.as_ref().err().ok_or("expected an error slot")?;
                        prop_assert_eq!(e.trial, i as u64);
                        prop_assert!(e.payload.contains("synthetic failure"));
                    } else {
                        prop_assert_eq!(r, &Ok(i as u64 * 3));
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn sweeps_publish_worker_utilization_stats() {
        // Utilization diagnostics land in the process-global obs sinks.
        // Other tests in this binary also run sweeps concurrently, so the
        // assertions are lower bounds, never exact counts.
        let cfg = SweepConfig::new(77).with_threads(3);
        let out = run_trials(&cfg, 12, |i, _| i + 1);
        assert_eq!(out.len(), 12);
        let stats = arachnet_obs::take_global_stats();
        assert!(
            stats.counters.get("sweep.trials").copied().unwrap_or(0) >= 12,
            "sweep.trials missing: {:?}",
            stats.counters
        );
        assert!(stats.counters.get("sweep.sweeps").copied().unwrap_or(0) >= 1);
        let jobs = stats
            .histos
            .get("sweep.jobs_per_worker")
            .expect("jobs_per_worker histo");
        assert!(jobs.count() >= 3, "one sample per worker, got {}", jobs.count());
        // Trial spans were flushed from the worker threads before join.
        let spans = arachnet_obs::take_spans();
        let trial = spans.iter().find(|(n, _)| *n == "sweep.trial");
        assert!(trial.is_some_and(|(_, s)| s.calls >= 12), "spans: {spans:?}");
    }

    #[test]
    fn summarize_splits_values_and_panics() {
        let cfg = SweepConfig::new(3).with_threads(2);
        let out = run_trials(&cfg, 9, |i, _| {
            assert!(i % 4 != 3, "boom");
            i as f64
        });
        let s = summarize(&out);
        assert_eq!(s.ok, 7);
        assert_eq!(s.errors.len(), 2);
        assert_eq!(s.stats.min, 0.0);
        assert_eq!(s.stats.max, 8.0);
        assert_eq!(s.ecdf.len(), 7);
    }

    #[test]
    fn trial_seeds_are_decorrelated() {
        let a = trial_seed(1, 0);
        let b = trial_seed(1, 1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn zero_trials_is_fine() {
        let cfg = SweepConfig::new(5).with_threads(4);
        let out = run_trials(&cfg, 0, |i, _| i);
        assert!(out.is_empty());
        let m = run_matrix(&cfg, &[1, 2], 0, |_, _, _| 0u8);
        assert_eq!(m, vec![Vec::new(), Vec::new()]);
    }
}
