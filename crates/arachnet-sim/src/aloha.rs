//! The pure-ALOHA contention baseline (Appendix B, Fig. 19).
//!
//! Every tag transmits the moment its supercapacitor reaches the
//! activation threshold, with no coordination: charge → 200 ms packet →
//! recharge (from the 1.95 V cutoff floor, which costs only ~15.2 % of the
//! full charge) → transmit again. Over a 10 000-second run the simulator
//! records every transmission interval and counts overlaps.
//!
//! The paper's findings this reproduces: ~34 % of transmissions
//! collision-free overall, per-tag success between 28.4 % and 37.3 %, the
//! fastest-charging tag (Tag 8, 4.5 s) sending over 11 000 packets, and
//! slow chargers both transmitting less *and* colliding more — "ALOHA's
//! inability to provide fair channel access across asymmetrically powered
//! tags".

use arachnet_core::rng::TagRng;
use arachnet_energy::harvester::HarvestChain;
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::noise::NoiseConfig;

/// Configuration of the ALOHA simulation.
#[derive(Debug, Clone)]
pub struct AlohaConfig {
    /// Simulated duration (s) — the paper uses 10 000 s.
    pub duration_s: f64,
    /// Packet on-air time (s) — "each 200 ms packet transmission".
    pub packet_s: f64,
    /// Resume-charge fraction of the full charge duration (paper: 15.2 %).
    /// `None` derives per-tag fractions from the harvesting chain instead.
    pub resume_fraction: Option<f64>,
    /// Multiplicative Gaussian noise on each recharge duration (paper: 2 %).
    pub charge_noise: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for AlohaConfig {
    fn default() -> Self {
        Self {
            duration_s: 10_000.0,
            packet_s: 0.2,
            resume_fraction: Some(0.152),
            charge_noise: 0.02,
            seed: 1,
        }
    }
}

/// Per-tag outcome.
#[derive(Debug, Clone, Copy)]
pub struct AlohaTagStats {
    /// Tag ID.
    pub tid: u8,
    /// Full (cold) charge time used for this tag (s).
    pub full_charge_s: f64,
    /// Total transmissions.
    pub total_tx: u64,
    /// Transmissions that overlapped another tag's.
    pub collided_tx: u64,
}

impl AlohaTagStats {
    /// Collision-free success rate.
    pub fn success_rate(&self) -> f64 {
        if self.total_tx == 0 {
            return 0.0;
        }
        1.0 - self.collided_tx as f64 / self.total_tx as f64
    }
}

/// Aggregate outcome.
#[derive(Debug, Clone)]
pub struct AlohaRun {
    /// Per-tag statistics, ordered by TID.
    pub tags: Vec<AlohaTagStats>,
}

impl AlohaRun {
    /// Overall fraction of collision-free transmissions.
    pub fn overall_success_rate(&self) -> f64 {
        let total: u64 = self.tags.iter().map(|t| t.total_tx).sum();
        let collided: u64 = self.tags.iter().map(|t| t.collided_tx).sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - collided as f64 / total as f64
    }

    /// Total transmissions across all tags.
    pub fn total_tx(&self) -> u64 {
        self.tags.iter().map(|t| t.total_tx).sum()
    }
}

/// Runs the ALOHA baseline over the paper's 12-tag deployment.
pub fn run_aloha(config: &AlohaConfig) -> AlohaRun {
    let channel = BiwChannel::paper(ChannelConfig {
        noise: NoiseConfig::silent(),
        ..ChannelConfig::default()
    });
    let chain = HarvestChain::paper();

    // Per-tag charge parameters from the calibrated deployment.
    struct TagState {
        tid: u8,
        full_s: f64,
        resume_s: f64,
        rng: TagRng,
        intervals: Vec<(f64, f64)>,
    }
    let mut tags: Vec<TagState> = (1..=12u8)
        .map(|tid| {
            let vp = channel.tag_carrier_voltage(tid).expect("deployment tag");
            let full = chain.full_charge_time(vp).expect("all tags activate");
            let resume = match config.resume_fraction {
                Some(f) => full * f,
                None => chain.resume_charge_time(vp).expect("all tags resume"),
            };
            TagState {
                tid,
                full_s: full,
                resume_s: resume,
                rng: TagRng::for_tag(config.seed, tid),
                intervals: Vec::new(),
            }
        })
        .collect();

    // Generate each tag's transmission intervals. Charging pauses during
    // TX, so the cycle is strictly sequential: charge → transmit → charge…
    for t in &mut tags {
        let mut now = (t.full_s * (1.0 + config.charge_noise * gaussian(&mut t.rng))).max(0.0);
        while now < config.duration_s {
            t.intervals.push((now, now + config.packet_s));
            let recharge = t.resume_s * (1.0 + config.charge_noise * gaussian(&mut t.rng));
            now += config.packet_s + recharge.max(0.0);
        }
    }

    // Collision detection: merge all intervals and sweep.
    let mut events: Vec<(f64, f64, usize)> = Vec::new();
    for (i, t) in tags.iter().enumerate() {
        for &(s, e) in &t.intervals {
            events.push((s, e, i));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut collided: Vec<Vec<bool>> = tags
        .iter()
        .map(|t| vec![false; t.intervals.len()])
        .collect();
    let mut per_tag_idx = vec![0usize; tags.len()];
    let mut active: Vec<(f64, usize, usize)> = Vec::new(); // (end, tag, interval idx)
    for &(s, e, tag) in &events {
        let idx = per_tag_idx[tag];
        per_tag_idx[tag] += 1;
        active.retain(|&(end, ..)| end > s);
        for &(_, other_tag, other_idx) in &active {
            collided[tag][idx] = true;
            collided[other_tag][other_idx] = true;
        }
        active.push((e, tag, idx));
    }

    AlohaRun {
        tags: tags
            .iter()
            .enumerate()
            .map(|(i, t)| AlohaTagStats {
                tid: t.tid,
                full_charge_s: t.full_s,
                total_tx: t.intervals.len() as u64,
                collided_tx: collided[i].iter().filter(|&&c| c).count() as u64,
            })
            .collect(),
    }
}

/// Standard normal via Box–Muller on the tag RNG.
fn gaussian(rng: &mut TagRng) -> f64 {
    let u1 = rng.unit_f64().max(1e-12);
    let u2 = rng.unit_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_default() -> AlohaRun {
        run_aloha(&AlohaConfig::default())
    }

    #[test]
    fn fast_tag_transmits_most() {
        let run = run_default();
        let tag8 = run.tags.iter().find(|t| t.tid == 8).unwrap();
        for t in &run.tags {
            assert!(
                t.total_tx <= tag8.total_tx,
                "tag {} out-transmitted tag 8",
                t.tid
            );
        }
        // Paper: "transmit over 11,000 times" for the 4.5 s charger. Our
        // calibrated charge time is slightly faster, so the count lands in
        // the same regime.
        assert!(tag8.total_tx > 9_000, "tag 8 sent only {}", tag8.total_tx);
    }

    #[test]
    fn slow_tag_transmits_least() {
        let run = run_default();
        let tag11 = run.tags.iter().find(|t| t.tid == 11).unwrap();
        for t in &run.tags {
            assert!(
                t.total_tx >= tag11.total_tx,
                "tag {} under-transmitted tag 11",
                t.tid
            );
        }
        assert!(tag11.total_tx < 2_500, "tag 11 sent {}", tag11.total_tx);
    }

    #[test]
    fn overall_success_matches_paper_band() {
        // Paper: 34.0 % collision-free. Our deployment is somewhat more
        // loaded (faster chargers), so accept a generous band around it.
        let run = run_default();
        let rate = run.overall_success_rate();
        assert!((0.10..=0.55).contains(&rate), "success rate {rate:.3}");
    }

    #[test]
    fn every_tag_collides_a_lot() {
        // Paper: per-tag success 28.4–37.3 % — nobody escapes contention.
        let run = run_default();
        for t in &run.tags {
            let s = t.success_rate();
            assert!(s < 0.6, "tag {} implausibly clean: {s:.3}", t.tid);
            assert!(t.collided_tx > 0, "tag {} never collided", t.tid);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_aloha(&AlohaConfig::default());
        let b = run_aloha(&AlohaConfig::default());
        assert_eq!(a.total_tx(), b.total_tx());
        let collided = |r: &AlohaRun| r.tags.iter().map(|t| t.collided_tx).collect::<Vec<_>>();
        assert_eq!(collided(&a), collided(&b));
        // A different seed shifts the noise draws; with 2 % noise the
        // per-tag *collision* pattern almost surely changes even when the
        // robust transmission counts do not.
        let c = run_aloha(&AlohaConfig {
            seed: 2,
            ..AlohaConfig::default()
        });
        assert_ne!(collided(&a), collided(&c));
    }

    #[test]
    fn charge_times_span_the_paper_range() {
        let run = run_default();
        let min = run
            .tags
            .iter()
            .map(|t| t.full_charge_s)
            .fold(f64::MAX, f64::min);
        let max = run
            .tags
            .iter()
            .map(|t| t.full_charge_s)
            .fold(0.0f64, f64::max);
        assert!(min < 6.0, "fastest charge {min:.1} (paper 4.5 s)");
        assert!(max > 40.0, "slowest charge {max:.1} (paper 56.2 s)");
    }

    #[test]
    fn shorter_duration_scales_counts() {
        let short = run_aloha(&AlohaConfig {
            duration_s: 1_000.0,
            ..AlohaConfig::default()
        });
        let long = run_default();
        let ratio = long.total_tx() as f64 / short.total_tx() as f64;
        assert!((ratio - 10.0).abs() < 1.0, "scaling ratio {ratio:.2}");
    }

    #[test]
    fn chain_derived_resume_fractions_also_work() {
        let run = run_aloha(&AlohaConfig {
            resume_fraction: None,
            ..AlohaConfig::default()
        });
        // Physically derived resumes are slower for weak tags → fewer TX.
        let paper = run_default();
        let t11 = |r: &AlohaRun| r.tags.iter().find(|t| t.tid == 11).unwrap().total_tx;
        assert!(t11(&run) < t11(&paper));
    }

    #[test]
    fn aloha_loses_to_the_protocol() {
        // The headline comparison: ARACHNET's long-run collision ratio is
        // ~0.05; ALOHA's is >0.4.
        let run = run_default();
        assert!(1.0 - run.overall_success_rate() > 0.4);
    }
}
