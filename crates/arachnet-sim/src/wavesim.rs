//! Waveform/edge-level co-simulation for the PHY experiments.
//!
//! * **Uplink trials** (Fig. 12): a tag modulates a packet with its
//!   drifting clock, the channel superimposes carrier leak and noise, the
//!   reader DSP chain decodes; SNR is measured the paper's way (PSD band
//!   ratio).
//! * **Downlink trials** (Fig. 13a): reader PIE edges with software
//!   jitter, transformed by the channel (path delay + envelope-detector
//!   threshold-crossing delays that depend on the tag's received
//!   amplitude), decoded by the tag's tick-quantized demodulator.
//! * **Synchronization offsets** (Fig. 13b): one broadcast beacon; each
//!   tag's decode-completion instant relative to Tag 6.
//! * **Ping-pong** (Fig. 14): DL + guard + UL + software latency samples,
//!   and the raw reader waveform for the Fig. 14(a) illustration.

use std::cell::RefCell;

use arachnet_core::bits::BitBuf;
use arachnet_core::fm0::Fm0Encoder;
use arachnet_core::packet::{DlBeacon, DlCmd, UlPacket};
use arachnet_core::rng::TagRng;
use arachnet_obs::{DecodeFailReason, EventKind, Recorder, NO_TAG};
use arachnet_reader::driver::{LatencyModel, PingPong};
use arachnet_reader::rx::{RxConfig, RxScratch, UplinkReceiver};
use arachnet_reader::tx::BeaconTransmitter;
use arachnet_tag::demod::PieDemodulator;
use arachnet_tag::mcu::McuClock;
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::geometry::Deployment;
use biw_channel::noise::NoiseConfig;
use biw_channel::pzt::PztState;
use biw_channel::resonator::DriveScheme;
use biw_channel::timevarying::TimeVaryingChannel;

use crate::sweep::trial_seed;

/// Reusable PHY working storage: the PZT state stream, the synthesized
/// waveform and the receiver's DSP scratch. One per worker thread makes a
/// full uplink trial allocation-free once warm. Scratch *contents* never
/// influence results — only capacities persist between calls — so reusing
/// (or not reusing) a scratch cannot change any decode outcome.
#[derive(Debug, Default)]
pub struct PhyScratch {
    /// Per-sample PZT state stream for the packet under synthesis.
    pub states: Vec<PztState>,
    /// Reader-side waveform buffer.
    pub wave: Vec<f64>,
    /// Receiver DSP scratch (down-conversion, projection, PSD, ...).
    pub rx: RxScratch,
}

thread_local! {
    static PHY_SCRATCH: RefCell<PhyScratch> = RefCell::new(PhyScratch::default());
}

/// Runs `f` with this thread's persistent [`PhyScratch`]. Sweep workers
/// call this from trial closures so every trial on a thread reuses the
/// same buffers. Do not nest calls (the inner one would re-borrow).
pub fn with_phy_scratch<R>(f: impl FnOnce(&mut PhyScratch) -> R) -> R {
    PHY_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The co-simulation environment.
pub struct WaveSim {
    channel: BiwChannel,
    seed: u64,
    /// TX drive scheme: governs the reader-PZT ring tail seen by tags.
    drive_scheme: DriveScheme,
}

/// Result of an uplink packet-loss trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkResult {
    /// Packets sent.
    pub sent: u64,
    /// Packets not decoded (or decoded wrong).
    pub lost: u64,
    /// PSD-band SNR (dB) measured on a representative waveform.
    pub snr_db: f64,
}

/// Result of a downlink packet-loss trial.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkResult {
    /// Beacons sent.
    pub sent: u64,
    /// Beacons not decoded correctly by the tag.
    pub lost: u64,
}

impl WaveSim {
    /// Environment over the paper's deployment with the given noise floor.
    pub fn new(seed: u64, noise: NoiseConfig) -> Self {
        let channel = BiwChannel::paper(ChannelConfig {
            noise,
            seed,
            ..ChannelConfig::default()
        });
        Self {
            channel,
            seed,
            drive_scheme: DriveScheme::paper_default(),
        }
    }

    /// Selects the TX drive scheme (the Sec. 4.1 ring-effect ablation:
    /// plain OOK leaves a long free ring tail; FSK-in/OOK-out keeps the
    /// amplifier loading the transducer, damping it ~5x faster).
    pub fn with_drive_scheme(mut self, scheme: DriveScheme) -> Self {
        self.drive_scheme = scheme;
        self
    }

    /// Default environment: the noise floor calibrated so uplink losses
    /// match Fig. 12(b)'s regime (sub-percent at low rates, growing with
    /// rate).
    pub fn paper(seed: u64) -> Self {
        Self::new(
            seed,
            NoiseConfig {
                floor_sigma: 0.013,
                ..NoiseConfig::default()
            },
        )
    }

    /// The underlying channel.
    pub fn channel(&self) -> &BiwChannel {
        &self.channel
    }

    /// A receiver tuned for `ul_bps` uplink. Build one per (cell, rate) —
    /// not per packet — and pass it to [`Self::uplink_packet`].
    pub fn uplink_rx(&self, ul_bps: f64) -> UplinkReceiver {
        UplinkReceiver::new(RxConfig {
            ul_bps,
            ..RxConfig::default()
        })
    }

    /// Base seed for a (tag, rate) uplink trial sequence: packet `i` of
    /// the sequence uses `trial_seed(base, i)`, so trials are pure
    /// functions of their index and parallelize without order effects.
    pub fn uplink_base_seed(&self, tid: u8, ul_bps: f64) -> u64 {
        trial_seed(self.seed ^ (u64::from(tid) << 32), ul_bps.to_bits())
    }

    /// Expands raw FM0 bits into a padded per-sample PZT state stream.
    fn expand_states_into(raw: &BitBuf, spb: usize, pad: usize, out: &mut Vec<PztState>) {
        out.clear();
        out.reserve(raw.len() * spb + 2 * pad);
        out.extend(std::iter::repeat_n(PztState::Absorptive, pad));
        for bit in raw.iter() {
            let s = if bit {
                PztState::Reflective
            } else {
                PztState::Absorptive
            };
            out.extend(std::iter::repeat_n(s, spb));
        }
        out.extend(std::iter::repeat_n(PztState::Absorptive, pad));
    }

    /// Synthesizes one seeded uplink packet into `s.wave` and returns the
    /// packet that was sent. Everything — payload, supply sag, noise — is
    /// a pure function of `packet_seed`.
    fn synth_uplink_packet(
        &self,
        rx: &UplinkReceiver,
        tid: u8,
        packet_seed: u64,
        s: &mut PhyScratch,
    ) -> UlPacket {
        self.synth_uplink_packet_via(&self.channel, rx, tid, packet_seed, s)
    }

    /// [`Self::synth_uplink_packet`] through an explicit channel — the
    /// drift path hands in the current epoch's prebuilt channel; the hot
    /// loop itself is unchanged and allocation-free.
    fn synth_uplink_packet_via(
        &self,
        channel: &BiwChannel,
        rx: &UplinkReceiver,
        tid: u8,
        packet_seed: u64,
        s: &mut PhyScratch,
    ) -> UlPacket {
        let fs = channel.config().sample_rate;
        let ul_bps = rx.config().ul_bps;
        let mut rng = TagRng::new(packet_seed);
        let payload = (rng.next_u64() & 0xFFF) as u16;
        let pkt = UlPacket::new(tid % 16, payload).expect("12-bit payload");
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(pkt.to_bits().iter());
        // The tag's timer stretches/compresses raw bits; the supply sags
        // across the cutoff band packet to packet.
        let mut clock = McuClock::for_tag(self.seed, tid);
        clock.set_supply(1.95 + 0.35 * rng.unit_f64());
        let spb = (fs * (1.0 / ul_bps) * (12_000.0 / clock.actual_hz())).round() as usize;
        Self::expand_states_into(&raw, spb, 6 * spb, &mut s.states);
        let len = s.states.len();
        channel.uplink_waveform_seeded_into(&[(tid, &s.states)], len, packet_seed, &mut s.wave);
        pkt
    }

    /// Sends one seeded packet from `tid` through the channel and the
    /// receiver; `true` when it decodes exactly. Pure in `packet_seed`,
    /// so any thread may run any packet of a trial sequence.
    pub fn uplink_packet(
        &self,
        rx: &UplinkReceiver,
        tid: u8,
        packet_seed: u64,
        s: &mut PhyScratch,
    ) -> bool {
        let pkt = self.synth_uplink_packet(rx, tid, packet_seed, s);
        let PhyScratch { wave, rx: rxs, .. } = s;
        rx.process_slot_with(wave, rxs).packet == Some(pkt)
    }

    /// PSD-band SNR of the representative (index-0) packet waveform for
    /// this (tag, rate) — the paper's Fig. 12(a) metric. Independent of
    /// how many packets a trial sends.
    pub fn uplink_snr(&self, rx: &UplinkReceiver, tid: u8, s: &mut PhyScratch) -> f64 {
        let seed0 = trial_seed(self.uplink_base_seed(tid, rx.config().ul_bps), 0);
        self.synth_uplink_packet(rx, tid, seed0, s);
        let PhyScratch { wave, rx: rxs, .. } = s;
        rx.uplink_snr_db_with(wave, rxs)
    }

    /// Fig. 12: sends `n` packets from `tid` at `ul_bps` and counts losses;
    /// measures SNR on the representative (index-0) waveform, which is
    /// synthesized once and shared between the SNR estimate and the decode.
    pub fn uplink_trial(&self, tid: u8, ul_bps: f64, n: u64) -> UplinkResult {
        // Hot path deliberately runs through the instrumented variant with
        // a disabled recorder: the `phy/full_uplink_trial` bench gate proves
        // that path costs the same as the uninstrumented one did.
        self.uplink_trial_observed(tid, ul_bps, n, &mut Recorder::disabled())
    }

    /// [`Self::uplink_trial`] with a flight recorder watching every packet:
    /// successful decodes are counted ([`EventKind::Decoded`]); losses land
    /// in the ring as [`EventKind::DecodeFail`] carrying the receiver's
    /// stage-of-failure reason, stamped with the packet index as the slot.
    pub fn uplink_trial_observed(
        &self,
        tid: u8,
        ul_bps: f64,
        n: u64,
        recorder: &mut Recorder,
    ) -> UplinkResult {
        let rx = self.uplink_rx(ul_bps);
        let base = self.uplink_base_seed(tid, ul_bps);
        with_phy_scratch(|s| {
            let mut snr_db = f64::NAN;
            let mut lost = 0;
            for i in 0..n.max(1) {
                let pkt = self.synth_uplink_packet(&rx, tid, trial_seed(base, i), s);
                let PhyScratch { wave, rx: rxs, .. } = s;
                if i == 0 {
                    snr_db = rx.uplink_snr_db_with(wave, rxs);
                }
                if i < n {
                    let out = rx.process_slot_with(wave, rxs);
                    if out.packet == Some(pkt) {
                        recorder.note(EventKind::Decoded);
                    } else {
                        lost += 1;
                        // A decode to the *wrong* packet passed CRC on a
                        // corrupted waveform — report it as a CRC-level
                        // failure rather than inventing a new taxon.
                        let reason = out
                            .fail
                            .unwrap_or(DecodeFailReason::BadCrc);
                        recorder.record(i, tid, EventKind::DecodeFail { reason });
                    }
                }
            }
            UplinkResult {
                sent: n,
                lost,
                snr_db,
            }
        })
    }

    /// Drifting-channel uplink trial: sends `n_per_epoch` packets from
    /// `tid` through *each* epoch of the drift schedule in order, switching
    /// the prebuilt epoch channel at the boundaries (one slice index — the
    /// per-packet hot path is the same allocation-free loop as
    /// [`Self::uplink_trial`]). Packet seeds are a pure function of the
    /// global packet index, so an identity drift schedule reproduces
    /// [`Self::uplink_trial`] exactly and results are thread-invariant.
    ///
    /// Each epoch boundary is stamped into the recorder as
    /// [`EventKind::ChannelEpoch`] (slot = global packet index); per-epoch
    /// SNR is measured on the epoch's first packet. Returns one
    /// [`UplinkResult`] per epoch.
    pub fn uplink_trial_drifting(
        &self,
        tvc: &TimeVaryingChannel,
        tid: u8,
        ul_bps: f64,
        n_per_epoch: u64,
        recorder: &mut Recorder,
    ) -> Vec<UplinkResult> {
        let rx = self.uplink_rx(ul_bps);
        let base = self.uplink_base_seed(tid, ul_bps);
        with_phy_scratch(|s| {
            let mut out = Vec::with_capacity(tvc.epoch_count());
            for epoch in 0..tvc.epoch_count() {
                let channel = tvc.channel_at(epoch);
                let first = epoch as u64 * n_per_epoch;
                recorder.record(
                    first,
                    NO_TAG,
                    EventKind::ChannelEpoch {
                        epoch: epoch.min(u16::MAX as usize) as u16,
                    },
                );
                let mut snr_db = f64::NAN;
                let mut lost = 0;
                for i in 0..n_per_epoch.max(1) {
                    let global = first + i;
                    let pkt =
                        self.synth_uplink_packet_via(channel, &rx, tid, trial_seed(base, global), s);
                    let PhyScratch { wave, rx: rxs, .. } = s;
                    if i == 0 {
                        snr_db = rx.uplink_snr_db_with(wave, rxs);
                    }
                    if i < n_per_epoch {
                        let res = rx.process_slot_with(wave, rxs);
                        if res.packet == Some(pkt) {
                            recorder.note(EventKind::Decoded);
                        } else {
                            lost += 1;
                            let reason = res.fail.unwrap_or(DecodeFailReason::BadCrc);
                            recorder.record(global, tid, EventKind::DecodeFail { reason });
                        }
                    }
                }
                out.push(UplinkResult {
                    sent: n_per_epoch,
                    lost,
                    snr_db,
                });
            }
            out
        })
    }

    /// The envelope-detector threshold the tag comparator switches at (V).
    const COMPARATOR_THRESHOLD_V: f64 = 0.12;
    /// Envelope-detector RC time constant (s) — ~9 carrier cycles; fast
    /// enough that pulse-width distortion stays below half a raw bit at
    /// 500 bps even for the strongest tag.
    const ENVELOPE_TAU_S: f64 = 9.0 / 90_000.0;

    /// Rising-edge delay at a tag: time for the envelope to charge from 0
    /// to the comparator threshold given a received amplitude `a`.
    fn rise_delay(a: f64) -> f64 {
        let vth = Self::COMPARATOR_THRESHOLD_V;
        if a <= vth {
            return f64::INFINITY;
        }
        Self::ENVELOPE_TAU_S * (a / (a - vth)).ln()
    }

    /// Falling-edge delay: time for the envelope to decay from `a` to the
    /// threshold. On top of the detector's own RC, the *reader PZT's ring
    /// tail* keeps pumping the channel after the drive stops: with plain
    /// OOK the transducer rings freely (τ = 2Q_free/ω ≈ 0.5 ms), while the
    /// FSK-in/OOK-out drive keeps it amplifier-loaded (τ ≈ 0.1 ms) —
    /// Sec. 4.1's mitigation.
    fn fall_delay(&self, a: f64) -> f64 {
        let vth = Self::COMPARATOR_THRESHOLD_V;
        if a <= vth {
            return 0.0;
        }
        let ring_tau = match self.drive_scheme {
            DriveScheme::PlainOok => 2.0 * 141.0 / (2.0 * std::f64::consts::PI * 90_000.0),
            DriveScheme::FskInOokOut { .. } => 2.0 * 28.0 / (2.0 * std::f64::consts::PI * 90_000.0),
        };
        (Self::ENVELOPE_TAU_S + ring_tau) * (a / vth).ln()
    }

    /// Envelope amplitude at a tag: carrier voltage minus the detector
    /// diode drop.
    fn tag_envelope_amplitude(&self, tid: u8) -> Option<f64> {
        Some((self.channel.tag_carrier_voltage(tid)? - 0.15).max(0.0))
    }

    /// Transforms reader TX edges into the edges seen at a tag's
    /// comparator output.
    fn edges_at_tag(&self, tid: u8, edges: &[(f64, bool)]) -> Option<Vec<(f64, bool)>> {
        let site = self.channel.deployment().site(tid)?;
        let delay = site.path.delay_s();
        let a = self.tag_envelope_amplitude(tid)?;
        let (rise, fall) = (Self::rise_delay(a), self.fall_delay(a));
        if !rise.is_finite() {
            return None; // amplitude below comparator threshold
        }
        Some(
            edges
                .iter()
                .map(|&(t, rising)| (t + delay + if rising { rise } else { fall }, rising))
                .collect(),
        )
    }

    /// Base seed for a (tag, rate) downlink beacon sequence.
    pub fn downlink_base_seed(&self, tid: u8, dl_bps: f64) -> u64 {
        trial_seed(self.seed ^ 0xD1D1 ^ (u64::from(tid) << 24), dl_bps.to_bits())
    }

    /// Sends one seeded beacon to `tid` at `dl_bps`; `true` when the
    /// tag's demodulator recovers it exactly. The transmitter's jitter
    /// RNG is stateful, so each beacon gets a fresh transmitter keyed by
    /// `beacon_seed` — making the outcome a pure function of the seed.
    /// The start time is drawn from the seed too: real beacons arrive at
    /// arbitrary phases of the tag's 12 kHz timer, and a fixed start would
    /// pin every beacon to one (possibly pathological) quantisation phase.
    pub fn downlink_beacon(&self, tid: u8, dl_bps: f64, beacon_seed: u64) -> bool {
        let mut rng = TagRng::new(beacon_seed);
        let mut tx = BeaconTransmitter::new(dl_bps, rng.next_u64());
        let cmd = DlCmd::from_nibble((rng.next_u64() & 0xF) as u8);
        let beacon = DlBeacon::new(cmd);
        let edges = tx.edges(&beacon, rng.unit_f64());
        let Some(tag_edges) = self.edges_at_tag(tid, &edges) else {
            return false;
        };
        let mut demod = PieDemodulator::new(McuClock::for_tag(self.seed, tid), dl_bps);
        demod.set_supply(1.95 + 0.35 * rng.unit_f64());
        let decoded = demod.feed_edges(&tag_edges);
        decoded.len() == 1 && decoded[0].beacon == beacon
    }

    /// Fig. 13(a): sends `n` beacons at `dl_bps` to tag `tid` and counts
    /// decode failures.
    pub fn downlink_trial(&self, tid: u8, dl_bps: f64, n: u64) -> DownlinkResult {
        let base = self.downlink_base_seed(tid, dl_bps);
        let mut lost = 0;
        for i in 0..n {
            if !self.downlink_beacon(tid, dl_bps, trial_seed(base, i)) {
                lost += 1;
            }
        }
        DownlinkResult { sent: n, lost }
    }

    /// Fig. 13(b): one beacon broadcast; per-tag decode-completion offsets
    /// relative to Tag 6, in seconds. Tags that fail to decode are omitted.
    pub fn sync_offsets(&self) -> Vec<(u8, f64)> {
        let mut tx = BeaconTransmitter::new(250.0, self.seed ^ 0x5F0C);
        let beacon = DlBeacon::new(DlCmd::nack().with_empty(true));
        let edges = tx.edges(&beacon, 0.0);
        let mut completions: Vec<(u8, f64)> = Vec::new();
        for site in &Deployment::paper().sites {
            let tid = site.id;
            let Some(tag_edges) = self.edges_at_tag(tid, &edges) else {
                continue;
            };
            let mut demod = PieDemodulator::new(McuClock::for_tag(self.seed, tid), 250.0);
            let decoded = demod.feed_edges(&tag_edges);
            if let Some(d) = decoded.first() {
                completions.push((tid, d.completed_at));
            }
        }
        let reference = completions
            .iter()
            .find(|&&(tid, _)| tid == 6)
            .map(|&(_, t)| t)
            .unwrap_or_else(|| completions.first().map(|&(_, t)| t).unwrap_or(0.0));
        completions
            .into_iter()
            .map(|(tid, t)| (tid, t - reference))
            .collect()
    }

    /// Fig. 14(b): one seeded ping-pong round — beacon duration plus the
    /// guard + UL + software-latency reply stage. Pure in `round_seed`.
    pub fn ping_pong_sample(&self, round_seed: u64) -> PingPong {
        let tx = BeaconTransmitter::new(250.0, round_seed);
        let latency = LatencyModel::default();
        let mut rng = TagRng::new(round_seed ^ 0xB0B0);
        let beacon = DlBeacon::new(DlCmd::ack());
        let stage1 = tx.beacon_duration(&beacon);
        let stage2 = arachnet_core::rates::TAG_REPLY_GUARD_S
            + 2.0 * arachnet_core::packet::UL_PACKET_BITS as f64 / 375.0
            + latency.sample(&mut rng);
        PingPong {
            stage1_s: stage1,
            stage2_s: stage2,
        }
    }

    /// Fig. 14(b): samples `n` ping-pong latencies.
    pub fn ping_pong_samples(&self, n: usize) -> Vec<PingPong> {
        (0..n)
            .map(|i| self.ping_pong_sample(trial_seed(self.seed ^ 0x1414, i as u64)))
            .collect()
    }

    /// Fig. 14(a): the raw reader-side waveform of one ping-pong — beacon
    /// (strong, keyed carrier), 20 ms tag guard (CW leak), UL packet
    /// (backscatter on leak). Returns `(waveform, sample_rate)`.
    pub fn ping_pong_waveform(&self, tid: u8) -> (Vec<f64>, f64) {
        let fs = self.channel.config().sample_rate;
        let tx = BeaconTransmitter::new(250.0, self.seed);
        let beacon = DlBeacon::new(DlCmd::ack());
        let levels = tx.raw_levels(&beacon);
        let spl = (fs / 250.0).round() as usize;
        // Beacon segment: keyed carrier at TX amplitude (what the RX PZT
        // sees from the neighbouring TX PZT is essentially the drive).
        let w = 2.0 * std::f64::consts::PI * 90_000.0 / fs;
        let mut wave: Vec<f64> = Vec::new();
        let amp = self.channel.config().carrier_leakage * 2.0;
        for (li, &lvl) in levels.iter().enumerate() {
            for k in 0..spl {
                let n = li * spl + k;
                wave.push(if lvl { amp * (w * n as f64).sin() } else { 0.0 });
            }
        }
        // Guard + UL segment via the uplink synthesizer.
        let pkt = UlPacket::new(tid % 16, 0x3A5).unwrap();
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(pkt.to_bits().iter()).to_bools();
        let spb = (fs / 375.0).round() as usize;
        let guard = (0.020 * fs) as usize;
        let mut states = vec![PztState::Absorptive; guard];
        states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        states.extend(vec![PztState::Absorptive; spb * 4]);
        let len = states.len();
        let ul = self.channel.uplink_waveform(&[(tid, &states)], len);
        wave.extend(ul);
        (wave, fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_packet_is_pure_in_seed_and_scratch() {
        // The same packet seed must decode identically through a fresh
        // scratch and one warmed on a different tag — scratch contents
        // must never leak into results.
        let sim = WaveSim::paper(11);
        let rx = sim.uplink_rx(375.0);
        let base = sim.uplink_base_seed(8, 375.0);
        let mut warm = PhyScratch::default();
        sim.uplink_packet(&rx, 11, trial_seed(base, 5), &mut warm);
        let mut fresh = PhyScratch::default();
        for i in 0..4 {
            let s = trial_seed(base, i);
            let a = sim.uplink_packet(&rx, 8, s, &mut fresh);
            let b = sim.uplink_packet(&rx, 8, s, &mut warm);
            assert_eq!(a, b, "packet {i} diverged between fresh and warm scratch");
        }
        let snr_a = sim.uplink_snr(&rx, 8, &mut fresh);
        let snr_b = sim.uplink_snr(&rx, 8, &mut warm);
        assert_eq!(snr_a, snr_b);
    }

    #[test]
    fn downlink_beacon_is_pure_in_seed() {
        let sim = WaveSim::paper(12);
        let base = sim.downlink_base_seed(8, 250.0);
        for i in 0..8 {
            let s = trial_seed(base, i);
            assert_eq!(
                sim.downlink_beacon(8, 250.0, s),
                sim.downlink_beacon(8, 250.0, s)
            );
        }
    }

    #[test]
    fn uplink_low_rate_is_reliable() {
        let sim = WaveSim::paper(1);
        let r = sim.uplink_trial(8, 3_000.0, 15);
        // At 3 kbps the strongest tag should still be near-lossless.
        assert!(r.lost <= 1, "{}/{} lost", r.lost, r.sent);
        assert!(r.snr_db > 5.0, "snr {:.1}", r.snr_db);
    }

    #[test]
    fn observed_uplink_trial_matches_unobserved() {
        // Attaching a recorder must not change a single loss count, and the
        // recorded events must reconcile exactly with the result.
        let sim = WaveSim::paper(13);
        let bare = sim.uplink_trial(11, 1_500.0, 20);
        let mut rec = Recorder::enabled(13);
        let observed = sim.uplink_trial_observed(11, 1_500.0, 20, &mut rec);
        assert_eq!(bare.lost, observed.lost);
        assert_eq!(bare.snr_db, observed.snr_db);
        let snap = rec.clone().into_snapshot();
        assert_eq!(snap.count_at(EventKind::Decoded.index()), observed.sent - observed.lost);
        let fails: u64 = (0..arachnet_obs::KIND_COUNT)
            .filter(|&i| {
                i == EventKind::DecodeFail { reason: DecodeFailReason::BadCrc }.index()
            })
            .map(|i| snap.count_at(i))
            .sum();
        assert_eq!(fails, observed.lost);
    }

    #[test]
    fn uplink_snr_ordering_matches_fig12a() {
        let sim = WaveSim::paper(2);
        let s8 = sim.uplink_trial(8, 375.0, 1).snr_db;
        let s4 = sim.uplink_trial(4, 375.0, 1).snr_db;
        let s11 = sim.uplink_trial(11, 375.0, 1).snr_db;
        assert!(s8 > s4 && s4 > s11, "s8={s8:.1} s4={s4:.1} s11={s11:.1}");
    }

    #[test]
    fn uplink_snr_falls_with_rate() {
        let sim = WaveSim::paper(3);
        let lo = sim.uplink_trial(8, 93.75, 1).snr_db;
        let hi = sim.uplink_trial(8, 3_000.0, 1).snr_db;
        assert!(lo > hi, "lo={lo:.1} hi={hi:.1}");
    }

    #[test]
    fn downlink_default_rate_is_nearly_lossless() {
        let sim = WaveSim::paper(4);
        for tid in [8u8, 4, 11] {
            let r = sim.downlink_trial(tid, 250.0, 100);
            assert!(
                (r.lost as f64) / (r.sent as f64) < 0.02,
                "tag {tid}: {}/{} lost at 250 bps",
                r.lost,
                r.sent
            );
        }
    }

    #[test]
    fn downlink_loss_surges_at_high_rates() {
        // Fig. 13(a)'s signature: heavy loss at 1–2 kbps.
        let sim = WaveSim::paper(5);
        let r2000 = sim.downlink_trial(8, 2_000.0, 100);
        assert!(
            r2000.lost > 30,
            "expected a surge at 2 kbps, got {}/{}",
            r2000.lost,
            r2000.sent
        );
        let r500 = sim.downlink_trial(8, 500.0, 100);
        assert!(
            r500.lost < r2000.lost,
            "500 bps ({}) vs 2 kbps ({})",
            r500.lost,
            r2000.lost
        );
    }

    #[test]
    fn downlink_loss_monotone_profile() {
        let sim = WaveSim::paper(6);
        let losses: Vec<u64> = [125.0, 250.0, 1_000.0, 2_000.0]
            .iter()
            .map(|&bps| sim.downlink_trial(4, bps, 60).lost)
            .collect();
        assert!(
            losses[0] <= losses[2] + 5 && losses[1] <= losses[2] + 5,
            "{losses:?}"
        );
        assert!(losses[3] >= losses[1], "{losses:?}");
    }

    #[test]
    fn sync_offsets_within_5ms() {
        // Fig. 13(b): all tags within ±5 ms of Tag 6.
        let sim = WaveSim::paper(7);
        let offsets = sim.sync_offsets();
        assert!(offsets.len() >= 10, "only {} tags decoded", offsets.len());
        for (tid, off) in &offsets {
            assert!(off.abs() < 5e-3, "tag {tid}: offset {off}");
        }
        // The reference itself is zero.
        let t6 = offsets.iter().find(|&&(t, _)| t == 6).unwrap();
        assert_eq!(t6.1, 0.0);
    }

    #[test]
    fn sync_offsets_are_not_all_identical() {
        let sim = WaveSim::paper(8);
        let offsets = sim.sync_offsets();
        let distinct = offsets.iter().filter(|(_, o)| o.abs() > 1e-6).count();
        assert!(distinct >= 5, "offsets suspiciously uniform: {offsets:?}");
    }

    #[test]
    fn identity_drift_reproduces_the_static_trial() {
        use biw_channel::timevarying::ChannelDrift;
        let sim = WaveSim::paper(14);
        let tvc = TimeVaryingChannel::paper(
            sim.channel().config().clone(),
            &[ChannelDrift::identity()],
        );
        let r = sim.uplink_trial_drifting(&tvc, 8, 1_500.0, 20, &mut Recorder::disabled());
        let bare = sim.uplink_trial(8, 1_500.0, 20);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].lost, bare.lost);
        assert_eq!(r[0].snr_db, bare.snr_db);
    }

    #[test]
    fn fading_epochs_lose_snr_and_get_recorded() {
        use biw_channel::timevarying::ChannelDrift;
        let sim = WaveSim::paper(15);
        let tvc = TimeVaryingChannel::paper(
            sim.channel().config().clone(),
            &[
                ChannelDrift::identity(),
                ChannelDrift::fade(0.5),
                ChannelDrift::fade(0.2),
            ],
        );
        let mut rec = Recorder::enabled(15);
        let r = sim.uplink_trial_drifting(&tvc, 8, 375.0, 5, &mut rec);
        assert_eq!(r.len(), 3);
        assert!(
            r[0].snr_db > r[1].snr_db && r[1].snr_db > r[2].snr_db,
            "SNR did not fall with the fade: {:?}",
            r.iter().map(|x| x.snr_db).collect::<Vec<_>>()
        );
        let snap = rec.into_snapshot();
        assert_eq!(
            snap.count_at(EventKind::ChannelEpoch { epoch: 0 }.index()),
            3,
            "one epoch marker per epoch"
        );
    }

    #[test]
    fn drifting_trial_is_deterministic() {
        use biw_channel::timevarying::ChannelDrift;
        let sim = WaveSim::paper(16);
        let tvc = TimeVaryingChannel::paper(
            sim.channel().config().clone(),
            &[ChannelDrift::identity(), ChannelDrift::fade(0.6)],
        );
        let a = sim.uplink_trial_drifting(&tvc, 11, 750.0, 10, &mut Recorder::disabled());
        let b = sim.uplink_trial_drifting(&tvc, 11, 750.0, 10, &mut Recorder::enabled(16));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.lost, y.lost);
            assert_eq!(x.snr_db, y.snr_db);
        }
    }

    #[test]
    fn ping_pong_distribution_matches_fig14b() {
        let sim = WaveSim::paper(9);
        let samples = sim.ping_pong_samples(1_000);
        let mut stage2: Vec<f64> = samples.iter().map(|p| p.stage2_s).collect();
        stage2.sort_by(f64::total_cmp);
        let p99 = stage2[989];
        assert!(p99 < 0.2819, "p99 {p99}");
        let total_max = samples.iter().map(|p| p.total()).fold(0.0f64, f64::max);
        assert!(total_max < 0.5, "total {total_max}");
    }

    #[test]
    fn ping_pong_waveform_shows_three_phases() {
        let sim = WaveSim::new(10, NoiseConfig::silent());
        let (wave, fs) = sim.ping_pong_waveform(8);
        let rms = |s: &[f64]| (s.iter().map(|x| x * x).sum::<f64>() / s.len() as f64).sqrt();
        // Beacon phase: strong.
        let beacon_end = (23.0 / 250.0 * fs) as usize;
        let dl = rms(&wave[..beacon_end]);
        // Guard phase (CW leak only).
        let guard = rms(&wave[beacon_end + 100..beacon_end + (0.015 * fs) as usize]);
        assert!(dl > guard, "DL {dl} vs guard {guard}");
        assert!(guard > 0.5, "guard leak missing: {guard}");
        assert!(wave.len() as f64 / fs > 0.2, "waveform too short");
    }

}
