//! Byte-exact trial-result serialization for sweep checkpoints.
//!
//! [`TrialCodec`] is the contract a trial type must satisfy to ride the
//! checkpoint/resume path of [`crate::sweep`]: `decode(encode(x)) == x`
//! **bit for bit**, because a resumed sweep must reproduce the
//! uninterrupted run byte-identically (floats round-trip via
//! [`f64::to_bits`], never through text). The format is deliberately dumb —
//! little-endian fixed-width integers and length-prefixed sequences, no
//! external dependencies — and is only ever read back by the same build
//! that wrote it; the checkpoint header (see `sweep`) guards against
//! cross-run shape mismatches.
//!
//! Implementations cover the primitive/composite types the experiment
//! layer sweeps over, plus the observability payloads that travel with a
//! trial ([`Event`], [`RecorderSnapshot`]) and the sim-level result structs
//! ([`ReconvergenceSample`](crate::scenario::ReconvergenceSample),
//! [`UplinkResult`](crate::wavesim::UplinkResult),
//! [`FleetUplinkResult`](crate::fleet::FleetUplinkResult),
//! [`CellOutcome`](crate::fleet::CellOutcome)).

use arachnet_obs::{
    DecodeFailReason, Event, EventKind, MigrateReason, RecorderSnapshot, KIND_COUNT,
};

use crate::fleet::{CellOutcome, FleetUplinkResult};
use crate::scenario::ReconvergenceSample;
use crate::wavesim::UplinkResult;

/// Exact binary round-tripping for checkpointed trial results.
///
/// Invariant: `decode` of an `encode` output must reconstruct a value equal
/// to the original in every bit that can influence a report (floats are
/// carried as raw IEEE-754 bits). `decode` must consume exactly the bytes
/// `encode` produced and return `None` on any truncation or corruption —
/// the sweep treats an undecodable record as "re-run this trial", never as
/// a panic.
pub trait TrialCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. `None` on truncated or invalid input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl TrialCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let b = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl TrialCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl TrialCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

impl TrialCodec for f64 {
    /// Raw IEEE-754 bits: NaN payloads and signed zeros survive, so a
    /// restored trial renders exactly like a recomputed one.
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::decode(input)?))
    }
}

impl TrialCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = usize::decode(input)?;
        let b = take(input, n)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

impl<T: TrialCodec> TrialCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<T: TrialCodec> TrialCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let n = usize::decode(input)?;
        // Guard against a corrupt length demanding absurd allocation: each
        // element consumes at least one byte.
        if n > input.len() {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

macro_rules! tuple_codec {
    ($($name:ident),+) => {
        impl<$($name: TrialCodec),+> TrialCodec for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                Some(($($name::decode(input)?,)+))
            }
        }
    };
}

tuple_codec!(A);
tuple_codec!(A, B);
tuple_codec!(A, B, C);
tuple_codec!(A, B, C, D);

fn migrate_reason_code(r: MigrateReason) -> u8 {
    match r {
        MigrateReason::FeedbackNack => 0,
        MigrateReason::NackRun => 1,
        MigrateReason::BeaconTimeout => 2,
        MigrateReason::EmptyGated => 3,
        MigrateReason::Reset => 4,
        MigrateReason::PowerOnReset => 5,
    }
}

fn migrate_reason_from(code: u8) -> Option<MigrateReason> {
    Some(match code {
        0 => MigrateReason::FeedbackNack,
        1 => MigrateReason::NackRun,
        2 => MigrateReason::BeaconTimeout,
        3 => MigrateReason::EmptyGated,
        4 => MigrateReason::Reset,
        5 => MigrateReason::PowerOnReset,
        _ => return None,
    })
}

fn decode_fail_code(r: DecodeFailReason) -> u8 {
    match r {
        DecodeFailReason::TooShort => 0,
        DecodeFailReason::NoModulation => 1,
        DecodeFailReason::TooFewEdges => 2,
        DecodeFailReason::NoBitClock => 3,
        DecodeFailReason::NoPreamble => 4,
        DecodeFailReason::BadCrc => 5,
    }
}

fn decode_fail_from(code: u8) -> Option<DecodeFailReason> {
    Some(match code {
        0 => DecodeFailReason::TooShort,
        1 => DecodeFailReason::NoModulation,
        2 => DecodeFailReason::TooFewEdges,
        3 => DecodeFailReason::NoBitClock,
        4 => DecodeFailReason::NoPreamble,
        5 => DecodeFailReason::BadCrc,
        _ => return None,
    })
}

impl TrialCodec for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
        match *self {
            EventKind::SlotClaimed { offset } | EventKind::Settled { offset } => {
                offset.encode(out)
            }
            EventKind::TagMigrated { from, to, reason } => {
                from.encode(out);
                to.encode(out);
                out.push(migrate_reason_code(reason));
            }
            EventKind::AckNack { ack } => ack.encode(out),
            EventKind::Collision { transmitters } => transmitters.encode(out),
            EventKind::DecodeFail { reason } => out.push(decode_fail_code(reason)),
            EventKind::ChannelEpoch { epoch } => epoch.encode(out),
            EventKind::ReaderOutage { slots } => slots.encode(out),
            EventKind::ReaderAssigned { band } => band.encode(out),
            EventKind::CrossReaderCollision { readers } => readers.encode(out),
            EventKind::TrialQuarantined { attempts } => attempts.encode(out),
            EventKind::SweepResumed { restored } => restored.encode(out),
            EventKind::TrialStalled { waited_ms } => waited_ms.encode(out),
            EventKind::WorkerRespawned { worker } => worker.encode(out),
            EventKind::BrownoutEntered { ewma_us } | EventKind::BrownoutExited { ewma_us } => {
                ewma_us.encode(out)
            }
            EventKind::Empty
            | EventKind::BeaconLost
            | EventKind::PowerCutoff
            | EventKind::PowerOn
            | EventKind::Decoded
            | EventKind::TagJoined
            | EventKind::TagDeparted
            | EventKind::BudgetExhausted => {}
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => EventKind::SlotClaimed {
                offset: u16::decode(input)?,
            },
            1 => EventKind::Settled {
                offset: u16::decode(input)?,
            },
            2 => EventKind::TagMigrated {
                from: u16::decode(input)?,
                to: u16::decode(input)?,
                reason: migrate_reason_from(u8::decode(input)?)?,
            },
            3 => EventKind::AckNack {
                ack: bool::decode(input)?,
            },
            4 => EventKind::Collision {
                transmitters: u8::decode(input)?,
            },
            5 => EventKind::Empty,
            6 => EventKind::BeaconLost,
            7 => EventKind::PowerCutoff,
            8 => EventKind::PowerOn,
            9 => EventKind::Decoded,
            10 => EventKind::DecodeFail {
                reason: decode_fail_from(u8::decode(input)?)?,
            },
            11 => EventKind::TagJoined,
            12 => EventKind::TagDeparted,
            13 => EventKind::ChannelEpoch {
                epoch: u16::decode(input)?,
            },
            14 => EventKind::ReaderOutage {
                slots: u16::decode(input)?,
            },
            15 => EventKind::ReaderAssigned {
                band: u16::decode(input)?,
            },
            16 => EventKind::CrossReaderCollision {
                readers: u8::decode(input)?,
            },
            17 => EventKind::TrialQuarantined {
                attempts: u8::decode(input)?,
            },
            18 => EventKind::SweepResumed {
                restored: u16::decode(input)?,
            },
            19 => EventKind::BudgetExhausted,
            20 => EventKind::TrialStalled {
                waited_ms: u32::decode(input)?,
            },
            21 => EventKind::WorkerRespawned {
                worker: u16::decode(input)?,
            },
            22 => EventKind::BrownoutEntered {
                ewma_us: u32::decode(input)?,
            },
            23 => EventKind::BrownoutExited {
                ewma_us: u32::decode(input)?,
            },
            _ => return None,
        })
    }
}

impl TrialCodec for Event {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slot.encode(out);
        self.tag.encode(out);
        self.kind.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Event {
            slot: u64::decode(input)?,
            tag: u8::decode(input)?,
            kind: EventKind::decode(input)?,
        })
    }
}

impl TrialCodec for RecorderSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed.encode(out);
        self.dropped.encode(out);
        for c in &self.counts {
            c.encode(out);
        }
        self.events.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let seed = u64::decode(input)?;
        let dropped = u64::decode(input)?;
        let mut counts = [0u64; KIND_COUNT];
        for c in &mut counts {
            *c = u64::decode(input)?;
        }
        Some(RecorderSnapshot {
            seed,
            dropped,
            counts,
            events: Vec::<Event>::decode(input)?,
        })
    }
}

impl TrialCodec for ReconvergenceSample {
    fn encode(&self, out: &mut Vec<u8>) {
        self.disruption_slot.encode(out);
        self.slots.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ReconvergenceSample {
            disruption_slot: u64::decode(input)?,
            slots: Option::<u64>::decode(input)?,
        })
    }
}

impl TrialCodec for UplinkResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sent.encode(out);
        self.lost.encode(out);
        self.snr_db.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(UplinkResult {
            sent: u64::decode(input)?,
            lost: u64::decode(input)?,
            snr_db: f64::decode(input)?,
        })
    }
}

impl TrialCodec for FleetUplinkResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sent.encode(out);
        self.lost.encode(out);
        self.cross_collisions.encode(out);
        self.snr_db.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(FleetUplinkResult {
            sent: u64::decode(input)?,
            lost: u64::decode(input)?,
            cross_collisions: u64::decode(input)?,
            snr_db: f64::decode(input)?,
        })
    }
}

impl TrialCodec for CellOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.band.encode(out);
        self.band_sharers.encode(out);
        self.samples.encode(out);
        self.slots.encode(out);
        self.snapshot.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CellOutcome {
            band: usize::decode(input)?,
            band_sharers: u8::decode(input)?,
            samples: Vec::<ReconvergenceSample>::decode(input)?,
            slots: u64::decode(input)?,
            snapshot: RecorderSnapshot::decode(input)?,
        })
    }
}

/// Encodes `value` into a fresh byte vector.
pub fn encode_to_vec<T: TrialCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value that must consume `bytes` exactly; `None` on trailing
/// garbage or truncation.
pub fn decode_exact<T: TrialCodec>(bytes: &[u8]) -> Option<T> {
    let mut input = bytes;
    let v = T::decode(&mut input)?;
    input.is_empty().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: TrialCodec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_exact(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip_exactly() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(usize::MAX as u64);
        roundtrip(String::from("quarantine ünïcode"));
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((1u64, 2.5f64, Some(3u8)));
    }

    #[test]
    fn floats_roundtrip_bit_for_bit() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.0e-308, 281.9] {
            let bytes = encode_to_vec(&v);
            let back: f64 = decode_exact(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn every_event_kind_roundtrips() {
        let kinds = [
            EventKind::SlotClaimed { offset: 9 },
            EventKind::Settled { offset: 3 },
            EventKind::TagMigrated {
                from: 1,
                to: 5,
                reason: MigrateReason::BeaconTimeout,
            },
            EventKind::AckNack { ack: false },
            EventKind::Collision { transmitters: 3 },
            EventKind::Empty,
            EventKind::BeaconLost,
            EventKind::PowerCutoff,
            EventKind::PowerOn,
            EventKind::Decoded,
            EventKind::DecodeFail {
                reason: DecodeFailReason::NoPreamble,
            },
            EventKind::TagJoined,
            EventKind::TagDeparted,
            EventKind::ChannelEpoch { epoch: 4 },
            EventKind::ReaderOutage { slots: 64 },
            EventKind::ReaderAssigned { band: 2 },
            EventKind::CrossReaderCollision { readers: 2 },
            EventKind::TrialQuarantined { attempts: 2 },
            EventKind::SweepResumed { restored: 40 },
            EventKind::BudgetExhausted,
            EventKind::TrialStalled { waited_ms: 9_000 },
            EventKind::WorkerRespawned { worker: 1 },
            EventKind::BrownoutEntered { ewma_us: 1_200 },
            EventKind::BrownoutExited { ewma_us: 300 },
        ];
        assert_eq!(kinds.len(), KIND_COUNT, "new kinds need codec arms");
        for k in kinds {
            roundtrip(Event {
                slot: 77,
                tag: 4,
                kind: k,
            });
        }
    }

    #[test]
    fn snapshots_and_outcomes_roundtrip() {
        let mut counts = [0u64; KIND_COUNT];
        counts[4] = 2;
        counts[9] = 11;
        let snap = RecorderSnapshot {
            seed: 0xDEAD_BEEF,
            dropped: 3,
            counts,
            events: vec![Event {
                slot: 12,
                tag: 8,
                kind: EventKind::Collision { transmitters: 2 },
            }],
        };
        roundtrip(snap.clone());
        roundtrip(ReconvergenceSample {
            disruption_slot: 4_000,
            slots: None,
        });
        roundtrip(UplinkResult {
            sent: 16,
            lost: 1,
            snr_db: -3.75,
        });
        // NaN SNR (no representative waveform) must survive bit-for-bit
        // even though NaN breaks PartialEq: compare raw bits instead.
        let nan_snr = UplinkResult {
            sent: 16,
            lost: 1,
            snr_db: f64::NAN,
        };
        let back: UplinkResult = decode_exact(&encode_to_vec(&nan_snr)).unwrap();
        assert_eq!(back.snr_db.to_bits(), nan_snr.snr_db.to_bits());
        roundtrip(FleetUplinkResult {
            sent: 16,
            lost: 0,
            cross_collisions: 4,
            snr_db: 12.25,
        });
        roundtrip(CellOutcome {
            band: 1,
            band_sharers: 2,
            samples: vec![ReconvergenceSample {
                disruption_slot: 9,
                slots: Some(120),
            }],
            slots: 20_000,
            snapshot: snap,
        });
    }

    #[test]
    fn truncated_and_corrupt_input_decodes_to_none() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(
                decode_exact::<Vec<u64>>(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_exact::<Vec<u64>>(&extended).is_none());
        // A length prefix pointing past the buffer must not allocate/loop.
        let mut lied = Vec::new();
        (u64::MAX).encode(&mut lied);
        assert!(decode_exact::<Vec<u64>>(&lied).is_none());
        // An out-of-range enum code is invalid, not a panic.
        assert!(decode_exact::<bool>(&[7]).is_none());
    }

    /// Property (testkit): arbitrary nested composites round-trip exactly.
    #[test]
    fn property_random_composites_roundtrip() {
        use arachnet_testkit::{check, gen, prop_assert_eq};
        let g = gen::zip3(
            gen::vec(gen::u64_any(), 0, 20),
            gen::u64_any(),
            gen::u64_range(0, 3),
        );
        check("codec_roundtrip", &g, |(v, bits, opt)| {
            let value = (
                v.clone(),
                f64::from_bits(*bits),
                if *opt == 0 { None } else { Some(*opt) },
            );
            let bytes = encode_to_vec(&value);
            let back: (Vec<u64>, f64, Option<u64>) =
                decode_exact(&bytes).ok_or("decode failed")?;
            prop_assert_eq!(&back.0, &value.0);
            prop_assert_eq!(back.1.to_bits(), value.1.to_bits());
            prop_assert_eq!(back.2, value.2);
            Ok(())
        });
    }
}
