//! The nine tag transmission patterns of Table 3.
//!
//! Two families: c1–c5 keep all 12 tags and sweep the slot utilization
//! (0.38 → 1.0); c2, c6–c9 hold utilization at 0.75 while varying the tag
//! count and period mix (excluding specific tags as the table's footnotes
//! list). Periods come from `{4, 8, 16, 32}`.

use arachnet_core::slot::{utilization, Period};

/// A named workload pattern.
///
/// ```
/// use arachnet_sim::patterns::Pattern;
///
/// let c5 = Pattern::c5();
/// assert_eq!(c5.len(), 12);
/// assert_eq!(c5.utilization(), 1.0); // the saturated configuration
/// ```
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Table 3 name (`c1`…`c9`).
    pub name: &'static str,
    /// `(tid, period)` assignments.
    pub tags: Vec<(u8, Period)>,
}

impl Pattern {
    /// Builds a pattern by distributing period counts over the included
    /// TIDs (shortest periods to the lowest TIDs).
    fn build(name: &'static str, include: &[u8], counts: [(u32, usize); 4]) -> Self {
        let mut periods = Vec::new();
        for (p, n) in counts {
            for _ in 0..n {
                periods.push(Period::new(p).expect("table periods are powers of two"));
            }
        }
        assert_eq!(periods.len(), include.len(), "{name}: count mismatch");
        Self {
            name,
            tags: include.iter().copied().zip(periods).collect(),
        }
    }

    /// Slot utilization `Σ 1/p` of the pattern.
    pub fn utilization(&self) -> f64 {
        let periods: Vec<Period> = self.tags.iter().map(|&(_, p)| p).collect();
        utilization(&periods)
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when the pattern has no tags.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// All nine Table 3 patterns.
    pub fn table3() -> Vec<Pattern> {
        vec![
            Self::c1(),
            Self::c2(),
            Self::c3(),
            Self::c4(),
            Self::c5(),
            Self::c6(),
            Self::c7(),
            Self::c8(),
            Self::c9(),
        ]
    }

    /// The fixed-tag-count family (c1–c5) of Fig. 15(a).
    pub fn fixed_tag_family() -> Vec<Pattern> {
        vec![Self::c1(), Self::c2(), Self::c3(), Self::c4(), Self::c5()]
    }

    /// The fixed-utilization family (c2, c6–c9) of Fig. 15(b).
    pub fn fixed_util_family() -> Vec<Pattern> {
        vec![Self::c2(), Self::c6(), Self::c7(), Self::c8(), Self::c9()]
    }

    /// c1: 12 tags, all period 32 — U = 0.375.
    pub fn c1() -> Pattern {
        Self::build("c1", &ALL12, [(4, 0), (8, 0), (16, 0), (32, 12)])
    }

    /// c2: 12 tags, all period 16 — U = 0.75.
    pub fn c2() -> Pattern {
        Self::build("c2", &ALL12, [(4, 0), (8, 0), (16, 12), (32, 0)])
    }

    /// c3: 12 tags, mixed periods — U = 0.84375 (the Fig. 16 workload).
    pub fn c3() -> Pattern {
        Self::build("c3", &ALL12, [(4, 1), (8, 2), (16, 2), (32, 7)])
    }

    /// c4: 12 tags — U = 0.9375.
    pub fn c4() -> Pattern {
        Self::build("c4", &ALL12, [(4, 0), (8, 6), (16, 0), (32, 6)])
    }

    /// c5: 12 tags — U = 1.0 (saturated).
    pub fn c5() -> Pattern {
        Self::build("c5", &ALL12, [(4, 1), (8, 3), (16, 4), (32, 4)])
    }

    /// c6: 11 tags (excl. 7) — U = 0.75.
    pub fn c6() -> Pattern {
        Self::build(
            "c6",
            &[1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12],
            [(4, 0), (8, 1), (16, 10), (32, 0)],
        )
    }

    /// c7: 10 tags (excl. 4, 7) — U = 0.75.
    pub fn c7() -> Pattern {
        Self::build(
            "c7",
            &[1, 2, 3, 5, 6, 8, 9, 10, 11, 12],
            [(4, 1), (8, 1), (16, 4), (32, 4)],
        )
    }

    /// c8: 8 tags (excl. 1, 4, 7, 9) — U = 0.75.
    pub fn c8() -> Pattern {
        Self::build(
            "c8",
            &[2, 3, 5, 6, 8, 10, 11, 12],
            [(4, 1), (8, 1), (16, 6), (32, 0)],
        )
    }

    /// c9: 6 tags (excl. 1, 3, 4, 7, 9, 11) — U = 0.75.
    pub fn c9() -> Pattern {
        Self::build(
            "c9",
            &[2, 5, 6, 8, 10, 12],
            [(4, 2), (8, 0), (16, 4), (32, 0)],
        )
    }
}

const ALL12: [u8; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilizations_match_table3() {
        let expected = [
            ("c1", 0.375),
            ("c2", 0.75),
            ("c3", 0.84375),
            ("c4", 0.9375),
            ("c5", 1.0),
            ("c6", 0.75),
            ("c7", 0.75),
            ("c8", 0.75),
            ("c9", 0.75),
        ];
        for (p, (name, util)) in Pattern::table3().iter().zip(expected) {
            assert_eq!(p.name, name);
            assert!(
                (p.utilization() - util).abs() < 1e-12,
                "{name}: {}",
                p.utilization()
            );
        }
    }

    #[test]
    fn tag_counts_match_table3() {
        let expected = [12, 12, 12, 12, 12, 11, 10, 8, 6];
        for (p, n) in Pattern::table3().iter().zip(expected) {
            assert_eq!(p.len(), n, "{}", p.name);
        }
    }

    #[test]
    fn excluded_tags_match_footnotes() {
        let has = |p: &Pattern, tid: u8| p.tags.iter().any(|&(t, _)| t == tid);
        assert!(!has(&Pattern::c6(), 7));
        for t in [4, 7] {
            assert!(!has(&Pattern::c7(), t));
        }
        for t in [1, 4, 7, 9] {
            assert!(!has(&Pattern::c8(), t));
        }
        for t in [1, 3, 4, 7, 9, 11] {
            assert!(!has(&Pattern::c9(), t));
        }
    }

    #[test]
    fn all_tids_are_deployment_tags() {
        for p in Pattern::table3() {
            for &(tid, _) in &p.tags {
                assert!((1..=12).contains(&tid), "{}: tid {tid}", p.name);
            }
        }
    }

    #[test]
    fn no_duplicate_tids() {
        for p in Pattern::table3() {
            let mut tids: Vec<u8> = p.tags.iter().map(|&(t, _)| t).collect();
            tids.sort_unstable();
            tids.dedup();
            assert_eq!(tids.len(), p.len(), "{}", p.name);
        }
    }

    #[test]
    fn families_are_correct_subsets() {
        let a = Pattern::fixed_tag_family();
        assert_eq!(
            a.iter().map(|p| p.name).collect::<Vec<_>>(),
            ["c1", "c2", "c3", "c4", "c5"]
        );
        assert!(a.iter().all(|p| p.len() == 12));
        let b = Pattern::fixed_util_family();
        assert_eq!(
            b.iter().map(|p| p.name).collect::<Vec<_>>(),
            ["c2", "c6", "c7", "c8", "c9"]
        );
        assert!(b.iter().all(|p| (p.utilization() - 0.75).abs() < 1e-12));
    }

    #[test]
    fn every_pattern_is_schedulable() {
        // All patterns satisfy Eq. 1, so the vanilla allocator must place
        // them collision-free.
        use arachnet_core::slot::allocate;
        for p in Pattern::table3() {
            let periods: Vec<Period> = p.tags.iter().map(|&(_, pp)| pp).collect();
            allocate(&periods).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }
}
