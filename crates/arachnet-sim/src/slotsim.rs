//! The slot-level network simulator.
//!
//! Drives the full protocol — reader MAC, per-tag MAC state machines with
//! their energy lifecycles, and a slot-granular channel — for thousands of
//! slots. This is the engine behind Fig. 15 (first convergence time),
//! Fig. 16 (long-running slot statistics), and the fault-injection
//! experiments (beacon loss, late arrivals, brownouts).
//!
//! Channel abstractions at this granularity:
//!
//! * each tag independently loses each beacon with `dl_loss_prob`
//!   (waveform-level experiments calibrate this rate — the paper bounds it
//!   below 0.1 % at the default 250 bps);
//! * a slot with exactly one transmitter decodes unless `ul_loss_prob`
//!   strikes (UL decode failures "affect only the non-empty ratio");
//! * a slot with several transmitters is always a collision; the capture
//!   effect may still yield one decodable packet (`capture_prob`), which
//!   the reader's IQ clustering overrides (Sec. 5.3).

use arachnet_core::convergence::{ConvergenceDetector, SlotStats};
use arachnet_core::mac::{ProtocolConfig, ReaderMac, SlotObservation, SlotOutcome};
use arachnet_core::rng::TagRng;
use arachnet_core::slot::Schedule;
use arachnet_obs::{DecodeFailReason, EventKind, Recorder, RecorderSnapshot, NO_TAG};
use arachnet_tag::device::{Lifecycle, SlotTiming, TagDevice};
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::noise::NoiseConfig;

use crate::patterns::Pattern;
use crate::scenario::{ReconvergenceSample, Scenario, ScenarioEvent};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SlotSimConfig {
    /// The workload (Table 3 pattern or custom).
    pub pattern: Pattern,
    /// Protocol parameters.
    pub protocol: ProtocolConfig,
    /// Experiment seed (drives every random stream).
    pub seed: u64,
    /// Per-tag per-beacon loss probability.
    pub dl_loss_prob: f64,
    /// Decode-failure probability for a clean single-transmitter slot.
    pub ul_loss_prob: f64,
    /// Probability that a collision still yields one decodable packet.
    pub capture_prob: f64,
    /// Start tags charged (skip the cold-start phase).
    pub charged_start: bool,
    /// Slot timing (energy accounting).
    pub timing: SlotTiming,
}

impl SlotSimConfig {
    /// Defaults matching the paper's long-run conditions.
    pub fn new(pattern: Pattern, seed: u64) -> Self {
        Self {
            pattern,
            protocol: ProtocolConfig::default(),
            seed,
            dl_loss_prob: 0.001,
            ul_loss_prob: 0.002,
            capture_prob: 0.3,
            charged_start: true,
            timing: SlotTiming::default(),
        }
    }

    /// An idealized channel (no losses) — for convergence-property tests.
    pub fn ideal(pattern: Pattern, seed: u64) -> Self {
        Self {
            dl_loss_prob: 0.0,
            ul_loss_prob: 0.0,
            capture_prob: 0.0,
            ..Self::new(pattern, seed)
        }
    }
}

/// Ground-truth record of one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthOutcome {
    /// Nobody transmitted.
    Empty,
    /// Exactly one tag transmitted (decoded or not).
    Single(u8),
    /// Multiple tags transmitted.
    Collision(Vec<u8>),
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Slots executed.
    pub slots: u64,
    /// Slot at which the convergence detector fired (32 consecutive
    /// non-collision slots), if it did.
    pub converged_at: Option<u64>,
    /// Whole-run ground-truth non-empty ratio.
    pub non_empty_ratio: f64,
    /// Whole-run ground-truth collision ratio.
    pub collision_ratio: f64,
    /// Per-window trajectories (window = 32 slots), sampled every slot:
    /// `(non_empty, collision)`.
    pub trajectory: Vec<(f64, f64)>,
    /// Ground-truth per-slot outcomes (only kept when requested).
    pub outcomes: Vec<TruthOutcome>,
}

/// Progress of an attached [`Scenario`] replay.
struct ScenarioState {
    scenario: Scenario,
    /// Index of the next unfired event (events are sorted by slot).
    next_event: usize,
    /// Re-convergence measurement origins, sorted (see
    /// [`Scenario::disruption_slots`]).
    disruptions: Vec<u64>,
    next_disruption: usize,
    /// The disruption currently being measured, if any. Overlapping
    /// disruptions merge into the earliest unresolved one.
    open_disruption: Option<u64>,
    samples: Vec<ReconvergenceSample>,
    /// Reader dark until this slot (exclusive).
    outage_until: u64,
    /// Noise storm until this slot (exclusive).
    burst_until: u64,
    burst_dl: f64,
    burst_ul: f64,
    /// Carrier voltage per registry tid, for join-time device creation.
    vps: Vec<(u8, f64)>,
}

/// The simulator.
///
/// ```
/// use arachnet_sim::patterns::Pattern;
/// use arachnet_sim::slotsim::{SlotSim, SlotSimConfig};
///
/// // 12 tags under the paper's Fig. 16 workload, realistic channel.
/// let mut sim = SlotSim::new(SlotSimConfig::new(Pattern::c3(), 42));
/// let run = sim.run(200);
/// assert_eq!(run.slots, 200);
/// assert!(run.non_empty_ratio > 0.0);
/// ```
pub struct SlotSim {
    config: SlotSimConfig,
    reader: ReaderMac,
    tags: Vec<TagDevice>,
    rng: TagRng,
    beacon: Option<arachnet_core::packet::DlBeacon>,
    detector: ConvergenceDetector,
    stats: SlotStats,
    slots_run: u64,
    keep_trajectory: bool,
    trajectory: Vec<(f64, f64)>,
    keep_outcomes: bool,
    outcomes: Vec<TruthOutcome>,
    recorder: Recorder,
    scenario: Option<Box<ScenarioState>>,
}

impl SlotSim {
    /// Builds the simulator: reader registry and tag devices from the
    /// pattern, harvest inputs from the calibrated deployment.
    pub fn new(config: SlotSimConfig) -> Self {
        Self::build(config, None)
    }

    /// Builds the simulator with a [`Scenario`] attached. The reader's
    /// a-priori registry is extended with every scenario-joined tag (their
    /// periods are known ahead of time, Sec. 5.6), and the scenario's timed
    /// events replay against the sim's slot clock (`slots_run`).
    ///
    /// Attaching [`Scenario::empty`] is exactly equivalent to [`Self::new`]
    /// — same random streams, same outcomes. Scenario slots are absolute:
    /// combining a scenario with [`Self::reset_network`] re-bases the
    /// timeline, so scenario experiments use charged starts instead of the
    /// reset protocol.
    pub fn with_scenario(config: SlotSimConfig, scenario: Scenario) -> Self {
        Self::build(config, Some(scenario))
    }

    fn build(config: SlotSimConfig, scenario: Option<Scenario>) -> Self {
        let channel = BiwChannel::paper(ChannelConfig {
            noise: NoiseConfig::silent(),
            ..ChannelConfig::default()
        });
        let mut registry: Vec<(u8, arachnet_core::slot::Period)> = config.pattern.tags.clone();
        if let Some(sc) = &scenario {
            for (tid, period) in sc.join_registry() {
                if !registry.iter().any(|&(t, _)| t == tid) {
                    registry.push((tid, period));
                }
            }
        }
        let reader = ReaderMac::new(config.protocol, &registry);
        let tags: Vec<TagDevice> = config
            .pattern
            .tags
            .iter()
            .map(|&(tid, period)| {
                let vp = channel.tag_carrier_voltage(tid).unwrap_or(1.0);
                let rng = TagRng::for_tag(config.seed, tid);
                if config.charged_start {
                    TagDevice::new_charged(tid, period, vp, config.protocol, config.timing, rng)
                } else {
                    TagDevice::new(tid, period, vp, config.protocol, config.timing, rng)
                }
            })
            .collect();
        let scenario = scenario.map(|sc| {
            let vps = registry
                .iter()
                .map(|&(tid, _)| (tid, channel.tag_carrier_voltage(tid).unwrap_or(1.0)))
                .collect();
            let disruptions = sc.disruption_slots();
            Box::new(ScenarioState {
                scenario: sc,
                next_event: 0,
                disruptions,
                next_disruption: 0,
                open_disruption: None,
                samples: Vec::new(),
                outage_until: 0,
                burst_until: 0,
                burst_dl: 0.0,
                burst_ul: 0.0,
                vps,
            })
        });
        let rng = TagRng::new(config.seed ^ 0xC0FFEE);
        Self {
            config,
            reader,
            tags,
            rng,
            beacon: None,
            detector: ConvergenceDetector::new(),
            stats: SlotStats::new(),
            slots_run: 0,
            keep_trajectory: false,
            trajectory: Vec::new(),
            keep_outcomes: false,
            outcomes: Vec::new(),
            recorder: Recorder::disabled(),
            scenario,
        }
    }

    /// Attaches a flight recorder; pass [`Recorder::disabled`] to detach.
    /// With a disabled recorder (the default) the per-slot cost of the
    /// instrumentation is a single branch.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached flight recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Detaches and consumes the flight recorder into a snapshot.
    pub fn take_recorder_snapshot(&mut self) -> RecorderSnapshot {
        std::mem::replace(&mut self.recorder, Recorder::disabled()).into_snapshot()
    }

    /// Enables per-slot trajectory recording (Fig. 16).
    pub fn record_trajectory(&mut self, on: bool) {
        self.keep_trajectory = on;
    }

    /// Enables ground-truth outcome recording.
    pub fn record_outcomes(&mut self, on: bool) {
        self.keep_outcomes = on;
    }

    /// Immutable access to the tag devices.
    pub fn tags(&self) -> &[TagDevice] {
        &self.tags
    }

    /// Immutable access to the reader MAC.
    pub fn reader(&self) -> &ReaderMac {
        &self.reader
    }

    /// Slots executed so far.
    pub fn slots_run(&self) -> u64 {
        self.slots_run
    }

    /// Re-convergence measurements taken so far (empty without a scenario).
    pub fn reconvergence_samples(&self) -> &[ReconvergenceSample] {
        self.scenario.as_ref().map_or(&[], |st| &st.samples)
    }

    /// Slot of the disruption currently being measured, if re-convergence
    /// has not been reached yet.
    pub fn open_disruption(&self) -> Option<u64> {
        self.scenario.as_ref().and_then(|st| st.open_disruption)
    }

    /// Fires scenario events due at `slot` and restarts the convergence
    /// detector at each disruption origin.
    fn apply_scenario_events(&mut self, slot: u64) {
        // Disruption boundaries first: they define measurement origins.
        {
            let st = self.scenario.as_mut().expect("scenario attached");
            let mut fired = false;
            while st.next_disruption < st.disruptions.len()
                && st.disruptions[st.next_disruption] <= slot
            {
                if st.open_disruption.is_none() {
                    st.open_disruption = Some(st.disruptions[st.next_disruption]);
                }
                st.next_disruption += 1;
                fired = true;
            }
            if fired {
                self.detector.reset();
            }
        }
        // Then the events themselves (sorted; same-slot in insertion order).
        loop {
            let event = {
                let st = self.scenario.as_ref().expect("scenario attached");
                match st.scenario.events().get(st.next_event) {
                    Some(ev) if ev.at <= slot => ev.event,
                    _ => break,
                }
            };
            self.scenario.as_mut().expect("scenario attached").next_event += 1;
            match event {
                ScenarioEvent::TagJoin { tid, period } => {
                    // A join of a still-present tid is a no-op (the builder
                    // rejects double-joins within the scenario; this guards
                    // joins of tags the pattern already deploys).
                    if !self.tags.iter().any(|t| t.tid() == tid) {
                        let st = self.scenario.as_ref().expect("scenario attached");
                        let vp = st
                            .vps
                            .iter()
                            .find(|&&(t, _)| t == tid)
                            .map_or(1.0, |&(_, v)| v);
                        let rng = TagRng::for_tag(self.config.seed, tid);
                        let dev = if self.config.charged_start {
                            TagDevice::new_charged(
                                tid,
                                period,
                                vp,
                                self.config.protocol,
                                self.config.timing,
                                rng,
                            )
                        } else {
                            TagDevice::new(
                                tid,
                                period,
                                vp,
                                self.config.protocol,
                                self.config.timing,
                                rng,
                            )
                        };
                        self.tags.push(dev);
                        self.recorder.record(slot, tid, EventKind::TagJoined);
                    }
                }
                ScenarioEvent::TagLeave { tid } => {
                    let before = self.tags.len();
                    self.tags.retain(|t| t.tid() != tid);
                    if self.tags.len() < before {
                        self.recorder.record(slot, tid, EventKind::TagDeparted);
                    }
                }
                ScenarioEvent::Brownout { tid } => {
                    if let Some(tag) = self.tags.iter_mut().find(|t| t.tid() == tid) {
                        tag.force_discharge();
                        self.recorder.record(slot, tid, EventKind::PowerCutoff);
                    }
                }
                ScenarioEvent::ReaderOutage { slots } => {
                    let st = self.scenario.as_mut().expect("scenario attached");
                    st.outage_until = st.outage_until.max(slot + slots);
                    self.recorder.record(
                        slot,
                        NO_TAG,
                        EventKind::ReaderOutage {
                            slots: slots.min(u64::from(u16::MAX)) as u16,
                        },
                    );
                }
                ScenarioEvent::NoiseBurst {
                    slots,
                    dl_loss,
                    ul_loss,
                } => {
                    let st = self.scenario.as_mut().expect("scenario attached");
                    st.burst_until = st.burst_until.max(slot + slots);
                    st.burst_dl = dl_loss;
                    st.burst_ul = ul_loss;
                }
                ScenarioEvent::ChannelEpoch { epoch } => {
                    self.recorder
                        .record(slot, NO_TAG, EventKind::ChannelEpoch { epoch });
                }
            }
        }
    }

    /// Closes the open re-convergence measurement if the detector fired.
    fn close_disruption_if_converged(&mut self) {
        if let Some(st) = self.scenario.as_mut() {
            if let (Some(n), Some(d)) = (self.detector.converged_at(), st.open_disruption) {
                st.open_disruption = None;
                st.samples.push(ReconvergenceSample {
                    disruption_slot: d,
                    slots: Some(n),
                });
            }
        }
    }

    /// A slot with the reader dark: no beacon goes out (the held one stays
    /// pending), the carrier is off so tags harvest nothing, and the
    /// reader's slot counter freezes together with the tags' local
    /// counters — exactly what a duty-cycled reader looks like from the
    /// network's side.
    fn dark_step(&mut self, slot: u64) -> TruthOutcome {
        for tag in &mut self.tags {
            let report = tag.on_slot_dark();
            if self.recorder.is_enabled() {
                let tid = tag.tid();
                if report.browned_out {
                    self.recorder.record(slot, tid, EventKind::PowerCutoff);
                }
                if report.active {
                    for &kind in tag.mac().events() {
                        self.recorder.record(slot, tid, kind);
                    }
                }
            }
        }
        self.detector.push(SlotOutcome::Empty);
        self.stats.push(SlotOutcome::Empty);
        if self.keep_trajectory {
            self.trajectory
                .push((self.stats.non_empty_ratio(), self.stats.collision_ratio()));
        }
        if self.keep_outcomes {
            self.outcomes.push(TruthOutcome::Empty);
        }
        self.slots_run += 1;
        self.close_disruption_if_converged();
        TruthOutcome::Empty
    }

    /// Executes one slot; returns the ground-truth outcome.
    pub fn step(&mut self) -> TruthOutcome {
        let slot = self.slots_run;
        if self.scenario.is_some() {
            self.apply_scenario_events(slot);
            if self.scenario.as_ref().is_some_and(|st| slot < st.outage_until) {
                return self.dark_step(slot);
            }
        }
        // Effective slot-domain loss rates: a noise storm overrides the
        // configured channel for its window. The draw pattern is identical
        // either way, so an attached scenario never perturbs the random
        // streams outside its windows.
        let (dl_loss, ul_loss) = match &self.scenario {
            Some(st) if slot < st.burst_until => (st.burst_dl, st.burst_ul),
            _ => (self.config.dl_loss_prob, self.config.ul_loss_prob),
        };

        let beacon = match self.beacon.take() {
            Some(b) => b,
            None => self.reader.start(),
        };

        // Deliver the beacon (with per-tag loss) and collect transmitters.
        let mut transmitters: Vec<u8> = Vec::new();
        for tag in &mut self.tags {
            let delivered = !self.rng.chance(dl_loss);
            let report = tag.on_slot(delivered.then_some(beacon.cmd));
            if report.transmitted {
                transmitters.push(tag.tid());
            }
            if self.recorder.is_enabled() {
                let tid = tag.tid();
                if report.active && !delivered {
                    self.recorder.record(slot, tid, EventKind::BeaconLost);
                }
                if report.browned_out {
                    self.recorder.record(slot, tid, EventKind::PowerCutoff);
                }
                if report.activated {
                    self.recorder.record(slot, tid, EventKind::PowerOn);
                }
                if report.active {
                    // MAC transitions from this slot's callback (ACK/NACK
                    // feedback, migrations, settles). After a brownout the
                    // power-on reset's migration is what remains — correct,
                    // since it superseded the in-slot feedback.
                    for &kind in tag.mac().events() {
                        self.recorder.record(slot, tid, kind);
                    }
                }
            }
        }

        // Reader-side observation.
        let (obs, truth) = match transmitters.len() {
            0 => {
                self.recorder.note(EventKind::Empty);
                (SlotObservation::empty(), TruthOutcome::Empty)
            }
            1 => {
                let tid = transmitters[0];
                if self.rng.chance(ul_loss) {
                    // Abstract UL decode failure: the slot-level channel
                    // models it as a vanished packet, not a specific PHY
                    // stage, so the closest taxon is a missed preamble.
                    self.recorder.record(
                        slot,
                        tid,
                        EventKind::DecodeFail { reason: DecodeFailReason::NoPreamble },
                    );
                    (SlotObservation::empty(), TruthOutcome::Single(tid))
                } else {
                    if self.recorder.is_enabled() {
                        self.recorder.note(EventKind::Decoded);
                        let offset = self
                            .tags
                            .iter()
                            .find(|t| t.tid() == tid)
                            .map_or(0, |t| t.mac().offset() as u16);
                        self.recorder.record(slot, tid, EventKind::SlotClaimed { offset });
                    }
                    (SlotObservation::received(tid), TruthOutcome::Single(tid))
                }
            }
            _ => {
                let captured = if self.rng.chance(self.config.capture_prob) {
                    let i = self.rng.below(transmitters.len() as u64) as usize;
                    Some(transmitters[i])
                } else {
                    None
                };
                self.recorder.record(
                    slot,
                    NO_TAG,
                    EventKind::Collision {
                        transmitters: transmitters.len().min(u8::MAX as usize) as u8,
                    },
                );
                (
                    SlotObservation::collision(captured),
                    TruthOutcome::Collision(transmitters.clone()),
                )
            }
        };

        // Statistics on ground truth.
        let stat_outcome = match &truth {
            TruthOutcome::Empty => SlotOutcome::Empty,
            TruthOutcome::Single(t) => SlotOutcome::Received(*t),
            TruthOutcome::Collision(_) => SlotOutcome::Collision,
        };
        self.detector.push(stat_outcome);
        self.stats.push(stat_outcome);
        if self.keep_trajectory {
            self.trajectory
                .push((self.stats.non_empty_ratio(), self.stats.collision_ratio()));
        }
        if self.keep_outcomes {
            self.outcomes.push(truth.clone());
        }
        self.slots_run += 1;
        self.close_disruption_if_converged();

        self.beacon = Some(self.reader.end_slot(obs));
        truth
    }

    /// Runs `n` slots and summarizes.
    pub fn run(&mut self, n: u64) -> SimRun {
        for _ in 0..n {
            self.step();
        }
        self.summary()
    }

    /// Runs until convergence (or `cap` slots) and summarizes.
    pub fn run_until_converged(&mut self, cap: u64) -> SimRun {
        while self.detector.converged_at().is_none() && self.slots_run < cap {
            self.step();
        }
        self.summary()
    }

    /// Issues a RESET on the next beacon and restarts the detector/stats —
    /// the Fig. 15 experiment protocol.
    pub fn reset_network(&mut self) {
        if self.beacon.is_none() {
            // Nothing sent yet: open the network first.
            self.beacon = Some(self.reader.start());
        }
        self.reader.queue_reset();
        // Deliver the reset beacon immediately so the next step starts the
        // measured phase.
        let beacon = self.reader.end_slot(SlotObservation::empty());
        debug_assert!(beacon.cmd.reset);
        for tag in &mut self.tags {
            // RESET beacons are assumed robustly delivered (the reader can
            // repeat them; tags also reset on power-on).
            let _ = tag.on_slot(Some(beacon.cmd));
        }
        // The reset beacon opened a fresh slot 1 in which no tag transmits;
        // close it and hold the next beacon for the first measured slot.
        self.beacon = Some(self.reader.end_slot(SlotObservation::empty()));
        self.detector.reset();
        self.stats = SlotStats::new();
        self.slots_run = 0;
        self.trajectory.clear();
        self.outcomes.clear();
    }

    /// Snapshot of the run so far.
    pub fn summary(&self) -> SimRun {
        SimRun {
            slots: self.slots_run,
            converged_at: self.detector.converged_at(),
            non_empty_ratio: self.stats.avg_non_empty_ratio(),
            collision_ratio: self.stats.avg_collision_ratio(),
            trajectory: self.trajectory.clone(),
            outcomes: self.outcomes.clone(),
        }
    }

    /// Settled-tag schedules (for invariant checks): `(tid, schedule)` of
    /// every active tag currently in SETTLE, with offsets translated into
    /// *global* slot terms.
    ///
    /// Tags keep purely local counters whose origins differ (activation
    /// time, missed beacons), so two tags' local offsets are not directly
    /// comparable; a tag whose local counter lags the reader's by `d`
    /// slots fires at global slots `≡ a_local + d (mod p)`.
    pub fn settled_schedules(&self) -> Vec<(u8, Schedule)> {
        // The last closed slot: tags' local counters refer to it.
        let s_global = self.reader.current_slot().saturating_sub(1);
        self.tags
            .iter()
            .filter(|t| {
                t.lifecycle() == Lifecycle::Active
                    && t.mac().state() == arachnet_core::mac::MacState::Settle
            })
            .map(|t| {
                let period = t.mac().period();
                let p = u64::from(period.get());
                let local = t.mac().local_slot();
                let delta = s_global.saturating_sub(local);
                let global_offset = ((u64::from(t.mac().offset()) + delta) % p) as u32;
                (
                    t.tid(),
                    Schedule::new(period, global_offset).expect("valid offset"),
                )
            })
            .collect()
    }
}

/// Result of one recorded convergence trial (Fig. 15 protocol).
#[derive(Debug, Clone)]
pub struct ConvergenceTrial {
    /// Slot of first convergence, if reached within the cap.
    pub converged_at: Option<u64>,
    /// Flight-recorder snapshot of the measured phase (empty when the
    /// trial ran unrecorded).
    pub snapshot: RecorderSnapshot,
}

/// Convenience: measures first convergence time for a pattern with a given
/// seed, using the Fig. 15 protocol (RESET, then count slots until 32
/// consecutive non-collision slots).
pub fn first_convergence_time(pattern: &Pattern, seed: u64, cap: u64, ideal: bool) -> Option<u64> {
    first_convergence_trial(pattern, seed, cap, ideal, false).converged_at
}

/// [`first_convergence_time`] with an optional flight recorder attached for
/// the measured phase. Recording never alters the sim's random streams, so
/// the convergence result is identical with and without it.
pub fn first_convergence_trial(
    pattern: &Pattern,
    seed: u64,
    cap: u64,
    ideal: bool,
    record: bool,
) -> ConvergenceTrial {
    let config = if ideal {
        SlotSimConfig::ideal(pattern.clone(), seed)
    } else {
        SlotSimConfig::new(pattern.clone(), seed)
    };
    let mut sim = SlotSim::new(config);
    // Warm the network slightly, then reset — mirrors "following the
    // transmission of a RESET packet".
    sim.run(4);
    sim.reset_network();
    if record {
        sim.attach_recorder(Recorder::enabled(seed));
    }
    let converged_at = sim.run_until_converged(cap).converged_at;
    ConvergenceTrial {
        converged_at,
        snapshot: sim.take_recorder_snapshot(),
    }
}

/// Result of one scenario replay.
#[derive(Debug, Clone)]
pub struct ScenarioTrial {
    /// One re-convergence measurement per disruption origin (a `None`
    /// duration means the run hit the cap first).
    pub samples: Vec<ReconvergenceSample>,
    /// Slots executed.
    pub slots: u64,
    /// Flight-recorder snapshot (empty when the trial ran unrecorded).
    pub snapshot: RecorderSnapshot,
}

/// Replays a [`Scenario`] against a pattern and measures re-convergence:
/// the run continues past the scenario's horizon until every disruption's
/// measurement closes (32 consecutive non-collision slots) or `cap` slots
/// elapse. Deterministic per `(pattern, scenario, seed)`; recording never
/// alters the random streams.
pub fn run_scenario_trial(
    pattern: &Pattern,
    scenario: &Scenario,
    seed: u64,
    cap: u64,
    ideal: bool,
    record: bool,
) -> ScenarioTrial {
    let config = if ideal {
        SlotSimConfig::ideal(pattern.clone(), seed)
    } else {
        SlotSimConfig::new(pattern.clone(), seed)
    };
    let mut sim = SlotSim::with_scenario(config, scenario.clone());
    if record {
        sim.attach_recorder(Recorder::enabled(seed));
    }
    let horizon = scenario.horizon();
    while sim.slots_run() < cap && (sim.slots_run() <= horizon || sim.open_disruption().is_some())
    {
        sim.step();
    }
    let mut samples = sim.reconvergence_samples().to_vec();
    if let Some(d) = sim.open_disruption() {
        samples.push(ReconvergenceSample {
            disruption_slot: d,
            slots: None,
        });
    }
    ScenarioTrial {
        samples,
        slots: sim.slots_run(),
        snapshot: sim.take_recorder_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::slot::Period;

    fn small_pattern() -> Pattern {
        // Table 1's configuration as a pattern: p = {2, 4, 8, 8} on four
        // deployment tags.
        Pattern {
            name: "table1",
            tags: vec![
                (5, Period::new(2).unwrap()),
                (6, Period::new(4).unwrap()),
                (7, Period::new(8).unwrap()),
                (8, Period::new(8).unwrap()),
            ],
        }
    }

    #[test]
    fn ideal_small_network_converges() {
        let mut sim = SlotSim::new(SlotSimConfig::ideal(small_pattern(), 1));
        let run = sim.run_until_converged(5_000);
        assert!(run.converged_at.is_some(), "no convergence in 5000 slots");
    }

    #[test]
    fn convergence_is_deterministic_per_seed() {
        let a = first_convergence_time(&small_pattern(), 7, 5_000, true);
        let b = first_convergence_time(&small_pattern(), 7, 5_000, true);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn settled_schedules_are_conflict_free_after_convergence() {
        // The central protocol invariant (Lemma 1): once converged, no two
        // SETTLEd tags share a slot.
        for seed in 0..5 {
            let mut sim = SlotSim::new(SlotSimConfig::ideal(small_pattern(), seed));
            let run = sim.run_until_converged(5_000);
            assert!(run.converged_at.is_some(), "seed {seed}");
            let settled = sim.settled_schedules();
            for i in 0..settled.len() {
                for j in (i + 1)..settled.len() {
                    assert!(
                        !settled[i].1.conflicts_with(&settled[j].1),
                        "seed {seed}: tags {} and {} conflict",
                        settled[i].0,
                        settled[j].0
                    );
                }
            }
        }
    }

    #[test]
    fn converged_network_stays_collision_free_on_ideal_channel() {
        let mut sim = SlotSim::new(SlotSimConfig::ideal(small_pattern(), 3));
        sim.run_until_converged(5_000);
        // 500 more slots: not a single collision.
        for _ in 0..500 {
            let truth = sim.step();
            assert!(!matches!(truth, TruthOutcome::Collision(_)));
        }
    }

    #[test]
    fn table3_c1_converges_quickly() {
        // Low utilization: the paper's median is ~139 slots.
        let t = first_convergence_time(&Pattern::c1(), 11, 20_000, true);
        assert!(t.is_some());
        assert!(t.unwrap() < 2_000, "c1 took {t:?} slots");
    }

    #[test]
    fn higher_utilization_converges_slower() {
        // Fig. 15(a)'s headline trend, on medians over a few seeds.
        let median = |p: &Pattern| {
            let mut ts: Vec<u64> = (0..5)
                .map(|s| first_convergence_time(p, s, 200_000, true).unwrap_or(200_000))
                .collect();
            ts.sort_unstable();
            ts[2]
        };
        let low = median(&Pattern::c1());
        let high = median(&Pattern::c4());
        assert!(high > low, "expected c4 ({high}) slower than c1 ({low})");
    }

    #[test]
    fn long_run_c3_matches_fig16_statistics() {
        // Fig. 16: average non-empty ratio ≈ 0.812 (bound 0.84375),
        // collision ratio ≈ 0.056 over 10 000 slots.
        let mut sim = SlotSim::new(SlotSimConfig::new(Pattern::c3(), 42));
        let run = sim.run(10_000);
        assert!(
            run.non_empty_ratio > 0.70 && run.non_empty_ratio <= 0.84375 + 0.01,
            "non-empty {:.3}",
            run.non_empty_ratio
        );
        assert!(
            run.collision_ratio < 0.12,
            "collision {:.3}",
            run.collision_ratio
        );
    }

    #[test]
    fn beacon_loss_causes_fluctuations() {
        // With DL loss the windowed trajectory must dip below the bound at
        // least occasionally (Fig. 16's fluctuations).
        let mut lossy = SlotSim::new(SlotSimConfig {
            dl_loss_prob: 0.01,
            ..SlotSimConfig::new(Pattern::c3(), 5)
        });
        lossy.record_trajectory(true);
        let run = lossy.run(3_000);
        let min_ne = run.trajectory[500..]
            .iter()
            .map(|t| t.0)
            .fold(f64::MAX, f64::min);
        assert!(min_ne < 0.75, "no visible disruption: min {min_ne}");
    }

    #[test]
    fn cold_start_activates_tags_over_time() {
        let mut sim = SlotSim::new(SlotSimConfig {
            charged_start: false,
            ..SlotSimConfig::ideal(small_pattern(), 9)
        });
        let active_at = |sim: &SlotSim| {
            sim.tags()
                .iter()
                .filter(|t| t.lifecycle() == Lifecycle::Active)
                .count()
        };
        assert_eq!(active_at(&sim), 0);
        sim.run(120);
        assert!(
            active_at(&sim) >= 3,
            "tags failed to charge: {}",
            active_at(&sim)
        );
    }

    #[test]
    fn late_arrivals_integrate_without_disrupting_settled() {
        // Cold start (staggered activations by charge time) on the ideal
        // channel must still converge.
        let mut sim = SlotSim::new(SlotSimConfig {
            charged_start: false,
            ..SlotSimConfig::ideal(small_pattern(), 13)
        });
        let run = sim.run_until_converged(5_000);
        assert!(
            run.converged_at.is_some(),
            "late arrivals prevented convergence"
        );
    }

    #[test]
    fn reset_restarts_counters() {
        let mut sim = SlotSim::new(SlotSimConfig::ideal(small_pattern(), 15));
        sim.run(100);
        sim.reset_network();
        let run = sim.summary();
        assert_eq!(run.slots, 0);
        assert_eq!(run.converged_at, None);
        // Tags must be back in MIGRATE.
        for t in sim.tags() {
            assert!(!t.mac().is_integrated());
        }
    }

    #[test]
    fn recorder_does_not_perturb_the_sim() {
        // The determinism contract: attaching a recorder must not change a
        // single outcome (it draws no randomness and holds no sim state).
        let bare = first_convergence_time(&small_pattern(), 21, 5_000, true);
        let recorded = first_convergence_trial(&small_pattern(), 21, 5_000, true, true);
        assert_eq!(bare, recorded.converged_at);
        assert!(bare.is_some());
        // A converging contention run must show settles, and the totals
        // must be self-consistent.
        let snap = recorded.snapshot;
        assert!(snap.count_at(EventKind::Settled { offset: 0 }.index()) >= 1);
        assert!(snap.total() >= snap.events.len() as u64);
    }

    #[test]
    fn recorder_captures_migrate_settle_timeline() {
        let trial = first_convergence_trial(&small_pattern(), 3, 5_000, true, true);
        let settles: Vec<_> = trial
            .snapshot
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Settled { .. }))
            .collect();
        assert!(!settles.is_empty(), "no settle events recorded");
        // Events are stamped in nondecreasing slot order.
        let slots: Vec<u64> = trial.snapshot.events.iter().map(|e| e.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn outcomes_recording_works() {
        let mut sim = SlotSim::new(SlotSimConfig::ideal(small_pattern(), 17));
        sim.record_outcomes(true);
        sim.run(50);
        assert_eq!(sim.summary().outcomes.len(), 50);
    }

    #[test]
    fn empty_scenario_is_byte_identical_to_no_scenario() {
        let mut bare = SlotSim::new(SlotSimConfig::new(small_pattern(), 23));
        let mut with = SlotSim::with_scenario(SlotSimConfig::new(small_pattern(), 23), Scenario::empty());
        bare.record_outcomes(true);
        with.record_outcomes(true);
        let a = bare.run(500);
        let b = with.run(500);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.converged_at, b.converged_at);
    }

    #[test]
    fn departed_tag_frees_its_slot_and_rejoin_reconverges() {
        // Converge, evict tag 7 at slot 600, re-admit it at 700; both
        // disruptions must yield finite re-convergence times.
        let scenario = Scenario::builder()
            .leave(600, 7)
            .join(700, 7, Period::new(8).unwrap())
            .build()
            .unwrap();
        let trial = run_scenario_trial(&small_pattern(), &scenario, 31, 20_000, true, true);
        assert_eq!(trial.samples.len(), 2);
        assert_eq!(trial.samples[0].disruption_slot, 600);
        assert_eq!(trial.samples[1].disruption_slot, 700);
        for s in &trial.samples {
            assert!(s.slots.is_some(), "no re-convergence after {s:?}");
        }
        assert!(trial.snapshot.count_at(EventKind::TagDeparted.index()) >= 1);
        assert!(trial.snapshot.count_at(EventKind::TagJoined.index()) >= 1);
    }

    #[test]
    fn reader_outage_goes_dark_and_recovers() {
        let scenario = Scenario::builder().outage(200, 40).build().unwrap();
        let mut sim = SlotSim::with_scenario(
            SlotSimConfig::ideal(small_pattern(), 37),
            scenario.clone(),
        );
        sim.attach_recorder(Recorder::enabled(37));
        sim.record_outcomes(true);
        sim.run(200);
        // The reader's slot counter freezes for the whole dark window.
        let frozen = sim.reader().current_slot();
        sim.run(40);
        assert_eq!(sim.reader().current_slot(), frozen);
        let run = sim.run(160);
        assert_eq!(sim.reader().current_slot(), frozen + 160);
        // Every outage slot is ground-truth Empty (nobody hears a beacon).
        for (i, o) in run.outcomes[200..240].iter().enumerate() {
            assert_eq!(*o, TruthOutcome::Empty, "slot {}", 200 + i);
        }
        // Transmissions resume after the outage.
        assert!(
            run.outcomes[240..]
                .iter()
                .any(|o| matches!(o, TruthOutcome::Single(_))),
            "network never recovered"
        );
        let snap = sim.take_recorder_snapshot();
        assert!(snap.count_at(EventKind::ReaderOutage { slots: 0 }.index()) >= 1);
        // Re-convergence is measured from the outage *end*.
        let samples = sim.reconvergence_samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].disruption_slot, 240);
        assert!(samples[0].slots.is_some());
    }

    #[test]
    fn forced_brownout_resets_the_tag_and_network_reconverges() {
        let scenario = Scenario::builder().brownout(400, 5).build().unwrap();
        let trial = run_scenario_trial(&small_pattern(), &scenario, 41, 20_000, true, false);
        assert_eq!(trial.samples.len(), 1);
        assert!(trial.samples[0].slots.is_some(), "no re-convergence");
    }

    #[test]
    fn noise_burst_raises_losses_only_inside_its_window() {
        // A brutal storm on an otherwise ideal channel: collisions and
        // losses while it lasts, pristine again afterwards.
        let scenario = Scenario::builder()
            .noise_burst(300, 64, 0.5, 0.5)
            .build()
            .unwrap();
        let mut sim = SlotSim::with_scenario(SlotSimConfig::ideal(small_pattern(), 43), scenario);
        sim.record_outcomes(true);
        sim.run(300);
        let before = sim.summary().outcomes.len();
        assert_eq!(before, 300);
        let run = sim.run(1_000);
        let stormy = &run.outcomes[300..364];
        assert!(
            stormy.iter().any(|o| matches!(o, TruthOutcome::Collision(_))),
            "storm caused no disruption"
        );
        // After re-convergence the tail is collision-free again (ideal
        // channel outside the window).
        let samples = sim.reconvergence_samples().to_vec();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].disruption_slot, 364);
        assert!(samples[0].slots.is_some());
    }

    #[test]
    fn scenario_trials_are_deterministic_per_seed() {
        let scenario = Scenario::builder()
            .leave(500, 6)
            .outage(800, 32)
            .join(900, 6, Period::new(4).unwrap())
            .build()
            .unwrap();
        let a = run_scenario_trial(&small_pattern(), &scenario, 47, 30_000, false, false);
        let b = run_scenario_trial(&small_pattern(), &scenario, 47, 30_000, false, true);
        assert_eq!(a.samples, b.samples, "recording perturbed the trial");
        assert_eq!(a.slots, b.slots);
    }
}
