//! The vanilla centralized slot allocation (Sec. 5.2) under uncertainty.
//!
//! The paper's strawman: the reader computes a perfect schedule offline
//! (`arachnet_core::slot::allocate`) and each tag blindly transmits when
//! `s_i mod p_i == a_i` — no feedback, no migration. It works exactly
//! until reality intrudes:
//!
//! * a missed beacon freezes the tag's counter, shifting its effective
//!   offset by one (Eq. 3 / Fig. 8) — it may land on a peer's slot and
//!   collide *forever*;
//! * a late-arriving tag starts its counter at a random phase relative to
//!   the others, scrambling its assigned offset entirely.
//!
//! This simulator quantifies the decay, the motivating comparison for the
//! distributed protocol of Secs. 5.3–5.6.

use arachnet_core::rng::TagRng;
use arachnet_core::slot::{allocate, Period};

use crate::patterns::Pattern;

/// Configuration.
#[derive(Debug, Clone)]
pub struct VanillaConfig {
    /// The workload.
    pub pattern: Pattern,
    /// Per-tag per-beacon loss probability.
    pub dl_loss_prob: f64,
    /// If true, tags start with uniformly random counter phases (the
    /// late-arrival condition); if false, perfectly synchronized.
    pub staggered_start: bool,
    /// Random seed.
    pub seed: u64,
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct VanillaRun {
    /// Slots simulated.
    pub slots: u64,
    /// Ground-truth collision ratio over the whole run.
    pub collision_ratio: f64,
    /// Collision ratio over the final quarter of the run — shows whether
    /// the system recovers (it cannot) or keeps degrading.
    pub tail_collision_ratio: f64,
    /// Non-empty ratio over the whole run.
    pub non_empty_ratio: f64,
}

/// Runs the vanilla scheme for `slots` slots.
pub fn run_vanilla(config: &VanillaConfig, slots: u64) -> VanillaRun {
    let periods: Vec<Period> = config.pattern.tags.iter().map(|&(_, p)| p).collect();
    let offsets = allocate(&periods).expect("Table 3 patterns satisfy Eq. 1");
    let mut rng = TagRng::new(config.seed);
    // Per-tag local counter.
    let mut counters: Vec<u64> = periods
        .iter()
        .map(|p| {
            if config.staggered_start {
                rng.below(u64::from(p.get()))
            } else {
                0
            }
        })
        .collect();
    let mut collisions = 0u64;
    let mut tail_collisions = 0u64;
    let mut non_empty = 0u64;
    let tail_start = slots - slots / 4;
    for s in 0..slots {
        // Beacon delivery: lost beacons freeze the local counter.
        let mut tx = 0u32;
        for (i, p) in periods.iter().enumerate() {
            if !rng.chance(config.dl_loss_prob) {
                counters[i] = counters[i].wrapping_add(1);
            }
            if counters[i] % u64::from(p.get()) == u64::from(offsets[i]) {
                tx += 1;
            }
        }
        if tx > 0 {
            non_empty += 1;
        }
        if tx > 1 {
            collisions += 1;
            if s >= tail_start {
                tail_collisions += 1;
            }
        }
    }
    VanillaRun {
        slots,
        collision_ratio: collisions as f64 / slots as f64,
        tail_collision_ratio: tail_collisions as f64 / (slots - tail_start) as f64,
        non_empty_ratio: non_empty as f64 / slots as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_world_is_collision_free() {
        // Synchronized counters, no loss: the offline schedule holds.
        let run = run_vanilla(
            &VanillaConfig {
                pattern: Pattern::c3(),
                dl_loss_prob: 0.0,
                staggered_start: false,
                seed: 1,
            },
            5_000,
        );
        assert_eq!(run.collision_ratio, 0.0);
        assert!((run.non_empty_ratio - 0.84375).abs() < 0.01);
    }

    #[test]
    fn beacon_loss_accumulates_permanent_collisions() {
        // With even mild loss, desynchronization accumulates and the tail
        // is as bad as (or worse than) the whole-run average: no recovery.
        let run = run_vanilla(
            &VanillaConfig {
                pattern: Pattern::c3(),
                dl_loss_prob: 0.002,
                staggered_start: false,
                seed: 2,
            },
            20_000,
        );
        assert!(
            run.collision_ratio > 0.05,
            "collisions {:.3}",
            run.collision_ratio
        );
        assert!(
            run.tail_collision_ratio > run.collision_ratio * 0.5,
            "vanilla should not self-heal: tail {:.3} vs avg {:.3}",
            run.tail_collision_ratio,
            run.collision_ratio
        );
    }

    #[test]
    fn staggered_start_breaks_the_schedule_immediately() {
        let run = run_vanilla(
            &VanillaConfig {
                pattern: Pattern::c3(),
                dl_loss_prob: 0.0,
                staggered_start: true,
                seed: 3,
            },
            5_000,
        );
        assert!(
            run.collision_ratio > 0.05,
            "collisions {:.3}",
            run.collision_ratio
        );
        // And it never improves: the phases are frozen forever.
        assert!((run.tail_collision_ratio - run.collision_ratio).abs() < 0.05);
    }

    #[test]
    fn distributed_protocol_beats_vanilla_under_identical_loss() {
        // The motivating comparison, run head-to-head at 0.5 % DL loss.
        let vanilla = run_vanilla(
            &VanillaConfig {
                pattern: Pattern::c3(),
                dl_loss_prob: 0.005,
                staggered_start: false,
                seed: 4,
            },
            10_000,
        );
        let mut distributed = crate::slotsim::SlotSim::new(crate::slotsim::SlotSimConfig {
            dl_loss_prob: 0.005,
            ul_loss_prob: 0.0,
            ..crate::slotsim::SlotSimConfig::new(Pattern::c3(), 4)
        });
        let d = distributed.run(10_000);
        assert!(
            d.collision_ratio < vanilla.tail_collision_ratio,
            "distributed {:.3} should beat vanilla tail {:.3}",
            d.collision_ratio,
            vanilla.tail_collision_ratio
        );
    }
}
