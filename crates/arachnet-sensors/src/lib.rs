//! # arachnet-sensors — the strain-measurement case study (Sec. 6.5)
//!
//! Each tag carries a strain module: a metal-foil gauge bonded to the
//! panel, a full Wheatstone bridge detecting the gauge's resistance change,
//! a bridge amplifier (the TI SBOA247 circuit adapted to the tag's 1.8 V
//! supply), and the MSP430's 10-bit ADC. The case study bends a metal
//! sheet by displacing one end ±10 cm and reads a clearly correlated
//! voltage (Fig. 17b).
//!
//! The module chain here is physical end-to-end: displacement → surface
//! strain (cantilever bending) → ΔR/R (gauge factor) → differential bridge
//! voltage → amplified single-ended voltage → ADC code → the 12-bit UL
//! payload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Metal-foil gauge factor (typical constantan foil).
pub const GAUGE_FACTOR: f64 = 2.1;

/// Nominal gauge resistance (Ω).
pub const GAUGE_OHM: f64 = 350.0;

/// Sensor-module supply (V) — "adapts the supply voltage to 1.8 V".
pub const SUPPLY_V: f64 = 1.8;

/// Power draw of ADC + pre-amplifier while sampling (W) — "around 1 mW in
/// our case", which is why the tag samples at most once per slot.
pub const SAMPLING_POWER_W: f64 = 1.0e-3;

/// A strain gauge bonded to a bending element.
#[derive(Debug, Clone, Copy)]
pub struct StrainGauge {
    /// Gauge factor (ΔR/R per unit strain).
    pub gauge_factor: f64,
    /// Unstrained resistance (Ω).
    pub nominal_ohm: f64,
}

impl Default for StrainGauge {
    fn default() -> Self {
        Self {
            gauge_factor: GAUGE_FACTOR,
            nominal_ohm: GAUGE_OHM,
        }
    }
}

impl StrainGauge {
    /// Resistance under a given strain (ε, dimensionless).
    pub fn resistance(&self, strain: f64) -> f64 {
        self.nominal_ohm * (1.0 + self.gauge_factor * strain)
    }
}

/// The bent metal sheet of the case study, modelled as a cantilever with
/// the gauge bonded near the clamped end.
#[derive(Debug, Clone, Copy)]
pub struct Cantilever {
    /// Free length (m) — the displaced span.
    pub length_m: f64,
    /// Sheet thickness (m).
    pub thickness_m: f64,
}

impl Default for Cantilever {
    fn default() -> Self {
        // A ~60 cm test sheet of 1.5 mm steel.
        Self {
            length_m: 0.6,
            thickness_m: 1.5e-3,
        }
    }
}

impl Cantilever {
    /// Surface strain at the clamped end for a tip displacement `d` (m):
    /// ε = 3·t·d / (2·L²) (Euler–Bernoulli tip-loaded cantilever).
    pub fn strain_at_root(&self, tip_displacement_m: f64) -> f64 {
        3.0 * self.thickness_m * tip_displacement_m / (2.0 * self.length_m * self.length_m)
    }
}

/// A full Wheatstone bridge with one active gauge per arm pair (two active
/// + two dummy in the classic half-active full-bridge used by SBOA247).
#[derive(Debug, Clone, Copy)]
pub struct WheatstoneBridge {
    /// The active gauge.
    pub gauge: StrainGauge,
    /// Excitation voltage (V).
    pub excitation_v: f64,
    /// Number of active arms (1, 2 or 4) — multiplies sensitivity.
    pub active_arms: u8,
}

impl Default for WheatstoneBridge {
    fn default() -> Self {
        Self {
            gauge: StrainGauge::default(),
            excitation_v: SUPPLY_V,
            active_arms: 2,
        }
    }
}

impl WheatstoneBridge {
    /// Differential output voltage for a strain (small-signal formula
    /// `V_out = n/4 · GF · ε · V_exc`).
    pub fn output(&self, strain: f64) -> f64 {
        f64::from(self.active_arms) / 4.0 * self.gauge.gauge_factor * strain * self.excitation_v
    }
}

/// The bridge amplifier: differential gain plus mid-rail offset so that
/// zero strain reads mid-scale on the single-supply ADC.
#[derive(Debug, Clone, Copy)]
pub struct BridgeAmplifier {
    /// Differential gain.
    pub gain: f64,
    /// Output offset (V) at zero differential input.
    pub offset_v: f64,
}

impl Default for BridgeAmplifier {
    fn default() -> Self {
        Self {
            gain: 390.0,
            offset_v: SUPPLY_V / 2.0,
        }
    }
}

impl BridgeAmplifier {
    /// Output voltage, clamped to the single-supply rails.
    pub fn output(&self, differential_v: f64) -> f64 {
        (self.offset_v + self.gain * differential_v).clamp(0.0, SUPPLY_V)
    }
}

/// The MSP430's SAR ADC.
#[derive(Debug, Clone, Copy)]
pub struct Adc {
    /// Resolution in bits (MSP430G2553: 10).
    pub bits: u8,
    /// Full-scale reference (V).
    pub vref: f64,
}

impl Default for Adc {
    fn default() -> Self {
        Self {
            bits: 10,
            vref: SUPPLY_V,
        }
    }
}

impl Adc {
    /// Converts a voltage to a code.
    pub fn sample(&self, v: f64) -> u16 {
        let max = (1u32 << self.bits) - 1;
        let code = (v.clamp(0.0, self.vref) / self.vref * max as f64).round() as u32;
        code.min(max) as u16
    }

    /// Converts a code back to the voltage it represents.
    pub fn to_voltage(&self, code: u16) -> f64 {
        let max = (1u32 << self.bits) - 1;
        f64::from(code.min(max as u16)) / max as f64 * self.vref
    }

    /// LSB size in volts.
    pub fn lsb(&self) -> f64 {
        self.vref / ((1u32 << self.bits) - 1) as f64
    }
}

/// The full sensing chain of one tag.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrainSensor {
    /// The bending element.
    pub cantilever: Cantilever,
    /// The bridge.
    pub bridge: WheatstoneBridge,
    /// The amplifier.
    pub amplifier: BridgeAmplifier,
    /// The converter.
    pub adc: Adc,
}

impl StrainSensor {
    /// Analog output voltage for a tip displacement (m).
    pub fn voltage(&self, displacement_m: f64) -> f64 {
        let strain = self.cantilever.strain_at_root(displacement_m);
        self.amplifier.output(self.bridge.output(strain))
    }

    /// ADC code for a tip displacement (m) — what goes into the UL payload.
    pub fn sample(&self, displacement_m: f64) -> u16 {
        self.adc.sample(self.voltage(displacement_m))
    }

    /// A per-tag variant with gain spread (the three gauges of Fig. 17b
    /// read slightly different slopes).
    pub fn with_gain_factor(mut self, factor: f64) -> Self {
        self.amplifier.gain *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_resistance_follows_strain() {
        let g = StrainGauge::default();
        assert_eq!(g.resistance(0.0), 350.0);
        let r = g.resistance(1e-3); // 1000 µε
        assert!((r - 350.0 * (1.0 + 2.1e-3)).abs() < 1e-9);
        assert!(g.resistance(-1e-3) < 350.0);
    }

    #[test]
    fn cantilever_strain_is_linear_and_signed() {
        let c = Cantilever::default();
        let e1 = c.strain_at_root(0.05);
        let e2 = c.strain_at_root(0.10);
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
        assert!(c.strain_at_root(-0.05) < 0.0);
        // 10 cm displacement on the default sheet: ε = 3·1.5e-3·0.1/(2·0.36)
        // = 625 µε — a realistic bending strain.
        assert!((c.strain_at_root(0.10) - 625e-6).abs() < 1e-9);
    }

    #[test]
    fn bridge_output_scales_with_arms() {
        let mut b = WheatstoneBridge::default();
        let v2 = b.output(1e-3);
        b.active_arms = 4;
        let v4 = b.output(1e-3);
        assert!((v4 - 2.0 * v2).abs() < 1e-15);
    }

    #[test]
    fn bridge_microvolt_scale_needs_amplifier() {
        // 625 µε on a 2-arm 1.8 V bridge: ~1.2 mV — far below ADC LSB
        // (1.76 mV), which is exactly why the pre-amplifier exists.
        let b = WheatstoneBridge::default();
        let v = b.output(625e-6);
        assert!(
            v < Adc::default().lsb(),
            "bridge {v} vs LSB {}",
            Adc::default().lsb()
        );
    }

    #[test]
    fn amplifier_clamps_to_rails() {
        let a = BridgeAmplifier::default();
        assert_eq!(a.output(1.0), SUPPLY_V);
        assert_eq!(a.output(-1.0), 0.0);
        assert!((a.output(0.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn adc_codes_roundtrip_within_lsb() {
        let adc = Adc::default();
        for v in [0.0, 0.45, 0.9, 1.35, 1.8] {
            let code = adc.sample(v);
            assert!((adc.to_voltage(code) - v).abs() <= adc.lsb() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn adc_clamps_out_of_range() {
        let adc = Adc::default();
        assert_eq!(adc.sample(-1.0), 0);
        assert_eq!(adc.sample(5.0), 1023);
    }

    #[test]
    fn payload_fits_12_bits() {
        let s = StrainSensor::default();
        for d in [-0.10, -0.05, 0.0, 0.05, 0.10] {
            assert!(s.sample(d) < 1 << 12);
        }
    }

    #[test]
    fn fig17b_voltage_displacement_correlation() {
        // The case-study result: a clear monotone relationship over the
        // −10…+10 cm sweep, spanning a usable fraction of the 0–1.5 V plot
        // range.
        let s = StrainSensor::default();
        let mut last = -1.0;
        for step in 0..=20 {
            let d = -0.10 + 0.01 * f64::from(step);
            let v = s.voltage(d);
            assert!(v > last, "non-monotone at {d}");
            assert!((0.0..=1.8).contains(&v));
            last = v;
        }
        let span = s.voltage(0.10) - s.voltage(-0.10);
        assert!(span > 0.5, "span {span} too small to plot");
        assert!(s.voltage(0.10) <= 1.5, "stays on Fig. 17(b)'s axis");
    }

    #[test]
    fn three_gauges_have_distinct_slopes() {
        // Fig. 17(b) shows tags A/B/C with slightly different responses.
        let a = StrainSensor::default().with_gain_factor(1.0);
        let b = StrainSensor::default().with_gain_factor(0.85);
        let c = StrainSensor::default().with_gain_factor(1.15);
        let at = |s: &StrainSensor| s.voltage(0.08) - s.voltage(-0.08);
        assert!(at(&c) > at(&a));
        assert!(at(&a) > at(&b));
    }

    #[test]
    fn sampling_power_motivates_duty_cycling() {
        // 1 mW sampling vs 51 µW TX budget: >19× — one sample per slot max.
        let ratio = SAMPLING_POWER_W / 51e-6;
        assert!(ratio > 19.0, "sampling/TX power ratio {ratio} too small");
    }
}
