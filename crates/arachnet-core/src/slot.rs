//! Slot arithmetic and the vanilla centralized allocator (Sec. 5.2).
//!
//! Transmission periods are powers of two, `P = {2^k}`, so any two tags
//! `i, j` collide iff their offsets agree modulo the *smaller* of the two
//! periods: `a_i ≡ a_j (mod min(p_i, p_j))`. That single congruence drives
//! the whole protocol: the vanilla allocator packs offsets greedily, the
//! reader's future-collision check (Sec. 5.6) asks whether a viable offset
//! exists, and the Markov analysis enumerates it.

/// A transmission period — constrained to powers of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Period(u32);

impl Period {
    /// Validates that `p` is a power of two.
    pub fn new(p: u32) -> Option<Self> {
        if p.is_power_of_two() {
            Some(Self(p))
        } else {
            None
        }
    }

    /// Period value in slots.
    pub fn get(&self) -> u32 {
        self.0
    }

    /// Per-tag channel share `1/p`.
    pub fn rate(&self) -> f64 {
        1.0 / f64::from(self.0)
    }
}

/// One tag's static schedule: its period and slot offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Transmission period in slots.
    pub period: Period,
    /// Offset within the period, `0 ≤ offset < period`.
    pub offset: u32,
}

impl Schedule {
    /// Builds a schedule, checking the offset range.
    pub fn new(period: Period, offset: u32) -> Option<Self> {
        if offset < period.get() {
            Some(Self { period, offset })
        } else {
            None
        }
    }

    /// Whether this schedule transmits in global slot `s` (Eq. 2).
    pub fn fires_at(&self, s: u64) -> bool {
        s % u64::from(self.period.get()) == u64::from(self.offset)
    }

    /// Whether two schedules ever transmit in the same slot.
    ///
    /// With power-of-two periods this is the congruence
    /// `a_i ≡ a_j (mod min(p_i, p_j))`.
    pub fn conflicts_with(&self, other: &Schedule) -> bool {
        let m = self.period.get().min(other.period.get());
        self.offset % m == other.offset % m
    }
}

/// Aggregate slot utilization `U = Σ 1/p_i` (Eq. 1).
pub fn utilization(periods: &[Period]) -> f64 {
    periods.iter().map(Period::rate).sum()
}

/// Whether a viable (conflict-free) offset exists for a tag with period `p`
/// given the already-fixed schedules. Used by the reader's future-collision
/// avoidance (Sec. 5.6).
pub fn viable_offset(p: Period, fixed: &[Schedule]) -> Option<u32> {
    (0..p.get()).find(|&a| {
        let cand = Schedule {
            period: p,
            offset: a,
        };
        fixed.iter().all(|s| !cand.conflicts_with(s))
    })
}

/// All viable offsets for a tag with period `p` given fixed schedules.
pub fn viable_offsets(p: Period, fixed: &[Schedule]) -> Vec<u32> {
    (0..p.get())
        .filter(|&a| {
            let cand = Schedule {
                period: p,
                offset: a,
            };
            fixed.iter().all(|s| !cand.conflicts_with(s))
        })
        .collect()
}

/// Error from the vanilla allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// `Σ 1/p_i > 1` — the demand exceeds channel capacity (violates Eq. 1).
    OverCapacity,
    /// Capacity is sufficient but the greedy order failed (cannot happen for
    /// sorted power-of-two demands; kept for API honesty).
    NoOffset {
        /// Index (into the input array) of the unplaceable tag.
        tag: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OverCapacity => write!(f, "slot utilization exceeds 1"),
            AllocError::NoOffset { tag } => write!(f, "no conflict-free offset for tag {tag}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The vanilla centralized slot allocator of Sec. 5.2: given every tag's
/// period, assign offsets so that no two tags ever share a slot.
///
/// Tags are placed shortest-period first (they are the most constrained);
/// with power-of-two periods and `U ≤ 1` this greedy order always succeeds —
/// the same argument as the dyadic-interval packing used in Table 1.
///
/// Returns offsets in the order of the input periods.
pub fn allocate(periods: &[Period]) -> Result<Vec<u32>, AllocError> {
    if utilization(periods) > 1.0 + 1e-12 {
        return Err(AllocError::OverCapacity);
    }
    // Sort indices by period ascending, stable so equal periods keep input
    // order (matches Table 1's layout).
    let mut order: Vec<usize> = (0..periods.len()).collect();
    order.sort_by_key(|&i| periods[i].get());

    let mut fixed: Vec<Schedule> = Vec::with_capacity(periods.len());
    let mut offsets = vec![0u32; periods.len()];
    for &i in &order {
        let p = periods[i];
        match viable_offset(p, &fixed) {
            Some(a) => {
                offsets[i] = a;
                fixed.push(Schedule {
                    period: p,
                    offset: a,
                });
            }
            None => return Err(AllocError::NoOffset { tag: i }),
        }
    }
    Ok(offsets)
}

/// Renders the first `slots` slots of a schedule set as occupancy rows —
/// the format of Table 1. Row `i` holds `true` where tag `i` transmits.
pub fn occupancy_table(schedules: &[Schedule], slots: u64) -> Vec<Vec<bool>> {
    schedules
        .iter()
        .map(|sch| (0..slots).map(|s| sch.fires_at(s)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> Period {
        Period::new(v).unwrap()
    }

    #[test]
    fn period_rejects_non_powers() {
        assert!(Period::new(3).is_none());
        assert!(Period::new(0).is_none());
        assert!(Period::new(6).is_none());
        assert!(Period::new(1).is_some());
        assert!(Period::new(32).is_some());
    }

    #[test]
    fn schedule_offset_range_checked() {
        assert!(Schedule::new(p(4), 3).is_some());
        assert!(Schedule::new(p(4), 4).is_none());
    }

    #[test]
    fn fires_at_matches_modular_rule() {
        let s = Schedule::new(p(8), 3).unwrap();
        let fired: Vec<u64> = (0..32).filter(|&t| s.fires_at(t)).collect();
        assert_eq!(fired, vec![3, 11, 19, 27]);
    }

    #[test]
    fn conflict_rule_same_period() {
        let a = Schedule::new(p(4), 1).unwrap();
        let b = Schedule::new(p(4), 1).unwrap();
        let c = Schedule::new(p(4), 2).unwrap();
        assert!(a.conflicts_with(&b));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn conflict_rule_nested_periods() {
        // p=2,a=0 occupies all even slots; p=8,a=4 is even → conflict.
        let fast = Schedule::new(p(2), 0).unwrap();
        let slow_even = Schedule::new(p(8), 4).unwrap();
        let slow_odd = Schedule::new(p(8), 5).unwrap();
        assert!(fast.conflicts_with(&slow_even));
        assert!(!fast.conflicts_with(&slow_odd));
        // Symmetry.
        assert!(slow_even.conflicts_with(&fast));
    }

    #[test]
    fn conflict_rule_agrees_with_brute_force() {
        for pa in [1u32, 2, 4, 8] {
            for pb in [1u32, 2, 4, 8] {
                for aa in 0..pa {
                    for ab in 0..pb {
                        let sa = Schedule::new(p(pa), aa).unwrap();
                        let sb = Schedule::new(p(pb), ab).unwrap();
                        let brute = (0..64u64).any(|s| sa.fires_at(s) && sb.fires_at(s));
                        assert_eq!(
                            sa.conflicts_with(&sb),
                            brute,
                            "pa={pa} pb={pb} aa={aa} ab={ab}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn utilization_sums_rates() {
        let u = utilization(&[p(2), p(4), p(8), p(8)]);
        assert!((u - (0.5 + 0.25 + 0.125 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn table1_configuration_allocates_perfectly() {
        // Table 1: p = {2, 4, 8, 8} fills every slot exactly once.
        let periods = [p(2), p(4), p(8), p(8)];
        let offsets = allocate(&periods).unwrap();
        let schedules: Vec<Schedule> = periods
            .iter()
            .zip(&offsets)
            .map(|(&pp, &a)| Schedule::new(pp, a).unwrap())
            .collect();
        // Every slot 0..8 has exactly one transmitter.
        for s in 0..8u64 {
            let count = schedules.iter().filter(|sc| sc.fires_at(s)).count();
            assert_eq!(count, 1, "slot {s}");
        }
    }

    #[test]
    fn paper_table1_offsets_are_valid() {
        // The paper's example: a_A=0 (p=2), a_B=1 (p=4), a_C=7 (p=8), a_D=3 (p=8).
        let schedules = [
            Schedule::new(p(2), 0).unwrap(),
            Schedule::new(p(4), 1).unwrap(),
            Schedule::new(p(8), 7).unwrap(),
            Schedule::new(p(8), 3).unwrap(),
        ];
        for i in 0..schedules.len() {
            for j in (i + 1)..schedules.len() {
                assert!(!schedules[i].conflicts_with(&schedules[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn allocate_rejects_over_capacity() {
        assert_eq!(allocate(&[p(1), p(2)]), Err(AllocError::OverCapacity));
        assert_eq!(allocate(&[p(2), p(2), p(2)]), Err(AllocError::OverCapacity));
    }

    #[test]
    fn allocate_handles_full_capacity_many_tags() {
        // 16 tags of period 16 exactly fill the channel.
        let periods: Vec<Period> = (0..16).map(|_| p(16)).collect();
        let offsets = allocate(&periods).unwrap();
        let mut seen = [false; 16];
        for &a in &offsets {
            assert!(!seen[a as usize], "duplicate offset {a}");
            seen[a as usize] = true;
        }
    }

    #[test]
    fn allocate_result_is_conflict_free_for_random_mixes() {
        let mixes: Vec<Vec<u32>> = vec![
            vec![4, 4, 8, 8, 16, 16, 16, 32],
            vec![2, 8, 8, 16, 32, 32],
            vec![4, 4, 4, 16, 16, 32, 32, 32, 32],
            vec![8; 8],
        ];
        for mix in mixes {
            let periods: Vec<Period> = mix.iter().map(|&v| p(v)).collect();
            let offsets = allocate(&periods).unwrap();
            let schedules: Vec<Schedule> = periods
                .iter()
                .zip(&offsets)
                .map(|(&pp, &a)| Schedule::new(pp, a).unwrap())
                .collect();
            for i in 0..schedules.len() {
                for j in (i + 1)..schedules.len() {
                    assert!(
                        !schedules[i].conflicts_with(&schedules[j]),
                        "{mix:?}: {i} vs {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn viable_offset_none_when_saturated() {
        // Sec. 5.6 example: A and B have period 4 at offsets 2 and 3; a new
        // tag with period 2 can never fit (offsets 0 and 1 collide with A/B
        // resp. — 2 mod 2 = 0, 3 mod 2 = 1).
        let fixed = [
            Schedule::new(p(4), 2).unwrap(),
            Schedule::new(p(4), 3).unwrap(),
        ];
        assert_eq!(viable_offset(p(2), &fixed), None);
        // But after evicting A (offset 2), offset 0 works.
        assert_eq!(viable_offset(p(2), &fixed[1..]), Some(0));
    }

    #[test]
    fn viable_offsets_lists_all() {
        let fixed = [Schedule::new(p(2), 0).unwrap()];
        // A period-8 tag can use any odd offset.
        assert_eq!(viable_offsets(p(8), &fixed), vec![1, 3, 5, 7]);
    }

    #[test]
    fn occupancy_table_matches_paper_table1() {
        let schedules = [
            Schedule::new(p(2), 0).unwrap(),
            Schedule::new(p(4), 1).unwrap(),
            Schedule::new(p(8), 7).unwrap(),
            Schedule::new(p(8), 3).unwrap(),
        ];
        let table = occupancy_table(&schedules, 8);
        let render: Vec<String> = table
            .iter()
            .map(|row| row.iter().map(|&t| if t { 'T' } else { '.' }).collect())
            .collect();
        assert_eq!(render[0], "T.T.T.T.");
        assert_eq!(render[1], ".T...T..");
        assert_eq!(render[2], ".......T");
        assert_eq!(render[3], "...T....");
    }
}
