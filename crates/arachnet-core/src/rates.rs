//! Bit-rate and timing constants (Secs. 4.1, 6.1, 6.3).
//!
//! Every raw-bit interval on the tag is derived from the 12 kHz low-frequency
//! MCU clock through a divider, so the legal bit rates form the geometric
//! ladder 93.75 → 3000 bps (UL) and 125 → 2000 bps (DL). The defaults are the
//! paper's conservative choices: 375 bps up, 250 bps down.

/// Tag MCU low-frequency clock (Hz) — Sec. 3.2.
pub const MCU_CLOCK_HZ: f64 = 12_000.0;

/// Carrier / system resonant frequency (Hz) — Sec. 2.2.
pub const CARRIER_HZ: f64 = 90_000.0;

/// Reader DAQ sampling rate (Hz) — Sec. 6.1.
pub const READER_SAMPLE_RATE_HZ: f64 = 500_000.0;

/// Default UL raw bit rate (bps).
pub const DEFAULT_UL_BPS: f64 = 375.0;

/// Default DL raw bit rate (bps).
pub const DEFAULT_DL_BPS: f64 = 250.0;

/// Default slot duration (seconds) — Sec. 6.4 ("empirically set to 1 s").
pub const SLOT_DURATION_S: f64 = 1.0;

/// Tag reply guard time after a decoded beacon (seconds) — Fig. 14a
/// ("politely waits for 20 ms").
pub const TAG_REPLY_GUARD_S: f64 = 0.020;

/// UL clock dividers evaluated in Fig. 12 (12 kHz / divider = raw bps).
pub const UL_DIVIDERS: [u32; 6] = [128, 64, 32, 16, 8, 4];

/// DL raw bit rates evaluated in Fig. 13 (bps).
pub const DL_RATES_BPS: [f64; 5] = [125.0, 250.0, 500.0, 1000.0, 2000.0];

/// A raw bit rate derived from the MCU clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitRate {
    /// Raw bits per second.
    pub bps: f64,
}

impl BitRate {
    /// Rate from an MCU clock divider.
    pub fn from_divider(divider: u32) -> Self {
        assert!(divider > 0);
        Self {
            bps: MCU_CLOCK_HZ / f64::from(divider),
        }
    }

    /// Rate from bps directly.
    pub fn from_bps(bps: f64) -> Self {
        assert!(bps > 0.0);
        Self { bps }
    }

    /// Raw-bit interval in seconds.
    pub fn raw_interval_s(&self) -> f64 {
        1.0 / self.bps
    }

    /// MCU timer ticks per raw interval at the 12 kHz clock.
    pub fn ticks_per_raw(&self) -> f64 {
        MCU_CLOCK_HZ / self.bps
    }

    /// On-air duration of an FM0-coded message of `data_bits` bits
    /// (2 raw bits per data bit).
    pub fn fm0_duration_s(&self, data_bits: usize) -> f64 {
        2.0 * data_bits as f64 * self.raw_interval_s()
    }

    /// On-air duration of a PIE-coded message with the given bit counts.
    pub fn pie_duration_s(&self, zeros: usize, ones: usize) -> f64 {
        crate::pie::raw_len(zeros, ones) as f64 * self.raw_interval_s()
    }
}

/// The six UL rates of Fig. 12 in ascending order.
pub fn ul_rates() -> Vec<BitRate> {
    let mut v: Vec<BitRate> = UL_DIVIDERS
        .iter()
        .map(|&d| BitRate::from_divider(d))
        .collect();
    v.sort_by(|a, b| a.bps.total_cmp(&b.bps));
    v
}

/// The five DL rates of Fig. 13 in ascending order.
pub fn dl_rates() -> Vec<BitRate> {
    DL_RATES_BPS.iter().map(|&b| BitRate::from_bps(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::UL_PACKET_BITS;

    #[test]
    fn dividers_produce_paper_rates() {
        let rates = ul_rates();
        let expected = [93.75, 187.5, 375.0, 750.0, 1500.0, 3000.0];
        for (r, e) in rates.iter().zip(expected) {
            assert!((r.bps - e).abs() < 1e-9, "{} != {e}", r.bps);
        }
    }

    #[test]
    fn default_ul_rate_is_divider_32() {
        let r = BitRate::from_divider(32);
        assert!((r.bps - DEFAULT_UL_BPS).abs() < 1e-9);
    }

    #[test]
    fn ul_packet_duration_matches_paper_estimate() {
        // 32-bit packet, FM0 → 64 raw bits at 375 bps ≈ 171 ms; the paper
        // rounds the full slot cost to "~200 ms" including guard time.
        let r = BitRate::from_bps(DEFAULT_UL_BPS);
        let d = r.fm0_duration_s(UL_PACKET_BITS);
        assert!((d - 64.0 / 375.0).abs() < 1e-12);
        assert!(d > 0.15 && d < 0.2, "{d}");
        assert!(d + TAG_REPLY_GUARD_S < 0.2 + 1e-9);
    }

    #[test]
    fn dl_beacon_duration_at_default_rate() {
        // 10-bit beacon, PIE: 20 + ones raw bits; at 250 bps that is
        // 80–120 ms depending on content.
        let r = BitRate::from_bps(DEFAULT_DL_BPS);
        let min = r.pie_duration_s(10, 0);
        let max = r.pie_duration_s(0, 10);
        assert!((min - 0.080).abs() < 1e-12);
        assert!((max - 0.120).abs() < 1e-12);
    }

    #[test]
    fn ticks_per_raw_at_default_rates() {
        assert!((BitRate::from_bps(375.0).ticks_per_raw() - 32.0).abs() < 1e-12);
        assert!((BitRate::from_bps(250.0).ticks_per_raw() - 48.0).abs() < 1e-12);
        // At 2000 bps DL only 6 ticks remain per raw bit — the root cause of
        // the Fig. 13(a) packet-loss surge.
        assert!((BitRate::from_bps(2000.0).ticks_per_raw() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn slot_fits_beacon_guard_and_packet() {
        let dl = BitRate::from_bps(DEFAULT_DL_BPS);
        let ul = BitRate::from_bps(DEFAULT_UL_BPS);
        let busy = dl.pie_duration_s(0, 10) + TAG_REPLY_GUARD_S + ul.fm0_duration_s(UL_PACKET_BITS);
        assert!(busy < SLOT_DURATION_S, "slot too small: {busy}");
    }
}
