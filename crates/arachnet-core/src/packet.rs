//! The compact packet structures of Fig. 5.
//!
//! * **Uplink** (tag → reader): `Preamble(8) | TID(4) | Payload(12) | CRC(8)`
//!   — 32 bits, FM0-modulated, ≈171 ms on air at the default 375 bps raw
//!   rate (the paper quotes "~200 ms" including the reply guard time).
//! * **Downlink** (reader → tags, the *beacon*): `Preamble(6) | CMD(4)` —
//!   10 bits, PIE-modulated, deliberately CRC-free: every DL bit wakes every
//!   tag, so each bit of beacon costs system-wide energy (Sec. 4.2).
//!
//! The CMD nibble multiplexes the four commands of Sec. 4.2: ACK/NACK (bit
//! 0), the EMPTY slot-status flag of Sec. 5.5 (bit 1), RESET (bit 2) and a
//! RESERVED bit. The beacon carries **no tag ID** — tags decide relevance
//! themselves ("respond to ACK/NACK only if they transmitted at the last
//! slot").

use crate::bits::BitBuf;
use crate::crc::crc8_bits;

/// UL preamble bit pattern (8 bits). The pattern is *bifix-free* (no proper
/// suffix equals a prefix), so a shifted copy can never fully alias as a
/// packet start in the correlator.
pub const UL_PREAMBLE: [bool; 8] = [true, true, true, false, true, false, false, false];

/// DL preamble bit pattern (6 bits).
pub const DL_PREAMBLE: [bool; 6] = [true, true, false, true, false, false];

/// Width of the TID field — 4 bits supports up to 16 tags (Sec. 4.2).
pub const TID_BITS: usize = 4;
/// Width of the sensor payload field.
pub const PAYLOAD_BITS: usize = 12;
/// Total UL packet length in data bits.
pub const UL_PACKET_BITS: usize = 8 + TID_BITS + PAYLOAD_BITS + 8;
/// Total DL beacon length in data bits.
pub const DL_PACKET_BITS: usize = 6 + 4;

/// Errors raised when constructing or parsing packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// TID does not fit the 4-bit field.
    TidOutOfRange {
        /// Offending value.
        tid: u8,
    },
    /// Payload does not fit the 12-bit field.
    PayloadOutOfRange {
        /// Offending value.
        payload: u16,
    },
    /// Bit buffer has the wrong length for this packet type.
    WrongLength {
        /// Expected bit count.
        expected: usize,
        /// Actual bit count.
        actual: usize,
    },
    /// Preamble did not match.
    BadPreamble,
    /// CRC check failed.
    BadCrc,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::TidOutOfRange { tid } => write!(f, "TID {tid} exceeds 4-bit field"),
            PacketError::PayloadOutOfRange { payload } => {
                write!(f, "payload {payload:#x} exceeds 12-bit field")
            }
            PacketError::WrongLength { expected, actual } => {
                write!(
                    f,
                    "wrong packet length: expected {expected} bits, got {actual}"
                )
            }
            PacketError::BadPreamble => write!(f, "preamble mismatch"),
            PacketError::BadCrc => write!(f, "CRC check failed"),
        }
    }
}

impl std::error::Error for PacketError {}

/// An uplink packet: tag ID plus a 12-bit sensor reading (Fig. 5a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UlPacket {
    tid: u8,
    payload: u16,
}

impl UlPacket {
    /// Builds a packet, validating field widths.
    pub fn new(tid: u8, payload: u16) -> Result<Self, PacketError> {
        if tid >= 1 << TID_BITS {
            return Err(PacketError::TidOutOfRange { tid });
        }
        if payload >= 1 << PAYLOAD_BITS {
            return Err(PacketError::PayloadOutOfRange { payload });
        }
        Ok(Self { tid, payload })
    }

    /// Tag ID (0–15).
    pub fn tid(&self) -> u8 {
        self.tid
    }

    /// Sensor payload (12 bits).
    pub fn payload(&self) -> u16 {
        self.payload
    }

    /// Serializes to the 32-bit on-air representation, computing the CRC over
    /// preamble + TID + payload.
    pub fn to_bits(&self) -> BitBuf {
        let mut b = BitBuf::with_capacity(UL_PACKET_BITS);
        for bit in UL_PREAMBLE {
            b.push(bit);
        }
        b.push_u8(self.tid, TID_BITS);
        b.push_u32(u32::from(self.payload), PAYLOAD_BITS);
        let crc = crc8_bits(b.iter());
        b.push_u8(crc, 8);
        b
    }

    /// Parses a 32-bit buffer, checking preamble and CRC.
    pub fn from_bits(bits: &BitBuf) -> Result<Self, PacketError> {
        if bits.len() != UL_PACKET_BITS {
            return Err(PacketError::WrongLength {
                expected: UL_PACKET_BITS,
                actual: bits.len(),
            });
        }
        for (i, &p) in UL_PREAMBLE.iter().enumerate() {
            if bits.get(i) != Some(p) {
                return Err(PacketError::BadPreamble);
            }
        }
        if crc8_bits(bits.iter()) != 0 {
            return Err(PacketError::BadCrc);
        }
        let tid = bits.extract_u16(8, TID_BITS).unwrap() as u8;
        let payload = bits.extract_u16(8 + TID_BITS, PAYLOAD_BITS).unwrap();
        Ok(Self { tid, payload })
    }

    /// Parses the body of a packet when the preamble was consumed by the
    /// correlator (the common reader-side path): expects
    /// `TID(4) | Payload(12) | CRC(8)` = 24 bits, and recomputes the CRC
    /// including the implicit preamble.
    pub fn from_body_bits(body: &BitBuf) -> Result<Self, PacketError> {
        if body.len() != UL_PACKET_BITS - 8 {
            return Err(PacketError::WrongLength {
                expected: UL_PACKET_BITS - 8,
                actual: body.len(),
            });
        }
        let mut full = BitBuf::with_capacity(UL_PACKET_BITS);
        for bit in UL_PREAMBLE {
            full.push(bit);
        }
        full.extend(body);
        Self::from_bits(&full)
    }
}

/// Extended TID width (Sec. 4.2: the 4-bit field "can be extended to
/// support more if needed") — 8 bits addresses 256 tags for dense
/// deployments.
pub const EXT_TID_BITS: usize = 8;
/// Total extended-UL packet length in data bits.
pub const EXT_UL_PACKET_BITS: usize = 8 + EXT_TID_BITS + PAYLOAD_BITS + 8;

/// The extended uplink packet: `Preamble(8) | TID(8) | Payload(12) |
/// CRC(8)` — 36 bits. Four extra bits of TID cost ~21 ms of air time per
/// packet at the default 375 bps; deployments of ≤16 tags should keep the
/// compact [`UlPacket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExtUlPacket {
    tid: u8,
    payload: u16,
}

impl ExtUlPacket {
    /// Builds a packet, validating the payload width (any `u8` TID is
    /// legal).
    pub fn new(tid: u8, payload: u16) -> Result<Self, PacketError> {
        if payload >= 1 << PAYLOAD_BITS {
            return Err(PacketError::PayloadOutOfRange { payload });
        }
        Ok(Self { tid, payload })
    }

    /// Tag ID (0–255).
    pub fn tid(&self) -> u8 {
        self.tid
    }

    /// Sensor payload (12 bits).
    pub fn payload(&self) -> u16 {
        self.payload
    }

    /// Serializes to the 36-bit on-air representation.
    pub fn to_bits(&self) -> BitBuf {
        let mut b = BitBuf::with_capacity(EXT_UL_PACKET_BITS);
        for bit in UL_PREAMBLE {
            b.push(bit);
        }
        b.push_u8(self.tid, EXT_TID_BITS);
        b.push_u32(u32::from(self.payload), PAYLOAD_BITS);
        let crc = crc8_bits(b.iter());
        b.push_u8(crc, 8);
        b
    }

    /// Parses a 36-bit buffer, checking preamble and CRC.
    pub fn from_bits(bits: &BitBuf) -> Result<Self, PacketError> {
        if bits.len() != EXT_UL_PACKET_BITS {
            return Err(PacketError::WrongLength {
                expected: EXT_UL_PACKET_BITS,
                actual: bits.len(),
            });
        }
        for (i, &p) in UL_PREAMBLE.iter().enumerate() {
            if bits.get(i) != Some(p) {
                return Err(PacketError::BadPreamble);
            }
        }
        if crc8_bits(bits.iter()) != 0 {
            return Err(PacketError::BadCrc);
        }
        let tid = bits.extract_u16(8, EXT_TID_BITS).unwrap() as u8;
        let payload = bits.extract_u16(8 + EXT_TID_BITS, PAYLOAD_BITS).unwrap();
        Ok(Self { tid, payload })
    }
}

/// The 4-bit downlink command nibble.
///
/// Bit layout (MSB-first on air): `ACK | EMPTY | RESET | RESERVED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DlCmd {
    /// ACK (true) / NACK (false) for the tag(s) that transmitted last slot.
    pub ack: bool,
    /// EMPTY flag of Sec. 5.5 — the *current* slot is predicted unoccupied,
    /// so late-arriving tags may contend in it.
    pub empty: bool,
    /// RESET — all tags drop to initial state (used to start experiments).
    pub reset: bool,
    /// Reserved for future use.
    pub reserved: bool,
}

impl DlCmd {
    /// Plain positive acknowledgement.
    pub fn ack() -> Self {
        Self {
            ack: true,
            ..Self::default()
        }
    }

    /// Plain negative acknowledgement.
    pub fn nack() -> Self {
        Self::default()
    }

    /// Network reset command.
    pub fn reset() -> Self {
        Self {
            reset: true,
            ..Self::default()
        }
    }

    /// Sets the EMPTY flag.
    pub fn with_empty(mut self, empty: bool) -> Self {
        self.empty = empty;
        self
    }

    /// Packs into the 4-bit nibble.
    pub fn to_nibble(&self) -> u8 {
        u8::from(self.ack) << 3
            | u8::from(self.empty) << 2
            | u8::from(self.reset) << 1
            | u8::from(self.reserved)
    }

    /// Unpacks from a 4-bit nibble.
    pub fn from_nibble(n: u8) -> Self {
        Self {
            ack: n & 0b1000 != 0,
            empty: n & 0b0100 != 0,
            reset: n & 0b0010 != 0,
            reserved: n & 0b0001 != 0,
        }
    }
}

/// A downlink beacon (Fig. 5b): just a preamble and a command nibble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DlBeacon {
    /// Command carried by this beacon.
    pub cmd: DlCmd,
}

impl DlBeacon {
    /// Builds a beacon around a command.
    pub fn new(cmd: DlCmd) -> Self {
        Self { cmd }
    }

    /// Serializes to the 10-bit on-air representation.
    pub fn to_bits(&self) -> BitBuf {
        let mut b = BitBuf::with_capacity(DL_PACKET_BITS);
        for bit in DL_PREAMBLE {
            b.push(bit);
        }
        b.push_u8(self.cmd.to_nibble(), 4);
        b
    }

    /// Parses a 10-bit buffer; only the preamble is checked (the DL format
    /// has no CRC by design — Sec. 4.2).
    pub fn from_bits(bits: &BitBuf) -> Result<Self, PacketError> {
        if bits.len() != DL_PACKET_BITS {
            return Err(PacketError::WrongLength {
                expected: DL_PACKET_BITS,
                actual: bits.len(),
            });
        }
        for (i, &p) in DL_PREAMBLE.iter().enumerate() {
            if bits.get(i) != Some(p) {
                return Err(PacketError::BadPreamble);
            }
        }
        let nibble = bits.extract_u16(6, 4).unwrap() as u8;
        Ok(Self {
            cmd: DlCmd::from_nibble(nibble),
        })
    }
}

/// Streaming preamble matcher used by the tag firmware: as each DL bit is
/// decoded it is shifted in, and [`PreambleMatcher::push`] reports when the
/// preamble has just completed.
#[derive(Debug, Clone)]
pub struct PreambleMatcher {
    pattern: Vec<bool>,
    window: Vec<bool>,
}

impl PreambleMatcher {
    /// Matcher for the DL preamble.
    pub fn downlink() -> Self {
        Self::new(&DL_PREAMBLE)
    }

    /// Matcher for the UL preamble.
    pub fn uplink() -> Self {
        Self::new(&UL_PREAMBLE)
    }

    /// Matcher for an arbitrary pattern.
    pub fn new(pattern: &[bool]) -> Self {
        Self {
            pattern: pattern.to_vec(),
            window: Vec::with_capacity(pattern.len()),
        }
    }

    /// Shifts in one decoded bit; returns `true` when the last
    /// `pattern.len()` bits equal the pattern.
    pub fn push(&mut self, bit: bool) -> bool {
        if self.window.len() == self.pattern.len() {
            self.window.remove(0);
        }
        self.window.push(bit);
        self.window.len() == self.pattern.len() && self.window == self.pattern
    }

    /// Clears the shift register (called after a packet completes).
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ul_packet_roundtrip() {
        for tid in [0u8, 1, 7, 15] {
            for payload in [0u16, 1, 0x5A7, 0xFFF] {
                let p = UlPacket::new(tid, payload).unwrap();
                let bits = p.to_bits();
                assert_eq!(bits.len(), 32);
                let q = UlPacket::from_bits(&bits).unwrap();
                assert_eq!(p, q);
            }
        }
    }

    #[test]
    fn ul_rejects_wide_fields() {
        assert_eq!(
            UlPacket::new(16, 0),
            Err(PacketError::TidOutOfRange { tid: 16 })
        );
        assert_eq!(
            UlPacket::new(0, 0x1000),
            Err(PacketError::PayloadOutOfRange { payload: 0x1000 })
        );
    }

    #[test]
    fn ul_detects_corrupted_payload() {
        let p = UlPacket::new(5, 0xABC).unwrap();
        let mut bits = p.to_bits();
        bits.set(15, !bits.get(15).unwrap());
        assert_eq!(UlPacket::from_bits(&bits), Err(PacketError::BadCrc));
    }

    #[test]
    fn ul_detects_corrupted_preamble() {
        let p = UlPacket::new(5, 0xABC).unwrap();
        let mut bits = p.to_bits();
        bits.set(0, !bits.get(0).unwrap());
        assert_eq!(UlPacket::from_bits(&bits), Err(PacketError::BadPreamble));
    }

    #[test]
    fn ul_rejects_wrong_length() {
        let short = BitBuf::from_u32(0, 31);
        assert!(matches!(
            UlPacket::from_bits(&short),
            Err(PacketError::WrongLength {
                expected: 32,
                actual: 31
            })
        ));
    }

    #[test]
    fn ul_body_parse_matches_full_parse() {
        let p = UlPacket::new(9, 0x123).unwrap();
        let bits = p.to_bits();
        let body = bits.slice(8, 24).unwrap();
        assert_eq!(UlPacket::from_body_bits(&body).unwrap(), p);
    }

    #[test]
    fn dl_beacon_roundtrip_all_commands() {
        for n in 0u8..16 {
            let cmd = DlCmd::from_nibble(n);
            let b = DlBeacon::new(cmd);
            let bits = b.to_bits();
            assert_eq!(bits.len(), 10);
            assert_eq!(DlBeacon::from_bits(&bits).unwrap(), b);
            assert_eq!(cmd.to_nibble(), n);
        }
    }

    #[test]
    fn dl_cmd_constructors() {
        assert!(DlCmd::ack().ack);
        assert!(!DlCmd::nack().ack);
        assert!(DlCmd::reset().reset);
        assert!(DlCmd::ack().with_empty(true).empty);
    }

    #[test]
    fn dl_bad_preamble_rejected() {
        let b = DlBeacon::new(DlCmd::ack());
        let mut bits = b.to_bits();
        bits.set(2, !bits.get(2).unwrap());
        assert_eq!(DlBeacon::from_bits(&bits), Err(PacketError::BadPreamble));
    }

    #[test]
    fn preamble_matcher_fires_once_at_end_of_pattern() {
        let mut m = PreambleMatcher::downlink();
        let mut fired = Vec::new();
        for (i, &b) in DL_PREAMBLE.iter().enumerate() {
            if m.push(b) {
                fired.push(i);
            }
        }
        assert_eq!(fired, vec![DL_PREAMBLE.len() - 1]);
    }

    #[test]
    fn preamble_matcher_finds_pattern_mid_stream() {
        let mut m = PreambleMatcher::downlink();
        let mut stream: Vec<bool> = vec![false, true, false];
        stream.extend_from_slice(&DL_PREAMBLE);
        let mut hits = 0;
        for b in stream {
            if m.push(b) {
                hits += 1;
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn preamble_matcher_reset_clears_state() {
        let mut m = PreambleMatcher::downlink();
        for &b in &DL_PREAMBLE[..5] {
            m.push(b);
        }
        m.reset();
        // Completing the pattern after reset must not fire.
        assert!(!m.push(DL_PREAMBLE[5]));
    }

    #[test]
    fn ul_preamble_has_sharp_autocorrelation() {
        // No shifted overlap of the preamble with itself should match in all
        // overlapping positions — guards against false sync.
        for shift in 1..UL_PREAMBLE.len() {
            let overlap = UL_PREAMBLE.len() - shift;
            let matches = (0..overlap)
                .filter(|&i| UL_PREAMBLE[i + shift] == UL_PREAMBLE[i])
                .count();
            assert!(matches < overlap, "shift {shift} fully self-matches");
        }
    }

    #[test]
    fn ext_packet_roundtrip_full_tid_space() {
        for tid in [0u8, 1, 15, 16, 127, 255] {
            let p = ExtUlPacket::new(tid, 0xABC).unwrap();
            let bits = p.to_bits();
            assert_eq!(bits.len(), 36);
            assert_eq!(ExtUlPacket::from_bits(&bits).unwrap(), p);
        }
    }

    #[test]
    fn ext_packet_detects_corruption() {
        let p = ExtUlPacket::new(200, 0x123).unwrap();
        let mut bits = p.to_bits();
        bits.set(12, !bits.get(12).unwrap());
        assert_eq!(ExtUlPacket::from_bits(&bits), Err(PacketError::BadCrc));
    }

    #[test]
    fn ext_packet_rejects_compact_length() {
        let compact = UlPacket::new(3, 0x123).unwrap().to_bits();
        assert!(matches!(
            ExtUlPacket::from_bits(&compact),
            Err(PacketError::WrongLength {
                expected: 36,
                actual: 32
            })
        ));
    }

    #[test]
    fn ext_packet_air_time_cost() {
        // The documented trade-off: +4 bits = +8 raw bits ≈ +21 ms at 375 bps.
        let extra_raw = 2.0 * (EXT_UL_PACKET_BITS - UL_PACKET_BITS) as f64;
        let cost_ms = extra_raw / 375.0 * 1e3;
        assert!((cost_ms - 21.3).abs() < 0.1, "{cost_ms}");
    }

    #[test]
    fn dl_packet_is_10_bits_as_designed() {
        // Sec. 4.2: adding TID+CRC would double the 10-bit design.
        assert_eq!(DL_PACKET_BITS, 10);
        assert_eq!(UL_PACKET_BITS, 32);
    }
}
