//! Compact bit buffer used by the packet codecs.
//!
//! Packets in ARACHNET are tiny (10–32 bits) and are processed one bit at a
//! time by an interrupt-driven MCU, so the natural unit of work everywhere in
//! this crate is a *bit*, not a byte. [`BitBuf`] stores bits MSB-first in a
//! packed byte vector and offers the handful of operations the codecs need:
//! push/get, field extraction/insertion, and iteration.

use std::fmt;

/// A growable, packed, MSB-first bit buffer.
///
/// ```
/// use arachnet_core::bits::BitBuf;
/// let mut b = BitBuf::new();
/// b.push_u8(0xA5, 8);
/// assert_eq!(b.len(), 8);
/// assert_eq!(b.get(0), Some(true));   // MSB of 0xA5
/// assert_eq!(b.get(7), Some(true));   // LSB of 0xA5
/// assert_eq!(b.extract_u16(0, 8), Some(0xA5));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitBuf {
    bytes: Vec<u8>,
    len: usize,
}

impl BitBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Builds a buffer from a slice of booleans (index 0 is transmitted
    /// first).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Self::with_capacity(bits.len());
        for &bit in bits {
            b.push(bit);
        }
        b
    }

    /// Builds a buffer from the low `n` bits of `value`, MSB first.
    pub fn from_u32(value: u32, n: usize) -> Self {
        let mut b = Self::with_capacity(n);
        b.push_u32(value, n);
        b
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        let bit_idx = self.len % 8;
        if bit_idx == 0 {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 0x80 >> bit_idx;
        }
        self.len += 1;
    }

    /// Appends the low `n` bits (n ≤ 8) of `value`, MSB first.
    pub fn push_u8(&mut self, value: u8, n: usize) {
        assert!(n <= 8, "push_u8 takes at most 8 bits");
        for i in (0..n).rev() {
            self.push(value >> i & 1 == 1);
        }
    }

    /// Appends the low `n` bits (n ≤ 32) of `value`, MSB first.
    pub fn push_u32(&mut self, value: u32, n: usize) {
        assert!(n <= 32, "push_u32 takes at most 32 bits");
        for i in (0..n).rev() {
            self.push(value >> i & 1 == 1);
        }
    }

    /// Appends every bit of `other`.
    pub fn extend(&mut self, other: &BitBuf) {
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// Returns the bit at `idx`, or `None` past the end.
    pub fn get(&self, idx: usize) -> Option<bool> {
        if idx >= self.len {
            return None;
        }
        Some(self.bytes[idx / 8] & (0x80 >> (idx % 8)) != 0)
    }

    /// Sets the bit at `idx`. Panics if out of range.
    pub fn set(&mut self, idx: usize, bit: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 0x80 >> (idx % 8);
        if bit {
            self.bytes[idx / 8] |= mask;
        } else {
            self.bytes[idx / 8] &= !mask;
        }
    }

    /// Extracts `n` bits (n ≤ 16) starting at `start` as an MSB-first
    /// integer. Returns `None` if the range does not fit.
    pub fn extract_u16(&self, start: usize, n: usize) -> Option<u16> {
        assert!(n <= 16, "extract_u16 reads at most 16 bits");
        if start + n > self.len {
            return None;
        }
        let mut v = 0u16;
        for i in 0..n {
            v = v << 1 | u16::from(self.get(start + i).unwrap());
        }
        Some(v)
    }

    /// Extracts a sub-range `[start, start + n)` as a new buffer.
    pub fn slice(&self, start: usize, n: usize) -> Option<BitBuf> {
        if start + n > self.len {
            return None;
        }
        let mut out = BitBuf::with_capacity(n);
        for i in 0..n {
            out.push(self.get(start + i).unwrap());
        }
        Some(out)
    }

    /// Iterates over bits in transmission order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter { buf: self, idx: 0 }
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Counts the positions where `self` and `other` differ; positions beyond
    /// the shorter buffer count as differing. Useful for preamble matching
    /// and test assertions.
    pub fn hamming_distance(&self, other: &BitBuf) -> usize {
        let common = self.len.min(other.len);
        let mut d = self.len.max(other.len) - common;
        for i in 0..common {
            if self.get(i) != other.get(i) {
                d += 1;
            }
        }
        d
    }
}

impl fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitBuf[")?;
        for bit in self.iter() {
            write!(f, "{}", u8::from(bit))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitBuf {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut b = BitBuf::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

/// Iterator over the bits of a [`BitBuf`] in transmission order.
pub struct BitIter<'a> {
    buf: &'a BitBuf,
    idx: usize,
}

impl Iterator for BitIter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.buf.get(self.idx)?;
        self.idx += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.buf.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BitIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer() {
        let b = BitBuf::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.get(0), None);
    }

    #[test]
    fn push_and_get_single_bits() {
        let mut b = BitBuf::new();
        b.push(true);
        b.push(false);
        b.push(true);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), Some(true));
        assert_eq!(b.get(1), Some(false));
        assert_eq!(b.get(2), Some(true));
        assert_eq!(b.get(3), None);
    }

    #[test]
    fn push_u8_is_msb_first() {
        let mut b = BitBuf::new();
        b.push_u8(0b1011_0001, 8);
        assert_eq!(
            b.to_bools(),
            vec![true, false, true, true, false, false, false, true]
        );
    }

    #[test]
    fn push_u8_partial_width_takes_low_bits() {
        let mut b = BitBuf::new();
        b.push_u8(0b101, 3);
        assert_eq!(b.to_bools(), vec![true, false, true]);
    }

    #[test]
    fn push_u32_roundtrips_through_extract() {
        let mut b = BitBuf::new();
        b.push_u32(0xDEAD, 16);
        assert_eq!(b.extract_u16(0, 16), Some(0xDEAD));
        assert_eq!(b.extract_u16(4, 8), Some(0xEA));
    }

    #[test]
    fn extract_out_of_range_is_none() {
        let b = BitBuf::from_u32(0xF, 4);
        assert_eq!(b.extract_u16(0, 5), None);
        assert_eq!(b.extract_u16(4, 1), None);
        assert_eq!(b.extract_u16(0, 4), Some(0xF));
    }

    #[test]
    fn set_overwrites_bits() {
        let mut b = BitBuf::from_u32(0, 8);
        b.set(0, true);
        b.set(7, true);
        assert_eq!(b.extract_u16(0, 8), Some(0x81));
        b.set(0, false);
        assert_eq!(b.extract_u16(0, 8), Some(0x01));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_past_end_panics() {
        let mut b = BitBuf::from_u32(0, 4);
        b.set(4, true);
    }

    #[test]
    fn slice_extracts_subrange() {
        let b = BitBuf::from_u32(0b1010_1100, 8);
        let s = b.slice(2, 4).unwrap();
        assert_eq!(s.to_bools(), vec![true, false, true, true]);
        assert!(b.slice(5, 4).is_none());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitBuf::from_u32(0b101, 3);
        let b = BitBuf::from_u32(0b01, 2);
        a.extend(&b);
        assert_eq!(a.to_bools(), vec![true, false, true, false, true]);
    }

    #[test]
    fn from_bools_matches_iter() {
        let bits = vec![true, true, false, true, false, false, true, true, true];
        let b = BitBuf::from_bools(&bits);
        assert_eq!(b.to_bools(), bits);
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn hamming_distance_counts_diffs_and_length_mismatch() {
        let a = BitBuf::from_u32(0b1010, 4);
        let b = BitBuf::from_u32(0b1001, 4);
        assert_eq!(a.hamming_distance(&b), 2);
        let c = BitBuf::from_u32(0b10, 2);
        assert_eq!(a.hamming_distance(&c), 2); // 2 missing bits
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let b: BitBuf = [true, false, true].into_iter().collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(1), Some(false));
    }

    #[test]
    fn debug_format_is_binary_string() {
        let b = BitBuf::from_u32(0b101, 3);
        assert_eq!(format!("{b:?}"), "BitBuf[101]");
    }

    #[test]
    fn crosses_byte_boundaries() {
        let mut b = BitBuf::new();
        for i in 0..77 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 77);
        for i in 0..77 {
            assert_eq!(b.get(i), Some(i % 3 == 0), "bit {i}");
        }
    }
}
