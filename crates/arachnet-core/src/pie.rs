//! Pulse-interval encoding (PIE) for the downlink (Sec. 4.1, Fig. 6a).
//!
//! The reader keys the 90 kHz carrier on and off; the tag's envelope
//! detector and comparator turn this into a binary waveform. Each PIE
//! symbol is a HIGH pulse followed by exactly one LOW raw interval:
//!
//! * bit **0** → raw `10`  (high for 1 interval, low for 1);
//! * bit **1** → raw `110` (high for 2 intervals, low for 1).
//!
//! The tag decodes by *timing the high pulse* between the rising and falling
//! edge (Fig. 6a): the rising edge resets the MCU timer, the falling edge
//! latches it, and a threshold of 1.5 raw intervals discriminates the two
//! symbols. This module contains both the ideal raw-bit codec (used by the
//! slot-level simulator) and the duration-based decoder that mirrors the
//! interrupt-driven firmware (used by the waveform-level simulation, where
//! timer quantisation and reader jitter distort the durations).

use crate::bits::BitBuf;

/// Raw intervals occupied by a PIE `0` symbol.
pub const ZERO_RAW_LEN: usize = 2;
/// Raw intervals occupied by a PIE `1` symbol.
pub const ONE_RAW_LEN: usize = 3;

/// Encodes data bits into raw line bits.
///
/// ```
/// use arachnet_core::pie;
/// use arachnet_core::bits::BitBuf;
/// let raw = pie::encode(BitBuf::from_bools(&[false, true]).iter());
/// assert_eq!(raw.to_bools(), vec![true, false, true, true, false]);
/// ```
pub fn encode<I: Iterator<Item = bool>>(data: I) -> BitBuf {
    let mut out = BitBuf::new();
    for bit in data {
        out.push(true);
        if bit {
            out.push(true);
        }
        out.push(false);
    }
    out
}

/// Raw line length of an encoded message with `zeros` zero-bits and `ones`
/// one-bits.
pub fn raw_len(zeros: usize, ones: usize) -> usize {
    zeros * ZERO_RAW_LEN + ones * ONE_RAW_LEN
}

/// Errors from raw-bit PIE decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PieError {
    /// The stream ended in the middle of a symbol.
    Truncated,
    /// A high pulse was longer than 2 raw intervals (no valid symbol).
    PulseTooLong {
        /// Raw-bit index where the over-long pulse starts.
        at: usize,
    },
    /// The stream did not start with a high pulse.
    MissingPulse {
        /// Raw-bit index of the offending position.
        at: usize,
    },
}

impl std::fmt::Display for PieError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PieError::Truncated => write!(f, "PIE stream truncated mid-symbol"),
            PieError::PulseTooLong { at } => write!(f, "PIE pulse too long at raw bit {at}"),
            PieError::MissingPulse { at } => write!(f, "expected PIE pulse at raw bit {at}"),
        }
    }
}

impl std::error::Error for PieError {}

/// Decodes an exact raw-bit stream produced by [`encode`].
pub fn decode(raw: &BitBuf) -> Result<BitBuf, PieError> {
    let mut out = BitBuf::new();
    let mut i = 0;
    while i < raw.len() {
        if !raw.get(i).unwrap() {
            return Err(PieError::MissingPulse { at: i });
        }
        // Count the high run.
        let mut high = 1;
        while raw.get(i + high) == Some(true) {
            high += 1;
        }
        if high > 2 {
            return Err(PieError::PulseTooLong { at: i });
        }
        // Mandatory trailing low.
        if raw.get(i + high).is_none() {
            return Err(PieError::Truncated);
        }
        out.push(high == 2);
        i += high + 1;
    }
    Ok(out)
}

/// Duration-based symbol decoder mirroring the tag firmware.
///
/// The firmware measures each high pulse in *timer ticks* and compares it to
/// a threshold. With a raw interval of `ticks_per_raw` ticks, the threshold
/// sits halfway between the nominal 1-interval and 2-interval pulses.
#[derive(Debug, Clone)]
pub struct PulseDecoder {
    /// Nominal timer ticks per raw interval.
    ticks_per_raw: f64,
}

impl PulseDecoder {
    /// New decoder for the given nominal raw-interval length in ticks.
    pub fn new(ticks_per_raw: f64) -> Self {
        assert!(ticks_per_raw > 0.0);
        Self { ticks_per_raw }
    }

    /// Threshold (in ticks) separating the 0-symbol and 1-symbol pulses.
    pub fn threshold(&self) -> f64 {
        1.5 * self.ticks_per_raw
    }

    /// Classifies one measured high-pulse duration. Pulses shorter than half
    /// a raw interval or longer than 2.5 intervals are rejected as glitches.
    pub fn classify(&self, ticks: f64) -> Option<bool> {
        if ticks < 0.5 * self.ticks_per_raw || ticks > 2.5 * self.ticks_per_raw {
            return None;
        }
        Some(ticks > self.threshold())
    }

    /// Decodes a sequence of measured pulse durations into bits; `None` if
    /// any pulse is unclassifiable.
    pub fn decode_pulses(&self, pulses: &[f64]) -> Option<BitBuf> {
        let mut out = BitBuf::with_capacity(pulses.len());
        for &p in pulses {
            out.push(self.classify(p)?);
        }
        Some(out)
    }
}

/// Converts a data bit sequence into the nominal high-pulse durations (in
/// raw intervals) the reader transmits — the reader-side dual of
/// [`PulseDecoder`].
pub fn nominal_pulses<I: Iterator<Item = bool>>(data: I) -> Vec<f64> {
    data.map(|b| if b { 2.0 } else { 1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[bool]) {
        let raw = encode(data.iter().copied());
        let dec = decode(&raw).unwrap();
        assert_eq!(dec.to_bools(), data);
    }

    #[test]
    fn zero_is_10() {
        assert_eq!(encode([false].into_iter()).to_bools(), vec![true, false]);
    }

    #[test]
    fn one_is_110() {
        assert_eq!(
            encode([true].into_iter()).to_bools(),
            vec![true, true, false]
        );
    }

    #[test]
    fn roundtrip_all_4bit_patterns() {
        for v in 0u8..16 {
            let data: Vec<bool> = (0..4).rev().map(|i| v >> i & 1 == 1).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn raw_len_matches_encode() {
        let data = [true, false, false, true, true];
        let raw = encode(data.into_iter());
        let ones = data.iter().filter(|&&b| b).count();
        assert_eq!(raw.len(), raw_len(data.len() - ones, ones));
    }

    #[test]
    fn beacon_raw_length_matches_paper_math() {
        // A 10-bit DL beacon with k ones occupies 20 + k raw bits; at the
        // default 250 bps this is 80–120 ms, matching Sec. 4.2's "short DL".
        let all_zero = encode(std::iter::repeat_n(false, 10));
        let all_one = encode(std::iter::repeat_n(true, 10));
        assert_eq!(all_zero.len(), 20);
        assert_eq!(all_one.len(), 30);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut raw = encode([true].into_iter());
        let cut = raw.slice(0, raw.len() - 1).unwrap();
        raw = cut;
        assert_eq!(decode(&raw), Err(PieError::Truncated));
    }

    #[test]
    fn missing_pulse_rejected() {
        let raw = BitBuf::from_bools(&[false, true, false]);
        assert_eq!(decode(&raw), Err(PieError::MissingPulse { at: 0 }));
    }

    #[test]
    fn long_pulse_rejected() {
        let raw = BitBuf::from_bools(&[true, true, true, false]);
        assert_eq!(decode(&raw), Err(PieError::PulseTooLong { at: 0 }));
    }

    #[test]
    fn pulse_decoder_classifies_nominal_durations() {
        let d = PulseDecoder::new(48.0); // 12 kHz clock / 250 bps
        assert_eq!(d.classify(48.0), Some(false));
        assert_eq!(d.classify(96.0), Some(true));
    }

    #[test]
    fn pulse_decoder_threshold_is_midpoint() {
        let d = PulseDecoder::new(48.0);
        assert_eq!(d.threshold(), 72.0);
        assert_eq!(d.classify(71.9), Some(false));
        assert_eq!(d.classify(72.1), Some(true));
    }

    #[test]
    fn pulse_decoder_rejects_glitches() {
        let d = PulseDecoder::new(48.0);
        assert_eq!(d.classify(10.0), None); // runt pulse
        assert_eq!(d.classify(200.0), None); // stuck-high
    }

    #[test]
    fn pulse_decoder_tolerates_moderate_jitter() {
        let d = PulseDecoder::new(48.0);
        // ±20% timing error must not flip a symbol.
        assert_eq!(d.classify(48.0 * 1.2), Some(false));
        assert_eq!(d.classify(96.0 * 0.8), Some(true));
    }

    #[test]
    fn decode_pulses_roundtrip() {
        let data = [true, false, true, true, false];
        let d = PulseDecoder::new(48.0);
        let pulses: Vec<f64> = nominal_pulses(data.into_iter())
            .into_iter()
            .map(|p| p * 48.0)
            .collect();
        let dec = d.decode_pulses(&pulses).unwrap();
        assert_eq!(dec.to_bools(), data);
    }

    #[test]
    fn decode_pulses_fails_on_any_glitch() {
        let d = PulseDecoder::new(48.0);
        assert!(d.decode_pulses(&[48.0, 5.0, 96.0]).is_none());
    }
}
