//! Exact absorbing-Markov-chain analysis of the slot-allocation protocol
//! (Appendix C).
//!
//! The appendix proves convergence by modelling the network as an absorbing
//! Markov chain whose states are `(z_i, a_i, c_i)` per tag — MIGRATE/SETTLE,
//! slot offset, consecutive-NACK count — and whose absorbing states are the
//! all-SETTLE, collision-free configurations. This module *constructs that
//! chain* for small configurations and machine-checks the proof:
//!
//! * every reachable state can reach an absorbing state
//!   (Lemma 3 / reachability);
//! * absorbing states are exactly the all-SETTLE conflict-free ones and are
//!   closed (Lemmas 1–2);
//! * the expected number of slots to absorption is computed by solving the
//!   first-step equations — an exact, protocol-level prediction that the
//!   simulator's measured convergence times can be tested against.
//!
//! The chain assumes the proof's idealisations: synchronized counters, no
//! beacon loss, perfect collision detection. State-space size is
//! `L × Π_i p_i(N+1)` (phase × per-tag states), so the analysis is intended
//! for configurations of up to ~4 tags with periods ≤ 8.

use std::collections::HashMap;

use crate::slot::{Period, Schedule};

/// Configuration of the chain to analyze.
#[derive(Debug, Clone)]
pub struct MarkovConfig {
    /// Tag periods (powers of two).
    pub periods: Vec<Period>,
    /// Consecutive-NACK threshold `N` (paper: 3).
    pub nack_threshold: u8,
}

/// Outcome of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovAnalysis {
    /// Reachable states (including absorbing ones).
    pub num_states: usize,
    /// Reachable absorbing states.
    pub num_absorbing: usize,
    /// True iff every reachable state has a path to an absorbing state —
    /// the machine-checked core of the convergence proof.
    pub absorbing_chain: bool,
    /// Expected slots from the post-RESET distribution (all tags MIGRATE,
    /// offsets uniform) to absorption. `None` if `absorbing_chain` is false.
    pub expected_slots_to_absorb: Option<f64>,
}

/// Errors from the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkovError {
    /// No tags configured.
    NoTags,
    /// State space exceeds the tractability cap.
    TooLarge {
        /// The estimated state count.
        states: u128,
    },
    /// Value iteration failed to converge (should not occur for absorbing
    /// chains within the size cap).
    NoConvergence,
}

impl std::fmt::Display for MarkovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarkovError::NoTags => write!(f, "no tags in Markov configuration"),
            MarkovError::TooLarge { states } => {
                write!(f, "state space too large: {states} states")
            }
            MarkovError::NoConvergence => write!(f, "value iteration did not converge"),
        }
    }
}

impl std::error::Error for MarkovError {}

/// One tag's protocol state inside a chain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TagChainState {
    settled: bool,
    offset: u32,
    nacks: u8,
}

/// Full chain state: global phase plus per-tag states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ChainState {
    phase: u32,
    tags: Vec<TagChainState>,
}

const MAX_STATES: u128 = 2_000_000;

struct ChainBuilder<'a> {
    cfg: &'a MarkovConfig,
    hyperperiod: u32,
}

impl<'a> ChainBuilder<'a> {
    fn new(cfg: &'a MarkovConfig) -> Self {
        let hyperperiod = cfg.periods.iter().map(|p| p.get()).max().unwrap_or(1);
        Self { cfg, hyperperiod }
    }

    fn size_estimate(&self) -> u128 {
        let mut n: u128 = u128::from(self.hyperperiod);
        for p in &self.cfg.periods {
            // Migrate: p offsets; Settle: p offsets × N nack counts.
            n = n.saturating_mul(u128::from(p.get()) * (1 + u128::from(self.cfg.nack_threshold)));
        }
        n
    }

    fn is_absorbing(&self, s: &ChainState) -> bool {
        if !s.tags.iter().all(|t| t.settled) {
            return false;
        }
        let schedules: Vec<Schedule> = s
            .tags
            .iter()
            .zip(&self.cfg.periods)
            .map(|(t, &p)| Schedule::new(p, t.offset).unwrap())
            .collect();
        for i in 0..schedules.len() {
            for j in (i + 1)..schedules.len() {
                if schedules[i].conflicts_with(&schedules[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Successor distribution of a state: `(probability, next_state)` pairs.
    fn successors(&self, s: &ChainState) -> Vec<(f64, ChainState)> {
        let next_phase = (s.phase + 1) % self.hyperperiod;
        // Who transmits in slot `phase`?
        let transmitters: Vec<usize> = s
            .tags
            .iter()
            .enumerate()
            .filter(|(i, t)| s.phase % self.cfg.periods[*i].get() == t.offset)
            .map(|(i, _)| i)
            .collect();

        // Per-tag next-state alternatives.
        let mut alternatives: Vec<Vec<(f64, TagChainState)>> = Vec::with_capacity(s.tags.len());
        for (i, t) in s.tags.iter().enumerate() {
            let p = self.cfg.periods[i].get();
            let transmitted = transmitters.contains(&i);
            if !transmitted {
                alternatives.push(vec![(1.0, *t)]);
                continue;
            }
            if transmitters.len() == 1 {
                // ACK: settle, clear counter.
                alternatives.push(vec![(
                    1.0,
                    TagChainState {
                        settled: true,
                        offset: t.offset,
                        nacks: 0,
                    },
                )]);
            } else {
                // NACK.
                let migrate_uniform = || -> Vec<(f64, TagChainState)> {
                    (0..p)
                        .map(|a| {
                            (
                                1.0 / f64::from(p),
                                TagChainState {
                                    settled: false,
                                    offset: a,
                                    nacks: 0,
                                },
                            )
                        })
                        .collect()
                };
                // Unsettled tags and settled tags crossing the NACK
                // threshold both migrate uniformly; stay otherwise.
                if !t.settled || t.nacks + 1 >= self.cfg.nack_threshold {
                    alternatives.push(migrate_uniform());
                } else {
                    alternatives.push(vec![(
                        1.0,
                        TagChainState {
                            settled: true,
                            offset: t.offset,
                            nacks: t.nacks + 1,
                        },
                    )]);
                }
            }
        }

        // Cartesian product of alternatives.
        let mut out: Vec<(f64, Vec<TagChainState>)> = vec![(1.0, Vec::new())];
        for alt in alternatives {
            let mut next = Vec::with_capacity(out.len() * alt.len());
            for (prob, partial) in &out {
                for (ap, at) in &alt {
                    let mut v = partial.clone();
                    v.push(*at);
                    next.push((prob * ap, v));
                }
            }
            out = next;
        }
        out.into_iter()
            .map(|(prob, tags)| {
                (
                    prob,
                    ChainState {
                        phase: next_phase,
                        tags,
                    },
                )
            })
            .collect()
    }
}

/// Constructs the chain reachable from the post-RESET distribution and
/// analyzes it.
pub fn analyze(cfg: &MarkovConfig) -> Result<MarkovAnalysis, MarkovError> {
    if cfg.periods.is_empty() {
        return Err(MarkovError::NoTags);
    }
    let builder = ChainBuilder::new(cfg);
    let est = builder.size_estimate();
    if est > MAX_STATES {
        return Err(MarkovError::TooLarge { states: est });
    }

    // Initial distribution: phase 0, all MIGRATE, offsets uniform.
    let mut initial: Vec<(f64, ChainState)> = vec![(
        1.0,
        ChainState {
            phase: 0,
            tags: Vec::new(),
        },
    )];
    for &p in &cfg.periods {
        let mut next = Vec::new();
        for (prob, st) in &initial {
            for a in 0..p.get() {
                let mut tags = st.tags.clone();
                tags.push(TagChainState {
                    settled: false,
                    offset: a,
                    nacks: 0,
                });
                next.push((prob / f64::from(p.get()), ChainState { phase: 0, tags }));
            }
        }
        initial = next;
    }

    // BFS over reachable states.
    let mut index: HashMap<ChainState, usize> = HashMap::new();
    let mut states: Vec<ChainState> = Vec::new();
    let mut queue: Vec<usize> = Vec::new();
    let intern = |s: ChainState,
                  index: &mut HashMap<ChainState, usize>,
                  states: &mut Vec<ChainState>,
                  queue: &mut Vec<usize>|
     -> usize {
        if let Some(&i) = index.get(&s) {
            return i;
        }
        let i = states.len();
        index.insert(s.clone(), i);
        states.push(s);
        queue.push(i);
        i
    };
    for (_, s) in &initial {
        intern(s.clone(), &mut index, &mut states, &mut queue);
    }
    let mut transitions: Vec<Vec<(f64, usize)>> = Vec::new();
    let mut absorbing: Vec<bool> = Vec::new();
    let mut qi = 0;
    while qi < queue.len() {
        let si = queue[qi];
        qi += 1;
        let s = states[si].clone();
        let is_abs = builder.is_absorbing(&s);
        while absorbing.len() <= si {
            absorbing.push(false);
            transitions.push(Vec::new());
        }
        absorbing[si] = is_abs;
        if is_abs {
            continue; // absorbing super-state: no outgoing edges needed
        }
        let succ = builder.successors(&s);
        let mut edges = Vec::with_capacity(succ.len());
        for (prob, ns) in succ {
            let ni = intern(ns, &mut index, &mut states, &mut queue);
            edges.push((prob, ni));
        }
        transitions[si] = edges;
    }
    while absorbing.len() < states.len() {
        absorbing.push(false);
        transitions.push(Vec::new());
    }
    // Tail states discovered after their slot in `absorbing` was pushed may
    // not have been classified; fix up by classifying everything.
    for (si, s) in states.iter().enumerate() {
        absorbing[si] = builder.is_absorbing(s);
    }

    let num_states = states.len();
    let num_absorbing = absorbing.iter().filter(|&&a| a).count();

    // Reachability of absorption from every state: reverse BFS.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); num_states];
    for (si, edges) in transitions.iter().enumerate() {
        for &(_, ni) in edges {
            reverse[ni].push(si);
        }
    }
    let mut can_absorb = absorbing.clone();
    let mut stack: Vec<usize> = (0..num_states).filter(|&i| absorbing[i]).collect();
    while let Some(i) = stack.pop() {
        for &pred in &reverse[i] {
            if !can_absorb[pred] {
                can_absorb[pred] = true;
                stack.push(pred);
            }
        }
    }
    let absorbing_chain = can_absorb.iter().all(|&c| c);

    let expected = if absorbing_chain && num_absorbing > 0 {
        // Gauss–Seidel on E[x] = 1 + Σ P(x,y) E[y].
        let mut e = vec![0.0f64; num_states];
        let mut converged = false;
        for _ in 0..200_000 {
            let mut max_delta = 0.0f64;
            for si in 0..num_states {
                if absorbing[si] {
                    continue;
                }
                let mut v = 1.0;
                for &(prob, ni) in &transitions[si] {
                    v += prob * e[ni];
                }
                max_delta = max_delta.max((v - e[si]).abs());
                e[si] = v;
            }
            if max_delta < 1e-10 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(MarkovError::NoConvergence);
        }
        let mut start = 0.0;
        for (prob, s) in &initial {
            start += prob * e[index[s]];
        }
        Some(start)
    } else {
        None
    };

    Ok(MarkovAnalysis {
        num_states,
        num_absorbing,
        absorbing_chain,
        expected_slots_to_absorb: expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(periods: &[u32]) -> MarkovConfig {
        MarkovConfig {
            periods: periods.iter().map(|&p| Period::new(p).unwrap()).collect(),
            nack_threshold: 3,
        }
    }

    #[test]
    fn single_tag_absorbs_within_one_period() {
        // One tag never collides: it transmits at its offset, gets ACKed,
        // settles. Expected absorption = expected wait for its slot + 1.
        let a = analyze(&cfg(&[2])).unwrap();
        assert!(a.absorbing_chain);
        assert!(a.num_absorbing >= 1);
        let e = a.expected_slots_to_absorb.unwrap();
        // Offsets 0/1 uniform, phase starts at 0: offset 0 fires at slot 0
        // (absorb after 1 step), offset 1 at slot 1 (absorb after 2 steps).
        assert!((e - 1.5).abs() < 1e-6, "expected 1.5, got {e}");
    }

    #[test]
    fn two_tags_period_two_full_utilization() {
        let a = analyze(&cfg(&[2, 2])).unwrap();
        assert!(a.absorbing_chain, "proof: chain must be absorbing");
        let e = a.expected_slots_to_absorb.unwrap();
        // Full utilization: must converge but slower than a single tag.
        assert!(e > 1.5 && e < 50.0, "implausible expectation {e}");
    }

    #[test]
    fn two_tags_mixed_periods() {
        let a = analyze(&cfg(&[2, 4])).unwrap();
        assert!(a.absorbing_chain);
        assert!(a.expected_slots_to_absorb.unwrap().is_finite());
    }

    #[test]
    fn three_tags_half_utilization_absorbs_faster_than_full() {
        let sparse = analyze(&cfg(&[4, 4])).unwrap(); // U = 0.5
        let dense = analyze(&cfg(&[2, 4, 4])).unwrap(); // U = 1.0
        assert!(sparse.absorbing_chain && dense.absorbing_chain);
        let (es, ed) = (
            sparse.expected_slots_to_absorb.unwrap(),
            dense.expected_slots_to_absorb.unwrap(),
        );
        assert!(
            ed > es,
            "higher utilization must slow convergence: dense {ed} vs sparse {es} \
             (Fig. 15a trend)"
        );
    }

    #[test]
    fn absorbing_states_are_conflict_free() {
        // Structural check on the builder, via a tiny chain.
        let c = cfg(&[2, 2]);
        let b = ChainBuilder::new(&c);
        let good = ChainState {
            phase: 0,
            tags: vec![
                TagChainState {
                    settled: true,
                    offset: 0,
                    nacks: 0,
                },
                TagChainState {
                    settled: true,
                    offset: 1,
                    nacks: 0,
                },
            ],
        };
        let conflicted = ChainState {
            phase: 0,
            tags: vec![
                TagChainState {
                    settled: true,
                    offset: 1,
                    nacks: 0,
                },
                TagChainState {
                    settled: true,
                    offset: 1,
                    nacks: 0,
                },
            ],
        };
        let migrating = ChainState {
            phase: 0,
            tags: vec![
                TagChainState {
                    settled: false,
                    offset: 0,
                    nacks: 0,
                },
                TagChainState {
                    settled: true,
                    offset: 1,
                    nacks: 0,
                },
            ],
        };
        assert!(b.is_absorbing(&good));
        assert!(!b.is_absorbing(&conflicted));
        assert!(!b.is_absorbing(&migrating));
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let c = cfg(&[2, 2]);
        let b = ChainBuilder::new(&c);
        let s = ChainState {
            phase: 0,
            tags: vec![
                TagChainState {
                    settled: false,
                    offset: 0,
                    nacks: 0,
                },
                TagChainState {
                    settled: false,
                    offset: 0,
                    nacks: 0,
                },
            ],
        };
        let succ = b.successors(&s);
        let total: f64 = succ.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Both transmit at phase 0 → collision → both migrate: 4 branches.
        assert_eq!(succ.len(), 4);
    }

    #[test]
    fn settled_tag_counts_nacks_before_migrating() {
        let c = cfg(&[2, 2]);
        let b = ChainBuilder::new(&c);
        // Both settled on offset 0 → collide at phase 0.
        let s = ChainState {
            phase: 0,
            tags: vec![
                TagChainState {
                    settled: true,
                    offset: 0,
                    nacks: 0,
                },
                TagChainState {
                    settled: true,
                    offset: 0,
                    nacks: 2,
                },
            ],
        };
        let succ = b.successors(&s);
        // Tag 0: nacks 0→1 (stays settled, deterministic). Tag 1: nacks 2+1
        // ≥ 3 → migrates (2 uniform branches). Total 2 branches.
        assert_eq!(succ.len(), 2);
        for (_, ns) in &succ {
            assert!(ns.tags[0].settled);
            assert_eq!(ns.tags[0].nacks, 1);
            assert!(!ns.tags[1].settled);
        }
    }

    #[test]
    fn no_tags_is_error() {
        assert_eq!(analyze(&cfg(&[])), Err(MarkovError::NoTags));
    }

    #[test]
    fn oversized_config_is_rejected() {
        let big = cfg(&[64, 64, 64, 64, 64]);
        assert!(matches!(analyze(&big), Err(MarkovError::TooLarge { .. })));
    }
}
