//! Tiny deterministic PRNG for tag-side randomness.
//!
//! The MIGRATE state of the tag state machine (Sec. 5.3) needs uniformly
//! random slot offsets. A real tag would seed a cheap generator from its TID
//! and ADC noise; we model that with a self-contained xorshift64* generator
//! so `arachnet-core` stays dependency-free and every simulation is exactly
//! reproducible from its seed.

/// xorshift64* generator — 8 bytes of state, passes BigCrush for our needs
/// (uniform slot offsets), and costs a handful of MCU instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagRng {
    state: u64,
}

impl TagRng {
    /// Creates a generator from a nonzero seed. A zero seed is remapped to a
    /// fixed odd constant (xorshift state must be nonzero).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derives a per-tag generator from a shared experiment seed and a tag
    /// identifier, using a splitmix64 finalizer so nearby TIDs do not yield
    /// correlated streams.
    pub fn for_tag(experiment_seed: u64, tid: u8) -> Self {
        let mut z = experiment_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(u64::from(tid) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, bound)` via rejection sampling (unbiased).
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TagRng::new(42);
        let mut b = TagRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = TagRng::new(0);
        // Must not get stuck at zero forever.
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TagRng::new(7);
        for bound in [1u64, 2, 3, 5, 7, 8, 16, 31, 32, 100] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = TagRng::new(99);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all offsets in [0,8) should occur");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = TagRng::new(123);
        let mut counts = [0u32; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 4.0;
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "{counts:?}"
            );
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = TagRng::new(5);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn per_tag_streams_differ() {
        let mut a = TagRng::for_tag(1, 1);
        let mut b = TagRng::for_tag(1, 2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = TagRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
