//! CRC-8 used by the uplink packet (Fig. 5a).
//!
//! The paper allocates an 8-bit CRC to the 24 information bits
//! (preamble + TID + payload) of each uplink packet. We use the ubiquitous
//! CRC-8/ATM polynomial `x^8 + x^2 + x + 1` (0x07), computed bit-serially —
//! exactly how a 12 kHz MSP430 with no CRC peripheral would compute it while
//! assembling the packet.

use crate::bits::BitBuf;

/// Generator polynomial, normal form (implicit leading x^8): `0x07`.
pub const POLY: u8 = 0x07;

/// Initial register value.
pub const INIT: u8 = 0x00;

/// Computes the CRC-8 of a bit sequence, MSB first.
///
/// ```
/// use arachnet_core::crc::crc8_bits;
/// use arachnet_core::bits::BitBuf;
/// let msg = BitBuf::from_u32(0x31_3233, 24); // "123" in ASCII
/// assert_eq!(crc8_bits(msg.iter()), crc8_bits(msg.iter())); // deterministic
/// ```
pub fn crc8_bits<I: Iterator<Item = bool>>(bits: I) -> u8 {
    let mut reg: u8 = INIT;
    for bit in bits {
        let msb = (reg & 0x80 != 0) ^ bit;
        reg <<= 1;
        if msb {
            reg ^= POLY;
        }
    }
    reg
}

/// Computes the CRC-8 of a byte slice (each byte MSB first). Convenience for
/// tests against published check values.
pub fn crc8_bytes(bytes: &[u8]) -> u8 {
    let mut bits = BitBuf::with_capacity(bytes.len() * 8);
    for &b in bytes {
        bits.push_u8(b, 8);
    }
    crc8_bits(bits.iter())
}

/// Verifies a message followed by its CRC: the register must return to zero.
pub fn verify(bits_with_crc: &BitBuf) -> bool {
    crc8_bits(bits_with_crc.iter()) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // CRC-8/ATM ("CRC-8") check value for "123456789" is 0xF4.
        assert_eq!(crc8_bytes(b"123456789"), 0xF4);
    }

    #[test]
    fn empty_message_is_init() {
        assert_eq!(crc8_bytes(&[]), INIT);
    }

    #[test]
    fn appending_crc_zeroes_register() {
        let mut msg = BitBuf::new();
        msg.push_u32(0x000A_BCDE, 20);
        let crc = crc8_bits(msg.iter());
        let mut framed = msg.clone();
        framed.push_u8(crc, 8);
        assert!(verify(&framed));
    }

    #[test]
    fn detects_any_single_bit_error() {
        let mut msg = BitBuf::new();
        msg.push_u32(0x0000_F00D, 24);
        let crc = crc8_bits(msg.iter());
        let mut framed = msg.clone();
        framed.push_u8(crc, 8);
        for i in 0..framed.len() {
            let mut corrupted = framed.clone();
            corrupted.set(i, !corrupted.get(i).unwrap());
            assert!(!verify(&corrupted), "single-bit error at {i} undetected");
        }
    }

    #[test]
    fn detects_all_double_bit_errors_in_packet_sized_message() {
        // The CRC-8/ATM polynomial has Hamming distance 4 up to 119 bits, so
        // every 2-bit error in our 32-bit packet must be caught.
        let mut msg = BitBuf::new();
        msg.push_u32(0xDEAD55, 24);
        let crc = crc8_bits(msg.iter());
        let mut framed = msg.clone();
        framed.push_u8(crc, 8);
        for i in 0..framed.len() {
            for j in (i + 1)..framed.len() {
                let mut c = framed.clone();
                c.set(i, !c.get(i).unwrap());
                c.set(j, !c.get(j).unwrap());
                assert!(!verify(&c), "double-bit error at ({i},{j}) undetected");
            }
        }
    }

    #[test]
    fn detects_burst_errors_up_to_8_bits() {
        let mut msg = BitBuf::new();
        msg.push_u32(0x15C0DE, 24);
        let crc = crc8_bits(msg.iter());
        let mut framed = msg.clone();
        framed.push_u8(crc, 8);
        // Any burst of length <= 8 (the CRC width) must be detected.
        for start in 0..framed.len() {
            for len in 1..=8usize {
                if start + len > framed.len() {
                    continue;
                }
                let mut c = framed.clone();
                // A burst must flip its first and last bit to have that length.
                c.set(start, !c.get(start).unwrap());
                if len > 1 {
                    c.set(start + len - 1, !c.get(start + len - 1).unwrap());
                }
                assert!(!verify(&c), "burst at {start} len {len} undetected");
            }
        }
    }

    #[test]
    fn bitwise_matches_bytewise() {
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9A];
        let mut bits = BitBuf::new();
        for &b in &data {
            bits.push_u8(b, 8);
        }
        assert_eq!(crc8_bits(bits.iter()), crc8_bytes(&data));
    }
}
