//! Convergence detection and windowed slot statistics (Sec. 6.4).
//!
//! The evaluation defines *first convergence time* as the number of slots
//! until the reader observes 32 consecutive non-collision slots after a
//! RESET, and tracks two long-run metrics over a sliding window of 32
//! slots: the **non-empty ratio** (slots with ≥1 transmission) and the
//! **collision ratio** (slots with >1 transmission).

use crate::mac::SlotOutcome;

/// Number of consecutive collision-free slots that defines convergence.
pub const CONVERGENCE_STREAK: u32 = 32;

/// Detects the paper's convergence criterion.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    needed: u32,
    streak: u32,
    slots_seen: u64,
    converged_at: Option<u64>,
}

impl ConvergenceDetector {
    /// Detector with the paper's streak length (32).
    pub fn new() -> Self {
        Self::with_streak(CONVERGENCE_STREAK)
    }

    /// Detector with a custom streak length.
    pub fn with_streak(needed: u32) -> Self {
        assert!(needed > 0);
        Self {
            needed,
            streak: 0,
            slots_seen: 0,
            converged_at: None,
        }
    }

    /// Feeds one slot outcome; returns `Some(slot_count)` the first time the
    /// streak completes, where `slot_count` is the total number of slots
    /// observed since the detector (i.e. the RESET) started.
    pub fn push(&mut self, outcome: SlotOutcome) -> Option<u64> {
        self.slots_seen += 1;
        if matches!(outcome, SlotOutcome::Collision) {
            self.streak = 0;
        } else {
            self.streak += 1;
            if self.streak == self.needed && self.converged_at.is_none() {
                self.converged_at = Some(self.slots_seen);
                return Some(self.slots_seen);
            }
        }
        None
    }

    /// Slot count at which convergence was first detected, if ever.
    pub fn converged_at(&self) -> Option<u64> {
        self.converged_at
    }

    /// Total slots pushed.
    pub fn slots_seen(&self) -> u64 {
        self.slots_seen
    }

    /// Restarts the detector (e.g. after another RESET).
    pub fn reset(&mut self) {
        self.streak = 0;
        self.slots_seen = 0;
        self.converged_at = None;
    }
}

impl Default for ConvergenceDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Sliding-window ratios of Sec. 6.4 / Fig. 16.
#[derive(Debug, Clone)]
pub struct SlotStats {
    window: usize,
    ring: Vec<SlotOutcome>,
    head: usize,
    filled: usize,
    non_empty_in_window: usize,
    collisions_in_window: usize,
    // Cumulative (whole-run) counters for the reported averages.
    total_slots: u64,
    total_non_empty: u64,
    total_collisions: u64,
}

impl SlotStats {
    /// Stats over the paper's 32-slot window.
    pub fn new() -> Self {
        Self::with_window(32)
    }

    /// Stats over a custom window size.
    pub fn with_window(window: usize) -> Self {
        assert!(window > 0);
        Self {
            window,
            ring: vec![SlotOutcome::Empty; window],
            head: 0,
            filled: 0,
            non_empty_in_window: 0,
            collisions_in_window: 0,
            total_slots: 0,
            total_non_empty: 0,
            total_collisions: 0,
        }
    }

    fn is_non_empty(o: SlotOutcome) -> bool {
        !matches!(o, SlotOutcome::Empty)
    }

    fn is_collision(o: SlotOutcome) -> bool {
        matches!(o, SlotOutcome::Collision)
    }

    /// Feeds one slot outcome.
    pub fn push(&mut self, outcome: SlotOutcome) {
        if self.filled == self.window {
            let old = self.ring[self.head];
            if Self::is_non_empty(old) {
                self.non_empty_in_window -= 1;
            }
            if Self::is_collision(old) {
                self.collisions_in_window -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.ring[self.head] = outcome;
        self.head = (self.head + 1) % self.window;
        if Self::is_non_empty(outcome) {
            self.non_empty_in_window += 1;
            self.total_non_empty += 1;
        }
        if Self::is_collision(outcome) {
            self.collisions_in_window += 1;
            self.total_collisions += 1;
        }
        self.total_slots += 1;
    }

    /// Non-empty ratio over the current window.
    pub fn non_empty_ratio(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.non_empty_in_window as f64 / self.filled as f64
    }

    /// Collision ratio over the current window.
    pub fn collision_ratio(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.collisions_in_window as f64 / self.filled as f64
    }

    /// Whole-run average non-empty ratio (the paper's "average 81.2 %").
    pub fn avg_non_empty_ratio(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        self.total_non_empty as f64 / self.total_slots as f64
    }

    /// Whole-run average collision ratio (the paper's "0.056").
    pub fn avg_collision_ratio(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        self.total_collisions as f64 / self.total_slots as f64
    }

    /// Total slots pushed.
    pub fn total_slots(&self) -> u64 {
        self.total_slots
    }
}

impl Default for SlotStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::SlotOutcome::{Collision, Empty, Received};

    #[test]
    fn detector_fires_after_exact_streak() {
        let mut d = ConvergenceDetector::with_streak(4);
        assert_eq!(d.push(Received(1)), None);
        assert_eq!(d.push(Empty), None);
        assert_eq!(d.push(Received(2)), None);
        assert_eq!(d.push(Received(1)), Some(4));
        assert_eq!(d.converged_at(), Some(4));
    }

    #[test]
    fn collision_resets_streak() {
        let mut d = ConvergenceDetector::with_streak(3);
        d.push(Received(1));
        d.push(Received(1));
        assert_eq!(d.push(Collision), None);
        d.push(Received(1));
        d.push(Received(1));
        assert_eq!(d.push(Received(1)), Some(6));
    }

    #[test]
    fn detector_fires_only_once() {
        let mut d = ConvergenceDetector::with_streak(2);
        assert_eq!(d.push(Empty), None);
        assert_eq!(d.push(Empty), Some(2));
        assert_eq!(d.push(Empty), None);
        assert_eq!(d.converged_at(), Some(2));
    }

    #[test]
    fn empty_slots_count_as_non_collision() {
        // The criterion is "non-collision", not "successful": an idle
        // network converges trivially.
        let mut d = ConvergenceDetector::with_streak(32);
        let mut fired = None;
        for _ in 0..32 {
            fired = fired.or(d.push(Empty));
        }
        assert_eq!(fired, Some(32));
    }

    #[test]
    fn detector_reset_restarts() {
        let mut d = ConvergenceDetector::with_streak(2);
        d.push(Empty);
        d.push(Empty);
        d.reset();
        assert_eq!(d.converged_at(), None);
        assert_eq!(d.push(Empty), None);
        assert_eq!(d.push(Empty), Some(2));
    }

    #[test]
    fn stats_windowed_ratios() {
        let mut s = SlotStats::with_window(4);
        s.push(Received(1));
        s.push(Collision);
        s.push(Empty);
        s.push(Received(2));
        assert!((s.non_empty_ratio() - 0.75).abs() < 1e-12);
        assert!((s.collision_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats_window_slides() {
        let mut s = SlotStats::with_window(2);
        s.push(Collision);
        s.push(Collision);
        assert!((s.collision_ratio() - 1.0).abs() < 1e-12);
        s.push(Empty);
        s.push(Empty);
        assert!((s.collision_ratio() - 0.0).abs() < 1e-12);
        assert!((s.non_empty_ratio() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn stats_partial_window() {
        let mut s = SlotStats::with_window(32);
        s.push(Received(1));
        assert!((s.non_empty_ratio() - 1.0).abs() < 1e-12);
        s.push(Empty);
        assert!((s.non_empty_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cumulative_averages_track_whole_run() {
        let mut s = SlotStats::with_window(2);
        for i in 0..100u64 {
            s.push(if i % 10 == 0 { Collision } else { Received(1) });
        }
        assert_eq!(s.total_slots(), 100);
        assert!((s.avg_collision_ratio() - 0.1).abs() < 1e-12);
        assert!((s.avg_non_empty_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SlotStats::new();
        assert_eq!(s.non_empty_ratio(), 0.0);
        assert_eq!(s.collision_ratio(), 0.0);
        assert_eq!(s.avg_non_empty_ratio(), 0.0);
    }
}
