//! FM0 line coding for the uplink (Sec. 4.1).
//!
//! The tag backscatters data by toggling its PZT between the reflective and
//! absorptive state once per *raw bit* interval (Fig. 6b). FM0 maps each data
//! bit onto a pair of raw bits:
//!
//! * data bit **0** → the two raw bits *differ* (`10` or `01`) — a mid-symbol
//!   transition;
//! * data bit **1** → the two raw bits are *equal* (`00` or `11`) — no
//!   mid-symbol transition.
//!
//! (The paper states this convention explicitly; it is the inverse of the
//! EPC-Gen2 naming but identical on the wire up to relabeling.)
//!
//! As in classic FM0 the line level always inverts at a symbol *boundary*,
//! which keeps the waveform DC-balanced and gives the decoder a transition to
//! lock onto at every symbol edge regardless of data.

use crate::bits::BitBuf;

/// Symbol-pair encoder. Tracks the current line level so that consecutive
/// [`Fm0Encoder::encode`] calls produce a phase-continuous waveform.
#[derive(Debug, Clone)]
pub struct Fm0Encoder {
    /// Level of the *last emitted raw bit*; the next symbol starts inverted.
    level: bool,
}

impl Default for Fm0Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Fm0Encoder {
    /// New encoder; the first symbol starts at a high level.
    pub fn new() -> Self {
        Self { level: false }
    }

    /// Encodes data bits into raw line bits (2 raw bits per data bit).
    pub fn encode<I: Iterator<Item = bool>>(&mut self, data: I) -> BitBuf {
        let mut out = BitBuf::new();
        for bit in data {
            // Boundary inversion: first half is the inverse of the last level.
            let first = !self.level;
            // Data bit 0 → halves differ; data bit 1 → halves equal.
            let second = if bit { first } else { !first };
            out.push(first);
            out.push(second);
            self.level = second;
        }
        out
    }

    /// Current line level (level of the last raw bit emitted).
    pub fn level(&self) -> bool {
        self.level
    }
}

/// Errors from FM0 decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fm0Error {
    /// Raw bit count is odd — symbols are pairs.
    OddLength,
    /// A symbol boundary lacked the mandatory level inversion at `symbol`.
    MissingBoundaryTransition {
        /// Index of the offending data symbol.
        symbol: usize,
    },
}

impl std::fmt::Display for Fm0Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fm0Error::OddLength => write!(f, "FM0 raw stream has odd length"),
            Fm0Error::MissingBoundaryTransition { symbol } => {
                write!(f, "missing FM0 boundary transition before symbol {symbol}")
            }
        }
    }
}

impl std::error::Error for Fm0Error {}

/// Decodes raw line bits back into data bits.
///
/// `check_boundaries` additionally verifies the FM0 boundary-inversion
/// invariant, which catches symbol slips; the plain pair rule (equal = 1,
/// differ = 0) is applied either way.
pub fn decode(raw: &BitBuf, check_boundaries: bool) -> Result<BitBuf, Fm0Error> {
    if !raw.len().is_multiple_of(2) {
        return Err(Fm0Error::OddLength);
    }
    let mut out = BitBuf::with_capacity(raw.len() / 2);
    let mut prev_last: Option<bool> = None;
    for s in 0..raw.len() / 2 {
        let a = raw.get(2 * s).unwrap();
        let b = raw.get(2 * s + 1).unwrap();
        if check_boundaries {
            if let Some(p) = prev_last {
                if p == a {
                    return Err(Fm0Error::MissingBoundaryTransition { symbol: s });
                }
            }
        }
        out.push(a == b);
        prev_last = Some(b);
    }
    Ok(out)
}

/// Decodes while tolerating boundary violations (used after hard-decision
/// slicing of noisy waveforms, where we prefer to let the CRC catch errors).
pub fn decode_lenient(raw: &BitBuf) -> Result<BitBuf, Fm0Error> {
    decode(raw, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[bool]) {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(data.iter().copied());
        assert_eq!(raw.len(), data.len() * 2);
        let dec = decode(&raw, true).unwrap();
        assert_eq!(dec.to_bools(), data);
    }

    #[test]
    fn encodes_zero_as_differing_pair() {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode([false].into_iter());
        let (a, b) = (raw.get(0).unwrap(), raw.get(1).unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn encodes_one_as_equal_pair() {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode([true].into_iter());
        let (a, b) = (raw.get(0).unwrap(), raw.get(1).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_always_inverts() {
        let mut enc = Fm0Encoder::new();
        let data = [true, true, false, false, true, false, true];
        let raw = enc.encode(data.into_iter());
        for s in 1..data.len() {
            let prev_last = raw.get(2 * s - 1).unwrap();
            let first = raw.get(2 * s).unwrap();
            assert_ne!(prev_last, first, "no inversion at symbol {s}");
        }
    }

    #[test]
    fn roundtrip_all_4bit_patterns() {
        for v in 0u8..16 {
            let data: Vec<bool> = (0..4).rev().map(|i| v >> i & 1 == 1).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn roundtrip_long_random_like_pattern() {
        let data: Vec<bool> = (0..256).map(|i| (i * 7 + 3) % 5 < 2).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn odd_length_rejected() {
        let raw = BitBuf::from_u32(0b101, 3);
        assert_eq!(decode(&raw, true), Err(Fm0Error::OddLength));
    }

    #[test]
    fn boundary_violation_detected() {
        // Symbol 0 = "10" (bit 0), symbol 1 starting with 0 repeats the
        // previous level — invalid FM0.
        let raw = BitBuf::from_bools(&[true, false, false, false]);
        assert_eq!(
            decode(&raw, true),
            Err(Fm0Error::MissingBoundaryTransition { symbol: 1 })
        );
        // Lenient decode still yields the pair rule result.
        let dec = decode_lenient(&raw).unwrap();
        assert_eq!(dec.to_bools(), vec![false, true]);
    }

    #[test]
    fn phase_continuity_across_calls() {
        let mut enc = Fm0Encoder::new();
        let first = enc.encode([true, false].into_iter());
        let second = enc.encode([false, true].into_iter());
        let mut joined = first.clone();
        joined.extend(&second);
        // The concatenation must still be a valid FM0 stream.
        let dec = decode(&joined, true).unwrap();
        assert_eq!(dec.to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn level_tracks_last_raw_bit() {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode([true, true, false].into_iter());
        assert_eq!(enc.level(), raw.get(raw.len() - 1).unwrap());
    }

    #[test]
    fn dc_balance_of_alternating_data() {
        // All-zero data (every symbol has a mid transition) must be perfectly
        // DC balanced.
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(std::iter::repeat_n(false, 64));
        let ones = raw.iter().filter(|&b| b).count();
        assert_eq!(ones, 64);
    }
}
