//! # arachnet-core — protocol core of the ARACHNET acoustic backscatter network
//!
//! This crate implements everything that is *protocol* in the paper
//! "Acoustic Backscatter Network for Vehicle Body-in-White" (SIGCOMM 2025):
//!
//! * bit-level primitives ([`bits`]) and the CRC-8 used by uplink packets
//!   ([`crc`]);
//! * the two line codes: FM0 for the uplink ([`fm0`]) and pulse-interval
//!   encoding (PIE) for the downlink ([`pie`]);
//! * the compact packet formats of Fig. 5 ([`packet`]) — a 32-bit uplink
//!   packet (preamble / TID / payload / CRC) and a 10-bit downlink beacon
//!   (preamble / CMD);
//! * the bit-rate / clock-divider table of Sec. 6.3 ([`rates`]);
//! * the distributed slot-allocation MAC of Sec. 5 ([`mac`]): the tag state
//!   machine (MIGRATE / SETTLE), the reader feedback mechanism
//!   (ACK / NACK / EMPTY / RESET), beacon-loss handling, late-arrival
//!   accommodation and future-collision avoidance;
//! * slot arithmetic and the vanilla centralized allocator of Sec. 5.2
//!   ([`slot`]);
//! * the convergence detector used by the evaluation ([`convergence`]) and an
//!   exact absorbing-Markov-chain analysis of the protocol for small
//!   configurations ([`markov`]), mirroring the proof in Appendix C.
//!
//! The crate is deliberately dependency-free: the tag-side code mirrors what
//! would run on a 12 kHz MSP430, so it avoids allocation-heavy idioms in the
//! per-bit hot paths and uses a tiny self-contained PRNG ([`rng`]) instead of
//! an external randomness crate.
//!
//! ## Quick example
//!
//! ```
//! use arachnet_core::packet::{UlPacket, DlBeacon, DlCmd};
//! use arachnet_core::fm0::Fm0Encoder;
//!
//! // A tag builds an uplink packet carrying a 12-bit sensor reading…
//! let pkt = UlPacket::new(3, 0x5A7).unwrap();
//! let bits = pkt.to_bits();
//! // …and modulates it with FM0 for backscatter.
//! let line = Fm0Encoder::new().encode(bits.iter());
//! assert_eq!(line.len(), 2 * bits.len());
//!
//! // The reader answers with a compact beacon.
//! let beacon = DlBeacon::new(DlCmd::ack());
//! assert_eq!(beacon.to_bits().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod convergence;
pub mod crc;
pub mod fm0;
pub mod mac;
pub mod markov;
pub mod packet;
pub mod pie;
pub mod rates;
pub mod rng;
pub mod slot;

pub use bits::BitBuf;
pub use packet::{DlBeacon, DlCmd, UlPacket};
