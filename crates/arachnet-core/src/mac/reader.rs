//! The reader side of the MAC (Secs. 5.3, 5.5, 5.6).
//!
//! The reader talks first: every slot boundary it broadcasts a beacon whose
//! command nibble carries the feedback for the slot that just closed and the
//! EMPTY prediction for the slot that just opened. Its inputs are
//! *slot observations* — whether a packet was decoded and whether the IQ
//! clustering stage flagged a collision (capture effect, Sec. 5.3).
//!
//! Three pieces of intelligence live here:
//!
//! 1. **Feedback** — ACK iff exactly one tag was heard: a decoded packet
//!    with a collision flag still yields NACK, because capture would
//!    otherwise hide the loser (Sec. 5.3);
//! 2. **EMPTY prediction** (Eq. 4) — the opened slot is declared empty iff,
//!    for every known transmission period `p`, no packet was received `p`
//!    slots earlier;
//! 3. **Future-collision avoidance** (Sec. 5.6) — when a previously unseen
//!    tag shows up whose period admits no conflict-free offset under the
//!    current allocation, the reader NACKs it *and* evicts a settled tag
//!    from a low-traffic slot by NACKing that tag until it migrates;
//! 4. **Stale-schedule eviction** — a tag that misses
//!    [`MISS_EVICTION_THRESHOLD`] consecutive expected transmissions is
//!    dropped from `seen`, so a departed tag's inferred schedule stops
//!    poisoning the EMPTY predictor (without this, `predict_empty` would
//!    gate the departed tag's slots forever and re-arrivals could never
//!    claim them back).

use std::collections::{BTreeMap, BTreeSet};

use arachnet_obs::warn;

use crate::mac::ProtocolConfig;
use crate::packet::{DlBeacon, DlCmd};
use crate::slot::{viable_offset, Period, Schedule};

/// Consecutive missed expected transmissions after which the reader evicts
/// a tag's inferred schedule from `seen`. Collisions are ambiguous (the tag
/// may be among the colliders) and neither count as a miss nor clear the
/// run.
pub const MISS_EVICTION_THRESHOLD: u8 = 3;

/// Retained slot-history window. Once the buffer holds twice this many
/// outcomes the oldest half is dropped, so long-horizon soaks run in
/// bounded memory; [`ReaderMac::outcome_at`] answers `None` for evicted
/// slots.
pub const HISTORY_WINDOW: usize = 1 << 14;

/// What the reader's PHY observed during one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotObservation {
    /// TID of a successfully decoded uplink packet, if any.
    pub decoded: Option<u8>,
    /// IQ-domain clustering found more than one backscatterer (Sec. 5.3).
    pub collision: bool,
}

impl SlotObservation {
    /// Nothing heard.
    pub fn empty() -> Self {
        Self {
            decoded: None,
            collision: false,
        }
    }

    /// One packet cleanly decoded.
    pub fn received(tid: u8) -> Self {
        Self {
            decoded: Some(tid),
            collision: false,
        }
    }

    /// Collision; `captured` is a packet that still decoded via capture.
    pub fn collision(captured: Option<u8>) -> Self {
        Self {
            decoded: captured,
            collision: true,
        }
    }
}

/// The reader's record of one past slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// No energy above threshold.
    Empty,
    /// Exactly one tag heard and decoded.
    Received(u8),
    /// Multiple concurrent backscatterers.
    Collision,
}

/// An in-progress eviction (Sec. 5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Eviction {
    /// The late tag that cannot currently fit.
    new_tid: u8,
    /// The settled tag being NACKed out of its slot.
    victim_tid: u8,
    /// The victim's offset at the time the plan was made; NACKs only apply
    /// to transmissions at this offset (its migrated self is welcome).
    victim_offset: u32,
}

/// Reader-side view of a tag that has been heard at least once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TagView {
    period: Period,
    /// Offset inferred from the last clean reception: `slot mod period`.
    offset: u32,
    last_rx_slot: u64,
    /// Consecutive expected transmissions (slots where this schedule fires)
    /// that produced no reception from this tag.
    miss_run: u8,
}

/// The reader MAC engine.
#[derive(Debug, Clone)]
pub struct ReaderMac {
    config: ProtocolConfig,
    /// A-priori knowledge: TID → period for every tag in the deployment
    /// ("All tags periods are known to the reader", Sec. 5.6).
    registry: BTreeMap<u8, Period>,
    /// Tags actually heard so far.
    seen: BTreeMap<u8, TagView>,
    /// Outcome of slot `history_base + i + 1` lives at index `i` (slot
    /// numbering starts at 1 with the first beacon). Bounded: see
    /// [`HISTORY_WINDOW`].
    history: Vec<SlotOutcome>,
    /// Number of old outcomes dropped off the front of `history`.
    history_base: u64,
    /// Index of the currently open slot (== number of beacons sent).
    current_slot: u64,
    eviction: Option<Eviction>,
    pending_reset: bool,
    /// Tags that belong to the re-contending cohort after a RESET: the
    /// Sec. 5.6 new-tag admission logic does not apply to them — they are
    /// expected to collide and sort themselves out (that is exactly what
    /// Fig. 15 measures). Only tags outside the cohort (genuine late
    /// arrivals, e.g. freshly charged devices) face future-collision
    /// admission.
    cohort: BTreeSet<u8>,
}

impl ReaderMac {
    /// Creates a reader knowing every deployed tag's period.
    pub fn new(config: ProtocolConfig, registry: &[(u8, Period)]) -> Self {
        Self {
            config,
            registry: registry.iter().copied().collect(),
            seen: BTreeMap::new(),
            history: Vec::new(),
            history_base: 0,
            current_slot: 0,
            eviction: None,
            pending_reset: false,
            cohort: BTreeSet::new(),
        }
    }

    /// Number of the currently open slot (0 before [`ReaderMac::start`]).
    pub fn current_slot(&self) -> u64 {
        self.current_slot
    }

    /// Immutable view of the retained per-slot history window (oldest
    /// retained slot first; see [`ReaderMac::history_base`]).
    pub fn history(&self) -> &[SlotOutcome] {
        &self.history
    }

    /// Number of outcomes evicted off the front of the history window: the
    /// first entry of [`ReaderMac::history`] describes slot
    /// `history_base() + 1`.
    pub fn history_base(&self) -> u64 {
        self.history_base
    }

    /// Whether an eviction is in progress.
    pub fn evicting(&self) -> bool {
        self.eviction.is_some()
    }

    /// Requests that the next beacon carry RESET; reader state is cleared
    /// when that beacon is issued.
    pub fn queue_reset(&mut self) {
        self.pending_reset = true;
    }

    /// Sends the first beacon, opening slot 1. No feedback is carried.
    pub fn start(&mut self) -> DlBeacon {
        assert_eq!(self.current_slot, 0, "start() called twice");
        self.current_slot = 1;
        let empty = self.predict_empty(self.current_slot);
        DlBeacon::new(DlCmd::nack().with_empty(empty))
    }

    /// Closes the current slot with its observation and issues the beacon
    /// that opens the next slot.
    pub fn end_slot(&mut self, obs: SlotObservation) -> DlBeacon {
        assert!(self.current_slot > 0, "end_slot() before start()");
        if self.pending_reset {
            return self.issue_reset();
        }
        let slot = self.current_slot;

        // Classify the slot.
        let outcome = if obs.collision {
            SlotOutcome::Collision
        } else if let Some(tid) = obs.decoded {
            SlotOutcome::Received(tid)
        } else {
            SlotOutcome::Empty
        };

        // Feedback, possibly overridden by future-collision avoidance.
        let mut ack = matches!(outcome, SlotOutcome::Received(_));
        if let SlotOutcome::Received(tid) = outcome {
            if self.config.future_collision_avoidance {
                ack = self.admit(tid, slot);
            } else {
                self.record_reception(tid, slot);
            }
        }

        self.track_expected_transmissions(slot, outcome);

        self.history.push(outcome);
        debug_assert_eq!(self.history_base + self.history.len() as u64, slot);
        if self.history.len() >= 2 * HISTORY_WINDOW {
            // Drop the oldest half in one amortized move so soak runs stay
            // in bounded memory.
            self.history.drain(..HISTORY_WINDOW);
            self.history_base += HISTORY_WINDOW as u64;
        }
        self.current_slot += 1;
        let empty = self.predict_empty(self.current_slot);
        let cmd = DlCmd {
            ack,
            empty,
            reset: false,
            reserved: false,
        };
        DlBeacon::new(cmd)
    }

    fn issue_reset(&mut self) -> DlBeacon {
        self.pending_reset = false;
        self.seen.clear();
        self.history.clear();
        self.history_base = 0;
        self.eviction = None;
        self.current_slot = 1;
        // Everyone in the registry is expected to re-contend at once.
        self.cohort = self.registry.keys().copied().collect();
        DlBeacon::new(DlCmd::reset())
    }

    fn record_reception(&mut self, tid: u8, slot: u64) {
        let Some(&period) = self.registry.get(&tid) else {
            return; // unknown tag: tracked nowhere, ACKed normally
        };
        let offset = (slot % u64::from(period.get())) as u32;
        self.seen.insert(
            tid,
            TagView {
                period,
                offset,
                last_rx_slot: slot,
                miss_run: 0,
            },
        );
    }

    /// Updates per-tag miss runs for slot `slot` and evicts stale schedules.
    ///
    /// Every seen tag whose inferred schedule fires in this slot was
    /// *expected* to transmit. A clean reception from that tag clears its
    /// run; an empty slot or a clean reception from somebody else counts a
    /// miss; a collision is ambiguous (the tag may be one of the colliders)
    /// and leaves the run untouched. [`MISS_EVICTION_THRESHOLD`] consecutive
    /// misses drop the tag from `seen` so its stale schedule stops gating
    /// [`ReaderMac::predict_empty`].
    fn track_expected_transmissions(&mut self, slot: u64, outcome: SlotOutcome) {
        let mut stale: Vec<u8> = Vec::new();
        for (&tid, view) in self.seen.iter_mut() {
            if slot % u64::from(view.period.get()) != u64::from(view.offset) {
                continue;
            }
            match outcome {
                SlotOutcome::Received(rx) if rx == tid => view.miss_run = 0,
                SlotOutcome::Collision => {}
                _ => {
                    view.miss_run = view.miss_run.saturating_add(1);
                    if view.miss_run >= MISS_EVICTION_THRESHOLD {
                        stale.push(tid);
                    }
                }
            }
        }
        for tid in stale {
            self.seen.remove(&tid);
            warn!(
                "reader: tag {tid} missed {MISS_EVICTION_THRESHOLD} expected transmissions \
                 at slot {slot}; evicting its stale schedule"
            );
            if self.eviction.is_some_and(|ev| ev.victim_tid == tid) {
                // The planned victim vanished; re-plan around the survivors.
                self.refresh_eviction();
            }
        }
    }

    /// Admission control for a clean reception: returns whether to ACK.
    fn admit(&mut self, tid: u8, slot: u64) -> bool {
        let Some(&period) = self.registry.get(&tid) else {
            return true; // not in registry: no prediction possible
        };
        let offset = (slot % u64::from(period.get())) as u32;

        // Active eviction: NACK the victim while it still uses its old slot,
        // and keep NACKing the new tag until a viable offset exists for it.
        if let Some(ev) = self.eviction {
            if tid == ev.victim_tid && offset == ev.victim_offset {
                return false; // force the victim to migrate
            }
            if tid == ev.victim_tid {
                // Victim migrated somewhere new: accept it there and end the
                // pressure on it (the new tag may now fit).
                self.record_reception(tid, slot);
                self.refresh_eviction();
                return true;
            }
            if tid == ev.new_tid {
                let others = self.schedules_excluding(tid);
                if viable_offset(period, &others).is_none() {
                    return false; // still no room
                }
                // Room appeared: does the new tag's *current* position work?
                let cand = Schedule::new(period, offset).unwrap();
                let ok = others.iter().all(|s| !cand.conflicts_with(s));
                if ok {
                    self.record_reception(tid, slot);
                    self.eviction = None;
                    return true;
                }
                return false;
            }
        }

        let is_new = !self.seen.contains_key(&tid) && !self.cohort.contains(&tid);
        let others = self.schedules_excluding(tid);
        if is_new {
            if viable_offset(period, &others).is_none() {
                // Sec. 5.6: no viable option — NACK the newcomer and evict a
                // settled tag from a low-traffic slot.
                self.plan_eviction(tid);
                return false;
            }
            // Viable options exist, but is *this* one of them?
            let cand = Schedule::new(period, offset).unwrap();
            if others.iter().any(|s| cand.conflicts_with(s)) {
                // The newcomer picked a slot that will collide with an
                // existing (longer-period) tag in the future. The reader can
                // see this even though the present slot was clean.
                return false;
            }
        }
        self.record_reception(tid, slot);
        true
    }

    /// Schedules of every seen tag except `except`.
    fn schedules_excluding(&self, except: u8) -> Vec<Schedule> {
        self.seen
            .iter()
            .filter(|(&t, _)| t != except)
            .map(|(_, v)| Schedule::new(v.period, v.offset).expect("stored offsets are valid"))
            .collect()
    }

    /// Chooses an eviction victim for `new_tid`: among seen tags whose
    /// removal makes the newcomer viable, prefer the lowest-rate tag
    /// (largest period — the "less crowded slot"), tie-break on lowest TID.
    fn plan_eviction(&mut self, new_tid: u8) {
        let Some(&new_period) = self.registry.get(&new_tid) else {
            return;
        };
        let mut best: Option<(u32, u8, u32)> = None; // (period, tid, offset)
        for (&tid, view) in &self.seen {
            if tid == new_tid {
                continue;
            }
            // Would removing this candidate victim make the newcomer viable?
            let without: Vec<Schedule> = self
                .seen
                .iter()
                .filter(|(&t, _)| t != tid && t != new_tid)
                .map(|(_, v)| Schedule::new(v.period, v.offset).unwrap())
                .collect();
            if viable_offset(new_period, &without).is_some() {
                let key = (view.period.get(), tid, view.offset);
                let better = match best {
                    None => true,
                    Some((bp, bt, _)) => key.0 > bp || (key.0 == bp && key.1 < bt),
                };
                if better {
                    best = Some(key);
                }
            }
        }
        if let Some((_, victim_tid, victim_offset)) = best {
            self.eviction = Some(Eviction {
                new_tid,
                victim_tid,
                victim_offset,
            });
        }
    }

    /// After the victim moved, check whether the pending newcomer now has a
    /// viable offset; if so the eviction plan has served its purpose. If
    /// the victim merely moved to another blocking position, plan a fresh
    /// eviction (possibly the same tag at its new offset) — otherwise the
    /// stale plan would never NACK anyone again and the newcomer would be
    /// locked out forever.
    fn refresh_eviction(&mut self) {
        let Some(ev) = self.eviction else { return };
        let Some(&p) = self.registry.get(&ev.new_tid) else {
            self.eviction = None;
            return;
        };
        let others = self.schedules_excluding(ev.new_tid);
        if viable_offset(p, &others).is_some() {
            self.eviction = None;
        } else {
            self.eviction = None;
            self.plan_eviction(ev.new_tid);
        }
    }

    /// The EMPTY predictor (Eq. 4, sharpened with the reader's knowledge).
    ///
    /// The paper's formula checks "no packet received in slot `s − p_i`"
    /// for each appearing tag — but applied literally, a period-4 tag's
    /// packets also poison the period-2 look-back, and with several fast
    /// periods in the registry *every* slot can end up flagged occupied,
    /// permanently gating new arrivals. The reader decodes TIDs and knows
    /// each tag's period, so it can do strictly better: a slot is predicted
    /// occupied iff some *heard* tag's inferred schedule
    /// (`s ≡ offset_j (mod p_j)`) fires in it.
    fn predict_empty(&self, slot: u64) -> bool {
        !self
            .seen
            .values()
            .any(|v| slot % u64::from(v.period.get()) == u64::from(v.offset))
    }

    /// Outcome of a past slot (1-based), if still inside the retained
    /// history window. The index is computed relative to `history_base`,
    /// so it stays a small number even at `u64` slot counts (no 32-bit
    /// `usize` truncation on long-horizon soaks).
    pub fn outcome_at(&self, slot: u64) -> Option<SlotOutcome> {
        if slot == 0 || slot <= self.history_base {
            return None;
        }
        let idx = usize::try_from(slot - 1 - self.history_base).ok()?;
        self.history.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u32) -> Period {
        Period::new(v).unwrap()
    }

    fn reader(registry: &[(u8, u32)]) -> ReaderMac {
        let reg: Vec<(u8, Period)> = registry.iter().map(|&(t, v)| (t, p(v))).collect();
        ReaderMac::new(ProtocolConfig::default(), &reg)
    }

    #[test]
    fn start_opens_slot_one() {
        let mut r = reader(&[(1, 4)]);
        let b = r.start();
        assert_eq!(r.current_slot(), 1);
        assert!(!b.cmd.ack);
        assert!(b.cmd.empty, "no history: everything predicted empty");
    }

    #[test]
    fn clean_reception_is_acked() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        let b = r.end_slot(SlotObservation::received(1));
        assert!(b.cmd.ack);
    }

    #[test]
    fn collision_overrides_capture() {
        // Sec. 5.3: even a decodable packet is NACKed if clustering saw >1
        // transmitter.
        let mut r = reader(&[(1, 4), (2, 4)]);
        r.start();
        let b = r.end_slot(SlotObservation::collision(Some(1)));
        assert!(!b.cmd.ack);
        assert_eq!(r.outcome_at(1), Some(SlotOutcome::Collision));
    }

    #[test]
    fn empty_slot_is_nacked_harmlessly() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        let b = r.end_slot(SlotObservation::empty());
        assert!(!b.cmd.ack);
        assert_eq!(r.outcome_at(1), Some(SlotOutcome::Empty));
    }

    #[test]
    fn empty_flag_tracks_periodic_occupancy() {
        // Tag 1, period 4, received in slots 2 and 6 ⇒ Eq. 4 predicts slots
        // 6 and 10 occupied (look-back of exactly one period from actual
        // receptions); everything else empty.
        let mut r = reader(&[(1, 4)]);
        r.start(); // slot 1 open
        let mut empties = Vec::new();
        for s in 1..=9u64 {
            let obs = if s == 2 || s == 6 {
                SlotObservation::received(1)
            } else {
                SlotObservation::empty()
            };
            let b = r.end_slot(obs);
            // b opens slot s+1.
            empties.push((s + 1, b.cmd.empty));
        }
        for (slot, empty) in empties {
            let expect_occupied = slot == 6 || slot == 10;
            assert_eq!(empty, !expect_occupied, "slot {slot}");
        }
    }

    #[test]
    fn empty_flag_considers_all_known_periods() {
        let mut r = reader(&[(1, 2), (2, 8)]);
        r.start();
        // Tag 2 (p=8) received in slot 1.
        r.end_slot(SlotObservation::received(2)); // opens 2
        for _ in 2..=8 {
            r.end_slot(SlotObservation::empty());
        }
        // We are now opening slot 9 = 1 + 8 → predicted occupied via p=8.
        // Verify through the last beacon by replaying: slot 9 look-back hits
        // slot 1 (p=8) which was Received, and slot 7 (p=2) which was empty.
        // (The beacon for slot 9 was returned by the last end_slot call.)
        // Re-derive via the public API:
        assert_eq!(r.current_slot(), 9);
        assert_eq!(r.outcome_at(1), Some(SlotOutcome::Received(2)));
        // Direct prediction check:
        assert!(!r.predict_empty(9));
        assert!(r.predict_empty(8));
    }

    #[test]
    fn collision_slots_do_not_mark_occupancy() {
        // Eq. 4 keys on "no packet received" — a collision means nothing was
        // received, so the predictor treats it as free.
        let mut r = reader(&[(1, 4)]);
        r.start();
        r.end_slot(SlotObservation::collision(None)); // slot 1
        for _ in 0..3 {
            r.end_slot(SlotObservation::empty());
        }
        assert!(r.predict_empty(5));
    }

    #[test]
    fn reset_clears_state_and_restarts_slots() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        r.end_slot(SlotObservation::received(1));
        r.queue_reset();
        let b = r.end_slot(SlotObservation::empty());
        assert!(b.cmd.reset);
        assert_eq!(r.current_slot(), 1);
        assert!(r.history().is_empty());
    }

    #[test]
    fn future_collision_newcomer_is_nacked_when_unviable() {
        // Paper's Sec. 5.6 example: tags 1 and 2 (p=4) settled at offsets 2
        // and 3; tag 3 (p=2) cannot fit anywhere.
        let mut r = reader(&[(1, 4), (2, 4), (3, 2)]);
        r.start(); // slot 1
                   // Establish tag 1 at offset 2 (slot 2) and tag 2 at offset 3 (slot 3).
        r.end_slot(SlotObservation::empty()); // slot 1 done, open 2
        let b = r.end_slot(SlotObservation::received(1)); // slot 2
        assert!(b.cmd.ack);
        let b = r.end_slot(SlotObservation::received(2)); // slot 3
        assert!(b.cmd.ack);
        // Tag 3 transmits in slot 4 (offset 0 mod 2), clean — but unviable.
        let b = r.end_slot(SlotObservation::received(3));
        assert!(!b.cmd.ack, "newcomer must be NACKed despite clean decode");
        assert!(r.evicting());
    }

    #[test]
    fn future_collision_evicts_victim_until_it_moves() {
        let mut r = reader(&[(1, 4), (2, 4), (3, 2)]);
        r.start();
        r.end_slot(SlotObservation::empty()); // slot 1
        r.end_slot(SlotObservation::received(1)); // slot 2: tag1 offset 2
        r.end_slot(SlotObservation::received(2)); // slot 3: tag2 offset 3
        r.end_slot(SlotObservation::received(3)); // slot 4: newcomer NACKed
        assert!(r.evicting());
        // Victim should be tag 1 (same period as tag 2, lower TID).
        // Tag 1 transmits again at its old offset (slot 6): NACK.
        r.end_slot(SlotObservation::empty()); // slot 5
        let b = r.end_slot(SlotObservation::received(1)); // slot 6 = offset 2
        assert!(!b.cmd.ack, "victim at old offset must be NACKed");
        // Tag 1 migrates to offset 1 (slot 9): ACKed, eviction may end once
        // the newcomer fits. After tag1 moves to offset 1, tag3 (p=2) needs
        // an offset o with o != 1 mod 2 and o != 3 mod 2 → both odd → still
        // unviable! Offsets mod 2: tag1@1, tag2@3 → both 1 → viable offset 0.
        r.end_slot(SlotObservation::empty()); // slot 7
        r.end_slot(SlotObservation::empty()); // slot 8
        let b = r.end_slot(SlotObservation::received(1)); // slot 9 → offset 1
        assert!(
            b.cmd.ack,
            "migrated victim must be accepted at a new offset"
        );
        assert!(!r.evicting(), "newcomer now viable (offset 0 mod 2)");
        // Tag 3 retries at an even slot (offset 0): ACK.
        let b = r.end_slot(SlotObservation::received(3)); // slot 10, 10%2=0
        assert!(b.cmd.ack);
    }

    #[test]
    fn newcomer_with_viable_but_conflicting_choice_is_nacked() {
        // Tag 1 (p=4) at offset 2. Newcomer tag 2 (p=4) transmits at slot 6
        // → offset 2: clean *now*? No — same offset means they'd collide in
        // the same slots; the observation itself would be a collision. Use
        // p=8 newcomer at offset 2 (slot 10): clean in slot 10 only if tag 1
        // is silent there — but 10 % 4 = 2 is tag 1's slot, so a clean
        // observation can only happen if tag 1 missed a beacon. The reader
        // still predicts the future conflict and NACKs.
        let mut r = reader(&[(1, 4), (2, 8)]);
        r.start();
        r.end_slot(SlotObservation::empty()); // 1
        r.end_slot(SlotObservation::received(1)); // 2: tag1 offset 2
        for _ in 3..=9 {
            r.end_slot(SlotObservation::empty());
        }
        let b = r.end_slot(SlotObservation::received(2)); // slot 10, offset 2 (mod 8)
        assert!(!b.cmd.ack, "conflicting future schedule must be NACKed");
    }

    #[test]
    fn avoidance_disabled_acks_everything_clean() {
        let mut r = ReaderMac::new(
            ProtocolConfig {
                future_collision_avoidance: false,
                ..ProtocolConfig::default()
            },
            &[(1, p(4)), (2, p(4)), (3, p(2))],
        );
        r.start();
        r.end_slot(SlotObservation::empty());
        r.end_slot(SlotObservation::received(1));
        r.end_slot(SlotObservation::received(2));
        let b = r.end_slot(SlotObservation::received(3));
        assert!(b.cmd.ack, "without Sec. 5.6 the newcomer is blindly ACKed");
    }

    #[test]
    fn unknown_tid_is_acked_without_tracking() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        let b = r.end_slot(SlotObservation::received(9));
        assert!(b.cmd.ack);
        assert!(!r.evicting());
    }

    #[test]
    fn departed_tag_is_evicted_and_its_slot_recovers() {
        // Join → leave → rejoin. Pre-fix, `seen` never evicted, so the
        // departed tag's schedule kept `predict_empty` false for its slots
        // forever and the EMPTY gate blocked any re-arrival there.
        let (_, warns) = arachnet_obs::capture(|| {
            let mut r = reader(&[(1, 4)]);
            r.start();
            r.end_slot(SlotObservation::empty()); // slot 1
            r.end_slot(SlotObservation::received(1)); // slot 2 → offset 2
            assert!(!r.predict_empty(6), "live schedule gates its slot");
            // Tag 1 departs; its expected slots 6, 10 and 14 all go empty.
            for _ in 3..=14 {
                r.end_slot(SlotObservation::empty());
            }
            assert!(
                r.predict_empty(18),
                "stale schedule must be evicted so a re-arrival can claim the slot"
            );
            // The tag rejoins at the same offset: clean ACK, re-tracked.
            for _ in 15..=17 {
                r.end_slot(SlotObservation::empty());
            }
            let b = r.end_slot(SlotObservation::received(1)); // slot 18 → offset 2
            assert!(b.cmd.ack, "rejoining tag must be re-admitted");
            assert!(!r.predict_empty(22), "rejoined schedule gates again");
        });
        assert!(
            warns.iter().any(|w| w.contains("evicting")),
            "stale eviction must emit an obs warn: {warns:?}"
        );
    }

    #[test]
    fn collisions_do_not_advance_the_miss_run() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        r.end_slot(SlotObservation::empty()); // slot 1
        r.end_slot(SlotObservation::received(1)); // slot 2 → offset 2
        // Collisions in every expected slot are ambiguous: the tag may be
        // among the colliders, so its schedule must survive indefinitely.
        for s in 3..=30u64 {
            let obs = if s % 4 == 2 {
                SlotObservation::collision(None)
            } else {
                SlotObservation::empty()
            };
            r.end_slot(obs);
        }
        assert!(!r.predict_empty(34), "colliding tag is still tracked");
    }

    #[test]
    fn history_window_stays_bounded_on_long_horizons() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        let total = 2 * HISTORY_WINDOW as u64 + 10;
        for _ in 0..total {
            r.end_slot(SlotObservation::empty());
        }
        assert!(
            r.history().len() < 2 * HISTORY_WINDOW,
            "history must stay bounded, got {}",
            r.history().len()
        );
        assert_eq!(r.history_base(), HISTORY_WINDOW as u64);
        assert_eq!(r.outcome_at(1), None, "evicted slots answer None");
        assert_eq!(r.outcome_at(total), Some(SlotOutcome::Empty));
        assert_eq!(r.outcome_at(total + 5), None, "future slots answer None");
    }

    #[test]
    fn outcome_at_bounds() {
        let mut r = reader(&[(1, 4)]);
        r.start();
        r.end_slot(SlotObservation::empty());
        assert_eq!(r.outcome_at(0), None);
        assert_eq!(r.outcome_at(1), Some(SlotOutcome::Empty));
        assert_eq!(r.outcome_at(2), None);
    }
}
