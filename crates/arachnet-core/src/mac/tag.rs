//! The tag MAC state machine (Fig. 7, Secs. 5.3–5.5).
//!
//! Each tag runs this machine inside the "network operation" interrupt
//! handler: a software interrupt fires when a complete beacon has been
//! decoded (Sec. 4.3), the machine consumes the beacon's command nibble and
//! answers with a [`TagAction`] that tells the modulator whether to
//! backscatter an uplink packet in the slot that just opened.
//!
//! Key behaviours, straight from the paper:
//!
//! * tags start in **MIGRATE** with a uniformly random offset;
//! * an ACK for a slot in which the tag transmitted moves it to **SETTLE**;
//! * a NACK in MIGRATE triggers an immediate random re-selection;
//! * a NACK in SETTLE increments a failure counter; `N` consecutive NACKs
//!   (paper: 3) knock the tag back to MIGRATE;
//! * tags react to ACK/NACK **only if they transmitted in the previous
//!   slot** — the beacon carries no tag ID;
//! * a beacon missed (detected by a local timer) sends the tag back to
//!   MIGRATE with a fresh offset (Sec. 5.4 refinement) and, crucially, the
//!   local slot counter does *not* advance — the desynchronisation analysed
//!   in Eq. 3;
//! * a tag that has never been ACKed since activation is a *new arrival* and
//!   only contends in slots the reader flags EMPTY (Sec. 5.5 refinement).

use crate::mac::ProtocolConfig;
use crate::packet::DlCmd;
use crate::rng::TagRng;
use crate::slot::Period;
use arachnet_obs::{EventKind, MigrateReason};

/// Primary state of the machine (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacState {
    /// Searching for a collision-free offset via trial and error.
    Migrate,
    /// Holding a seemingly collision-free offset.
    Settle,
}

/// What the tag does in the slot a beacon just opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagAction {
    /// Backscatter an uplink packet in this slot.
    pub transmit: bool,
}

/// The per-tag MAC state machine.
#[derive(Debug, Clone)]
pub struct TagMac {
    tid: u8,
    period: Period,
    config: ProtocolConfig,
    state: MacState,
    offset: u32,
    /// Local slot counter `s_i`; increments once per *received* beacon.
    local_slot: u64,
    /// Consecutive-NACK counter `c_i`.
    nack_run: u8,
    /// Whether the tag transmitted in the slot the incoming feedback covers.
    tx_last_slot: bool,
    /// True once the tag has been ACKed since activation.
    integrated: bool,
    /// The "newly arriving" condition of Sec. 5.5: set at power-on,
    /// cleared by the first ACK. A RESET command does *not* set it — a
    /// reset cohort re-contends freely; only tags that just charged up
    /// tip-toe in through EMPTY slots.
    new_arrival: bool,
    rng: TagRng,
    /// State-machine transitions from the most recent callback
    /// (`on_beacon` / `on_beacon_timeout` / `power_on_reset`), for the
    /// sim layer's flight recorder. Cleared at the start of each callback;
    /// capacity is reused, so pushes allocate at most once per tag.
    events: Vec<EventKind>,
}

impl TagMac {
    /// Creates a freshly activated tag: MIGRATE state, random offset.
    pub fn new(tid: u8, period: Period, config: ProtocolConfig, rng: TagRng) -> Self {
        let mut mac = Self {
            tid,
            period,
            config,
            state: MacState::Migrate,
            offset: 0,
            local_slot: 0,
            nack_run: 0,
            tx_last_slot: false,
            integrated: false,
            new_arrival: true,
            rng,
            events: Vec::new(),
        };
        mac.offset = mac.random_offset();
        mac
    }

    /// Tag identifier.
    pub fn tid(&self) -> u8 {
        self.tid
    }

    /// Transmission period.
    pub fn period(&self) -> Period {
        self.period
    }

    /// Current state.
    pub fn state(&self) -> MacState {
        self.state
    }

    /// Current slot offset `a_i`.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// Local slot counter `s_i`.
    pub fn local_slot(&self) -> u64 {
        self.local_slot
    }

    /// Consecutive-NACK counter `c_i`.
    pub fn nack_run(&self) -> u8 {
        self.nack_run
    }

    /// Whether this tag has been integrated (ACKed at least once since
    /// activation / RESET).
    pub fn is_integrated(&self) -> bool {
        self.integrated
    }

    /// Whether the tag is still a gated "new arrival" (Sec. 5.5).
    pub fn is_new_arrival(&self) -> bool {
        self.new_arrival
    }

    /// Whether the tag transmitted in the most recently opened slot.
    pub fn transmitted_last_slot(&self) -> bool {
        self.tx_last_slot
    }

    fn random_offset(&mut self) -> u32 {
        self.rng.below(u64::from(self.period.get())) as u32
    }

    /// State-machine transition events from the most recent callback
    /// (flight-recorder feed; see `arachnet-obs`). The slice is valid until
    /// the next `on_beacon` / `on_beacon_timeout` / `power_on_reset` call.
    pub fn events(&self) -> &[EventKind] {
        &self.events
    }

    fn migrate_to(&mut self, reason: MigrateReason) {
        let from = self.offset as u16;
        self.offset = self.random_offset();
        self.events.push(EventKind::TagMigrated { from, to: self.offset as u16, reason });
    }

    /// Handles a decoded beacon. The beacon closes the previous slot
    /// (delivering its ACK/NACK) and opens the next; the returned action
    /// says whether to transmit in the newly opened slot.
    pub fn on_beacon(&mut self, cmd: DlCmd) -> TagAction {
        self.events.clear();
        if cmd.reset {
            self.apply_reset(MigrateReason::Reset);
            return TagAction { transmit: false };
        }

        // 1. Feedback phase — only relevant if we transmitted last slot.
        if self.tx_last_slot {
            self.events.push(EventKind::AckNack { ack: cmd.ack });
            if cmd.ack {
                if self.state == MacState::Migrate {
                    self.events.push(EventKind::Settled { offset: self.offset as u16 });
                }
                self.state = MacState::Settle;
                self.nack_run = 0;
                self.integrated = true;
                self.new_arrival = false;
            } else {
                match self.state {
                    MacState::Migrate => {
                        // Collision while probing: try a different offset.
                        self.migrate_to(MigrateReason::FeedbackNack);
                    }
                    MacState::Settle => {
                        self.nack_run += 1;
                        if self.nack_run >= self.config.nack_threshold {
                            self.state = MacState::Migrate;
                            self.migrate_to(MigrateReason::NackRun);
                            self.nack_run = 0;
                        }
                    }
                }
            }
        }

        // 2. Slot bookkeeping: the beacon advances the local counter.
        // Saturating, not wrapping: a wrap would silently shift
        // `local_slot % period` and break the settled schedule. At one
        // 1-second slot per tick, u64 saturation is ~5.8e11 years away, so
        // long-horizon soaks can never hit either edge — but saturation is
        // the fail-safe that keeps the schedule arithmetic monotone.
        self.local_slot = self.local_slot.saturating_add(1);

        // 3. Transmission decision (Eq. 2), gated by EMPTY for new arrivals.
        let my_turn = self.local_slot % u64::from(self.period.get()) == u64::from(self.offset);
        let gated = self.config.empty_gating && self.new_arrival && !cmd.empty;
        if my_turn && gated {
            // Our chosen slot is predicted occupied: abandoning the turn
            // without re-selecting would stall forever, so migrate to a new
            // candidate offset and wait for an EMPTY slot there.
            self.migrate_to(MigrateReason::EmptyGated);
        }
        let transmit = my_turn && !gated;
        self.tx_last_slot = transmit;
        TagAction { transmit }
    }

    /// Handles a beacon-loss timeout (the tag's expected-beacon timer
    /// expired without a decode — Sec. 5.4 refinement). The local counter
    /// does **not** advance; the tag conservatively migrates.
    pub fn on_beacon_timeout(&mut self) {
        self.events.clear();
        // We certainly did not transmit in the lost slot: transmissions are
        // beacon-triggered (reader-talks-first).
        self.tx_last_slot = false;
        if self.config.beacon_timeout_migrate {
            self.state = MacState::Migrate;
            self.migrate_to(MigrateReason::BeaconTimeout);
            self.nack_run = 0;
        }
    }

    /// Re-initializes the machine as a cold boot would (used when the
    /// low-voltage cutoff power-cycles the MCU). Equivalent to receiving a
    /// RESET beacon, but initiated by hardware. The RNG stream continues —
    /// a rebooted tag does not replay its old offset choices.
    pub fn power_on_reset(&mut self) {
        self.events.clear();
        self.apply_reset(MigrateReason::PowerOnReset);
        self.new_arrival = true; // overrides apply_reset: cold boots are new
    }

    fn apply_reset(&mut self, reason: MigrateReason) {
        self.state = MacState::Migrate;
        self.migrate_to(reason);
        self.local_slot = 0;
        self.nack_run = 0;
        self.tx_last_slot = false;
        self.integrated = false;
        // A RESET beacon restarts the *whole* network: every recipient is
        // part of the re-contending cohort, so nobody is a gated "new
        // arrival" afterwards. (power_on_reset() re-arms the gate — a tag
        // that just charged up really is new.)
        self.new_arrival = false;
    }

    /// Test/analysis hook: force a specific offset (e.g. to replay the
    /// Table 1 layout). Not reachable from the protocol itself.
    pub fn force_schedule(&mut self, state: MacState, offset: u32) {
        assert!(offset < self.period.get());
        self.state = state;
        self.offset = offset;
        if state == MacState::Settle {
            self.integrated = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(period: u32, seed: u64) -> TagMac {
        TagMac::new(
            1,
            Period::new(period).unwrap(),
            ProtocolConfig {
                empty_gating: false,
                ..ProtocolConfig::default()
            },
            TagRng::new(seed),
        )
    }

    fn beacon_ack() -> DlCmd {
        DlCmd::ack().with_empty(true)
    }

    fn beacon_nack() -> DlCmd {
        DlCmd::nack().with_empty(true)
    }

    /// Drives the tag with NACK beacons until it transmits; returns slots taken.
    fn drive_to_tx(tag: &mut TagMac, max: u32) -> u32 {
        for i in 0..max {
            if tag.on_beacon(beacon_nack()).transmit {
                return i;
            }
        }
        panic!("tag never transmitted in {max} slots");
    }

    #[test]
    fn starts_in_migrate_with_valid_offset() {
        let tag = mk(8, 42);
        assert_eq!(tag.state(), MacState::Migrate);
        assert!(tag.offset() < 8);
        assert!(!tag.is_integrated());
    }

    #[test]
    fn transmits_at_its_offset_only() {
        let mut tag = mk(4, 7);
        let offset = tag.offset();
        let mut fired = Vec::new();
        for s in 1..=12u64 {
            // Send idle beacons (NACK but tag didn't transmit → ignored).
            let act = tag.on_beacon(beacon_nack());
            if act.transmit {
                fired.push(s);
                // Immediately ACK so it stays put (feedback consumed next beacon).
                let _ = tag.on_beacon(beacon_ack());
                break;
            }
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0] % 4, u64::from(offset));
    }

    #[test]
    fn ack_after_transmit_settles() {
        let mut tag = mk(4, 3);
        drive_to_tx(&mut tag, 8);
        assert!(tag.transmitted_last_slot());
        tag.on_beacon(beacon_ack());
        assert_eq!(tag.state(), MacState::Settle);
        assert!(tag.is_integrated());
        assert_eq!(tag.nack_run(), 0);
    }

    #[test]
    fn ack_without_transmit_is_ignored() {
        let mut tag = mk(8, 5);
        // Ensure the tag did not transmit at this beacon (drive until a
        // non-transmit slot right before the ACK).
        loop {
            let act = tag.on_beacon(beacon_nack().with_empty(true));
            if !act.transmit {
                break;
            }
        }
        let state_before = tag.state();
        tag.on_beacon(beacon_ack());
        // The ACK must not settle a tag that did not transmit. (It may have
        // transmitted in the *new* slot, but state only changes on feedback.)
        if state_before == MacState::Migrate {
            assert_ne!(
                (tag.state(), tag.is_integrated()),
                (MacState::Settle, true),
                "ACK wrongly consumed by non-transmitting tag"
            );
        }
    }

    #[test]
    fn nack_in_migrate_reselects_offset() {
        let mut tag = mk(32, 11);
        let mut changes = 0;
        let mut last = tag.offset();
        for _ in 0..10 {
            drive_to_tx(&mut tag, 64);
            tag.on_beacon(beacon_nack());
            assert_eq!(tag.state(), MacState::Migrate);
            if tag.offset() != last {
                changes += 1;
            }
            last = tag.offset();
        }
        // With 32 offsets, re-selection collides with the old one rarely.
        assert!(changes >= 7, "offset changed only {changes}/10 times");
    }

    #[test]
    fn settled_tag_survives_fewer_than_n_nacks() {
        let mut tag = mk(4, 9);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        let offset = tag.offset();
        // Two NACKs (N=3): must stay settled on the same offset.
        for expected_run in 1..=2u8 {
            // Wait for its next transmission.
            drive_to_tx(&mut tag, 8);
            tag.on_beacon(beacon_nack());
            assert_eq!(tag.state(), MacState::Settle, "run {expected_run}");
            assert_eq!(tag.offset(), offset);
            assert_eq!(tag.nack_run(), expected_run);
        }
    }

    #[test]
    fn n_consecutive_nacks_trigger_migrate() {
        let mut tag = mk(4, 13);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        for _ in 0..3 {
            drive_to_tx(&mut tag, 8);
            tag.on_beacon(beacon_nack());
        }
        assert_eq!(tag.state(), MacState::Migrate);
        assert_eq!(tag.nack_run(), 0);
    }

    #[test]
    fn ack_resets_nack_counter() {
        let mut tag = mk(4, 17);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        // Two NACKs…
        for _ in 0..2 {
            drive_to_tx(&mut tag, 8);
            tag.on_beacon(beacon_nack());
        }
        assert_eq!(tag.nack_run(), 2);
        // …then an ACK clears the run…
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        assert_eq!(tag.nack_run(), 0);
        // …so two more NACKs still do not evict.
        for _ in 0..2 {
            drive_to_tx(&mut tag, 8);
            tag.on_beacon(beacon_nack());
        }
        assert_eq!(tag.state(), MacState::Settle);
    }

    #[test]
    fn beacon_timeout_migrates_and_freezes_counter() {
        let mut tag = mk(4, 21);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        let slot_before = tag.local_slot();
        tag.on_beacon_timeout();
        assert_eq!(tag.state(), MacState::Migrate);
        assert_eq!(
            tag.local_slot(),
            slot_before,
            "missed beacon must not advance s_i"
        );
        assert!(!tag.transmitted_last_slot());
    }

    #[test]
    fn beacon_timeout_without_refinement_keeps_state() {
        let mut tag = TagMac::new(
            1,
            Period::new(4).unwrap(),
            ProtocolConfig {
                beacon_timeout_migrate: false,
                empty_gating: false,
                ..ProtocolConfig::default()
            },
            TagRng::new(1),
        );
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        tag.on_beacon_timeout();
        assert_eq!(tag.state(), MacState::Settle);
    }

    #[test]
    fn missed_beacon_shifts_effective_offset_by_one() {
        // Eq. 3: after one missed beacon the tag fires one global slot later.
        let mut tag = mk(4, 25);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        // Disable the timeout refinement effect by reading the offset, then
        // simulate the *unrefined* loss: simply don't deliver one beacon.
        let offset = tag.offset();
        let s_local = tag.local_slot();
        // Global slot g tracks beacons sent; the tag missed one, so when the
        // tag's local counter shows s_local + k, the global slot is
        // s_local + k + 1. The tag fires when (s_local + k) % 4 == offset,
        // i.e. at global slots ≡ offset + 1 (mod 4).
        let mut global = s_local; // before the loss, synchronized
        global += 1; // lost beacon (tag does not see it)
        let mut fired_at = None;
        for _ in 0..8 {
            let act = tag.on_beacon(beacon_nack());
            global += 1;
            if act.transmit {
                fired_at = Some(global);
                break;
            }
        }
        let fired = fired_at.expect("tag must fire within two periods");
        assert_eq!(fired % 4, (u64::from(offset) + 1) % 4, "Eq. 3 shift");
    }

    #[test]
    fn reset_returns_to_initial_conditions() {
        let mut tag = mk(4, 29);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        assert!(tag.is_integrated());
        let act = tag.on_beacon(DlCmd::reset());
        assert!(!act.transmit);
        assert_eq!(tag.state(), MacState::Migrate);
        assert_eq!(tag.local_slot(), 0);
        assert!(!tag.is_integrated());
        assert_eq!(tag.nack_run(), 0);
    }

    #[test]
    fn empty_gating_blocks_new_arrivals() {
        let mut tag = TagMac::new(
            2,
            Period::new(2).unwrap(),
            ProtocolConfig::default(), // empty_gating = true
            TagRng::new(31),
        );
        // Never flag EMPTY: tag must never transmit.
        for _ in 0..16 {
            let act = tag.on_beacon(DlCmd::nack().with_empty(false));
            assert!(!act.transmit);
        }
        // Flag EMPTY: tag transmits at its next turn.
        let mut fired = false;
        for _ in 0..4 {
            if tag.on_beacon(DlCmd::nack().with_empty(true)).transmit {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn integrated_tag_ignores_empty_flag() {
        let mut tag = TagMac::new(
            2,
            Period::new(2).unwrap(),
            ProtocolConfig::default(),
            TagRng::new(37),
        );
        // Integrate it first (EMPTY = true during contention).
        loop {
            let act = tag.on_beacon(DlCmd::nack().with_empty(true));
            if act.transmit {
                tag.on_beacon(DlCmd::ack().with_empty(true));
                break;
            }
        }
        assert!(tag.is_integrated());
        // Now EMPTY = false everywhere: a settled tag still transmits.
        let mut fired = false;
        for _ in 0..4 {
            if tag.on_beacon(DlCmd::nack().with_empty(false)).transmit {
                fired = true;
                break;
            }
        }
        // One NACK won't unsettle it (N=3), so it must have fired.
        assert!(fired, "settled tag must ignore EMPTY gating");
    }

    #[test]
    fn transitions_surface_as_events() {
        use arachnet_obs::{EventKind, MigrateReason};
        let mut tag = mk(4, 43);
        drive_to_tx(&mut tag, 8);
        tag.on_beacon(beacon_ack());
        // ACK while migrating: AckNack + Settled.
        assert!(tag
            .events()
            .iter()
            .any(|e| matches!(e, EventKind::Settled { .. })));
        assert!(tag
            .events()
            .iter()
            .any(|e| matches!(e, EventKind::AckNack { ack: true })));
        // Three NACKs evict: the third carries a nack-run migration.
        for _ in 0..3 {
            drive_to_tx(&mut tag, 8);
            tag.on_beacon(beacon_nack());
        }
        assert!(tag.events().iter().any(|e| matches!(
            e,
            EventKind::TagMigrated { reason: MigrateReason::NackRun, .. }
        )));
        // Beacon timeout migrates with its own reason.
        tag.on_beacon_timeout();
        assert!(tag.events().iter().any(|e| matches!(
            e,
            EventKind::TagMigrated { reason: MigrateReason::BeaconTimeout, .. }
        )));
        // Events are cleared by the next callback.
        tag.on_beacon(beacon_nack());
        assert!(!tag.events().iter().any(|e| matches!(
            e,
            EventKind::TagMigrated { reason: MigrateReason::BeaconTimeout, .. }
        )));
    }

    #[test]
    fn force_schedule_sets_state() {
        let mut tag = mk(8, 41);
        tag.force_schedule(MacState::Settle, 5);
        assert_eq!(tag.state(), MacState::Settle);
        assert_eq!(tag.offset(), 5);
        assert!(tag.is_integrated());
    }
}
