//! The distributed slot-allocation MAC of Sec. 5.
//!
//! * [`tag`] — the per-tag state machine (Fig. 7): MIGRATE / SETTLE states,
//!   random offset re-selection, the consecutive-NACK counter, beacon-loss
//!   handling (Sec. 5.4) and the EMPTY-gated integration of late arrivals
//!   (Sec. 5.5).
//! * [`reader`] — the reader side: ACK/NACK feedback with collision
//!   override (Sec. 5.3), the EMPTY-flag predictor (Eq. 4), and the
//!   future-collision avoidance / eviction logic (Sec. 5.6).
//!
//! The two halves communicate *only* through [`crate::packet::DlCmd`]
//! beacons and slot-level observations — exactly the information that
//! crosses the acoustic channel in the real system.

pub mod reader;
pub mod tag;

pub use reader::{ReaderMac, SlotObservation, SlotOutcome};
pub use tag::{MacState, TagAction, TagMac};

/// Tunable protocol parameters. Defaults reproduce the paper's deployment;
/// the boolean switches expose each refinement for ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Consecutive-NACK threshold `N` that knocks a SETTLEd tag back to
    /// MIGRATE (Sec. 5.3; paper uses 3).
    pub nack_threshold: u8,
    /// Sec. 5.4 refinement: a tag that detects a missed beacon by timer
    /// immediately re-enters MIGRATE instead of waiting for NACKs.
    pub beacon_timeout_migrate: bool,
    /// Sec. 5.5 refinement: late-arriving tags transmit only in slots the
    /// reader flags EMPTY.
    pub empty_gating: bool,
    /// Sec. 5.6 refinement: the reader predicts future collisions for new
    /// tags and evicts settled tags from crowded slots when necessary.
    pub future_collision_avoidance: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            nack_threshold: 3,
            beacon_timeout_migrate: true,
            empty_gating: true,
            future_collision_avoidance: true,
        }
    }
}

impl ProtocolConfig {
    /// The unrefined "dynamic feedback only" protocol of Sec. 5.3 — every
    /// refinement switched off. Useful as an ablation baseline.
    pub fn vanilla_feedback() -> Self {
        Self {
            nack_threshold: 3,
            beacon_timeout_migrate: false,
            empty_gating: false,
            future_collision_avoidance: false,
        }
    }
}
