use arachnet_core::packet::{UlPacket, UL_PACKET_BITS};
use arachnet_reader::fdma::{FdmaConfig, FdmaReceiver};
use arachnet_tag::subcarrier::SubcarrierChannel;
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::noise::NoiseConfig;
use biw_channel::pzt::PztState;

fn main() {
    let cfg = FdmaConfig::default();
    let rx = FdmaReceiver::new(cfg);
    let ch = BiwChannel::paper(ChannelConfig {
        noise: NoiseConfig::silent(),
        seed: 5,
        ..ChannelConfig::default()
    });
    let sub = SubcarrierChannel::new(6);
    let pkt = UlPacket::new(8, 0x5A5).unwrap();
    let chips = sub.modulate(&pkt.to_bits());
    let spc = (cfg.sample_rate / (cfg.bit_rate * f64::from(sub.chips_per_bit()))) as usize;
    println!("spc {} chips {}", spc, chips.len());
    let mut states = vec![PztState::Absorptive; spc];
    states.extend(chips.iter().flat_map(|&c| {
        std::iter::repeat_n(
            if c {
                PztState::Reflective
            } else {
                PztState::Absorptive
            },
            spc,
        )
    }));
    let len = states.len() + 2000;
    let wave = ch.uplink_waveform(&[(8, &states)], len);
    let out = rx.decode_channel(&wave, sub);
    println!("out {:?}", out);
    // manual: decode bits with debug
    // replicate: use decode_channel internals via public API only -> print expected vs got bits by despreading ourselves is tedious; instead brute: try decoding with each possible polarity...
    let expected = pkt.to_bits();
    println!("expected bits: {:?}", expected);
    let _ = UL_PACKET_BITS;
}
