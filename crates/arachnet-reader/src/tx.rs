//! The beacon transmitter.
//!
//! The reader "can dynamically pause and resume DL transmissions to
//! modulate PIE symbols through USB commands" — i.e. the symbol timing is
//! produced in *software*, which "introduces about 0.1–0.3 ms time offset
//! to each PIE symbol" (Sec. 6.3). The transmitter here produces both the
//! exact raw-level stream (for waveform synthesis through `biw-channel`)
//! and the jittered edge timeline that tag demodulators consume directly
//! in faster co-simulations.

use arachnet_core::packet::DlBeacon;
use arachnet_core::rng::TagRng;

/// Software-jitter bounds per PIE symbol edge (seconds) — Sec. 6.3.
pub const JITTER_MIN_S: f64 = 0.1e-3;
/// Upper jitter bound (seconds).
pub const JITTER_MAX_S: f64 = 0.3e-3;

/// The beacon transmitter.
#[derive(Debug, Clone)]
pub struct BeaconTransmitter {
    dl_bps: f64,
    jitter: bool,
    rng: TagRng,
}

impl BeaconTransmitter {
    /// Transmitter at the given DL raw rate with software jitter enabled.
    pub fn new(dl_bps: f64, seed: u64) -> Self {
        assert!(dl_bps > 0.0);
        Self {
            dl_bps,
            jitter: true,
            rng: TagRng::new(seed),
        }
    }

    /// Disables the software jitter (idealized reader, for ablations).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = false;
        self
    }

    /// DL raw bit rate.
    pub fn dl_bps(&self) -> f64 {
        self.dl_bps
    }

    /// Raw OOK level stream for a beacon (for waveform synthesis). PIE
    /// bit 0 → `10`, bit 1 → `110`.
    pub fn raw_levels(&self, beacon: &DlBeacon) -> Vec<bool> {
        arachnet_core::pie::encode(beacon.to_bits().iter()).to_bools()
    }

    /// On-air duration of a beacon at this rate (s), jitter excluded.
    pub fn beacon_duration(&self, beacon: &DlBeacon) -> f64 {
        self.raw_levels(beacon).len() as f64 / self.dl_bps
    }

    /// Edge timeline `(time, rising?)` of a beacon starting at `t0`, with
    /// per-symbol software jitter applied to each edge. Edges remain
    /// monotone (the jitter cannot reorder them at legal rates).
    pub fn edges(&mut self, beacon: &DlBeacon, t0: f64) -> Vec<(f64, bool)> {
        let raw_interval = 1.0 / self.dl_bps;
        let mut edges = Vec::new();
        let mut t = t0;
        for bit in beacon.to_bits().iter() {
            let high = if bit { 2.0 } else { 1.0 } * raw_interval;
            let (j1, j2) = if self.jitter {
                (self.sample_jitter(), self.sample_jitter())
            } else {
                (0.0, 0.0)
            };
            edges.push((t + j1, true));
            edges.push((t + high + j2, false));
            t += high + raw_interval;
        }
        // Clamp any pathological reordering (possible only at extreme
        // rates where the raw interval is comparable to the jitter).
        for i in 1..edges.len() {
            if edges[i].0 <= edges[i - 1].0 {
                edges[i].0 = edges[i - 1].0 + 1e-6;
            }
        }
        edges
    }

    /// One signed jitter sample: magnitude in [0.1, 0.3] ms, random sign.
    fn sample_jitter(&mut self) -> f64 {
        let mag = JITTER_MIN_S + (JITTER_MAX_S - JITTER_MIN_S) * self.rng.unit_f64();
        if self.rng.chance(0.5) {
            mag
        } else {
            -mag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::packet::DlCmd;

    #[test]
    fn raw_levels_follow_pie() {
        let tx = BeaconTransmitter::new(250.0, 1);
        let beacon = DlBeacon::new(DlCmd::nack()); // cmd nibble 0000
        let levels = tx.raw_levels(&beacon);
        // 10 bits, preamble 110100 + 0000: ones = 3 → 20 + 3 = 23 raw bits.
        assert_eq!(levels.len(), 23);
    }

    #[test]
    fn beacon_duration_at_default_rate() {
        let tx = BeaconTransmitter::new(250.0, 1);
        let d = tx.beacon_duration(&DlBeacon::new(DlCmd::nack()));
        assert!((d - 23.0 / 250.0).abs() < 1e-12);
        assert!(d < 0.15, "beacon must fit the slot preamble window");
    }

    #[test]
    fn edges_alternate_and_are_monotone() {
        let mut tx = BeaconTransmitter::new(250.0, 2);
        let edges = tx.edges(&DlBeacon::new(DlCmd::ack()), 0.5);
        assert_eq!(edges.len(), 20); // 10 symbols × 2 edges
        for (i, w) in edges.windows(2).enumerate() {
            assert!(w[1].0 > w[0].0, "edges reordered at {i}");
        }
        for (i, e) in edges.iter().enumerate() {
            assert_eq!(e.1, i % 2 == 0, "polarity at {i}");
        }
    }

    #[test]
    fn jitter_is_within_bounds() {
        let mut tx = BeaconTransmitter::new(250.0, 3);
        let beacon = DlBeacon::new(DlCmd::ack());
        let ideal: Vec<(f64, bool)> = BeaconTransmitter::new(250.0, 3)
            .without_jitter()
            .edges(&beacon, 0.0);
        let jittered = tx.edges(&beacon, 0.0);
        let mut seen_nonzero = false;
        for (a, b) in ideal.iter().zip(&jittered) {
            let d = (a.0 - b.0).abs();
            assert!(d <= JITTER_MAX_S + 1e-9, "jitter {d}");
            if d > 1e-9 {
                seen_nonzero = true;
                assert!(d >= JITTER_MIN_S - 1e-9, "jitter below floor: {d}");
            }
        }
        assert!(seen_nonzero, "jitter never applied");
    }

    #[test]
    fn without_jitter_is_deterministic_ideal() {
        let mut a = BeaconTransmitter::new(250.0, 7).without_jitter();
        let mut b = BeaconTransmitter::new(250.0, 99).without_jitter();
        let beacon = DlBeacon::new(DlCmd::reset());
        assert_eq!(a.edges(&beacon, 1.0), b.edges(&beacon, 1.0));
    }

    #[test]
    fn jitter_streams_are_seeded() {
        let beacon = DlBeacon::new(DlCmd::ack());
        let mut a = BeaconTransmitter::new(250.0, 5);
        let mut b = BeaconTransmitter::new(250.0, 5);
        assert_eq!(a.edges(&beacon, 0.0), b.edges(&beacon, 0.0));
        let mut c = BeaconTransmitter::new(250.0, 6);
        assert_ne!(a.edges(&beacon, 0.0), c.edges(&beacon, 0.0));
    }

    #[test]
    fn tag_demod_decodes_jittered_beacon_at_low_rate() {
        // End-to-end: the paper's 250 bps default must survive the jitter.
        use arachnet_tag_shim::*;
        let mut tx = BeaconTransmitter::new(250.0, 11);
        let beacon = DlBeacon::new(DlCmd::ack().with_empty(true));
        let edges = tx.edges(&beacon, 0.0);
        let decoded = decode_edges(&edges, 250.0);
        assert_eq!(decoded, Some(beacon));
    }

    #[test]
    fn tag_demod_loses_jittered_beacons_at_2kbps() {
        // Fig. 13(a): the surge at 2 kbps. With ±0.3 ms jitter against a
        // 0.5 ms raw interval, most packets must fail.
        use arachnet_tag_shim::*;
        let mut tx = BeaconTransmitter::new(2_000.0, 13);
        let beacon = DlBeacon::new(DlCmd::ack());
        let mut lost = 0;
        let n = 100;
        for i in 0..n {
            let edges = tx.edges(&beacon, i as f64);
            if decode_edges(&edges, 2_000.0) != Some(beacon) {
                lost += 1;
            }
        }
        assert!(lost > n / 3, "only {lost}/{n} lost at 2 kbps");
    }

    /// A minimal stand-in for the tag demodulator, kept local so the
    /// reader crate does not depend on arachnet-tag (the full end-to-end
    /// path is exercised in arachnet-sim).
    mod arachnet_tag_shim {
        use arachnet_core::bits::BitBuf;
        use arachnet_core::packet::{DlBeacon, PacketError};
        use arachnet_core::pie::PulseDecoder;

        pub fn decode_edges(edges: &[(f64, bool)], bps: f64) -> Option<DlBeacon> {
            let dec = PulseDecoder::new(12_000.0 / bps);
            let mut bits = BitBuf::new();
            let mut rising = None;
            for &(t, r) in edges {
                if r {
                    rising = Some(t);
                } else if let Some(t0) = rising.take() {
                    let ticks = ((t - t0) * 12_000.0).round();
                    bits.push(dec.classify(ticks)?);
                }
            }
            match DlBeacon::from_bits(&bits) {
                Ok(b) => Some(b),
                Err(PacketError::BadPreamble | PacketError::WrongLength { .. }) => None,
                Err(_) => None,
            }
        }
    }
}
