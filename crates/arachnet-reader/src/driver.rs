//! The reader's slot loop: MAC + TX timing + processing-latency model.
//!
//! Binds the protocol brain (`arachnet_core::mac::ReaderMac`) to the
//! physical timeline: each slot opens with a beacon (whose on-air time and
//! software jitter come from [`crate::tx::BeaconTransmitter`]), the reader
//! listens for the tag reply (tags wait the 20 ms guard of Fig. 14a), and
//! the software pipeline adds a processing delay before the decoded packet
//! reaches the MAC — the paper measures "about 58.9 ms" of software delay
//! and a 99th-percentile stage-2 latency of 281.9 ms (Fig. 14b).

use arachnet_core::mac::{ProtocolConfig, ReaderMac, SlotObservation};
use arachnet_core::packet::{DlBeacon, UL_PACKET_BITS};
use arachnet_core::rates::TAG_REPLY_GUARD_S;
use arachnet_core::rng::TagRng;
use arachnet_core::slot::Period;

use crate::tx::BeaconTransmitter;

/// Latency model of the reader software (Fig. 14b).
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed pipeline latency: buffering + filtering group delay (s).
    pub base_s: f64,
    /// Additional uniformly distributed scheduling latency (s).
    pub jitter_max_s: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Calibrated so the mean software delay ≈ 58.9 ms.
        Self {
            base_s: 0.040,
            jitter_max_s: 0.038,
        }
    }
}

impl LatencyModel {
    /// Samples one processing delay.
    pub fn sample(&self, rng: &mut TagRng) -> f64 {
        self.base_s + self.jitter_max_s * rng.unit_f64()
    }

    /// Mean processing delay.
    pub fn mean(&self) -> f64 {
        self.base_s + self.jitter_max_s / 2.0
    }
}

/// One ping-pong latency sample (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPong {
    /// Stage 1: DL beacon on-air time (s).
    pub stage1_s: f64,
    /// Stage 2: end of DL → decoded UL packet (guard + UL + software) (s).
    pub stage2_s: f64,
}

impl PingPong {
    /// Total round-trip latency.
    pub fn total(&self) -> f64 {
        self.stage1_s + self.stage2_s
    }
}

/// The slot-loop driver.
#[derive(Debug, Clone)]
pub struct ReaderDriver {
    mac: ReaderMac,
    tx: BeaconTransmitter,
    latency: LatencyModel,
    ul_bps: f64,
    rng: TagRng,
}

impl ReaderDriver {
    /// Driver over a registry of `(tid, period)` with default timing.
    pub fn new(
        protocol: ProtocolConfig,
        registry: &[(u8, Period)],
        dl_bps: f64,
        ul_bps: f64,
        seed: u64,
    ) -> Self {
        Self {
            mac: ReaderMac::new(protocol, registry),
            tx: BeaconTransmitter::new(dl_bps, seed ^ 0x7E57),
            latency: LatencyModel::default(),
            ul_bps,
            rng: TagRng::new(seed ^ 0xD81E),
        }
    }

    /// The protocol brain (read access).
    pub fn mac(&self) -> &ReaderMac {
        &self.mac
    }

    /// Mutable access to the MAC (e.g. to queue a RESET).
    pub fn mac_mut(&mut self) -> &mut ReaderMac {
        &mut self.mac
    }

    /// The transmitter.
    pub fn tx_mut(&mut self) -> &mut BeaconTransmitter {
        &mut self.tx
    }

    /// Sends the first beacon (opens slot 1).
    pub fn start(&mut self) -> DlBeacon {
        self.mac.start()
    }

    /// Closes a slot with its observation, returning the next beacon.
    pub fn end_slot(&mut self, obs: SlotObservation) -> DlBeacon {
        self.mac.end_slot(obs)
    }

    /// UL packet on-air duration at the driver's rate.
    pub fn ul_packet_duration(&self) -> f64 {
        2.0 * UL_PACKET_BITS as f64 / self.ul_bps
    }

    /// Samples a ping-pong latency for a beacon (Fig. 14's experiment).
    pub fn sample_ping_pong(&mut self, beacon: &DlBeacon) -> PingPong {
        let stage1 = self.tx.beacon_duration(beacon);
        let stage2 =
            TAG_REPLY_GUARD_S + self.ul_packet_duration() + self.latency.sample(&mut self.rng);
        PingPong {
            stage1_s: stage1,
            stage2_s: stage2,
        }
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Overrides the latency model.
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::packet::DlCmd;

    fn driver() -> ReaderDriver {
        let p = |v| Period::new(v).unwrap();
        ReaderDriver::new(
            ProtocolConfig::default(),
            &[(1, p(4)), (2, p(4))],
            250.0,
            375.0,
            42,
        )
    }

    #[test]
    fn slot_loop_delegates_to_mac() {
        let mut d = driver();
        let b0 = d.start();
        assert!(!b0.cmd.ack);
        let b1 = d.end_slot(SlotObservation::received(1));
        assert!(b1.cmd.ack);
        assert_eq!(d.mac().current_slot(), 2);
    }

    #[test]
    fn ul_packet_duration_is_paper_value() {
        let d = driver();
        assert!((d.ul_packet_duration() - 64.0 / 375.0).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_stages_are_plausible() {
        // Fig. 14: stage 2 ≈ 20 ms guard + 171 ms UL + ~59 ms software, and
        // its 99th percentile stays under 281.9 ms.
        let mut d = driver();
        let beacon = DlBeacon::new(DlCmd::ack());
        let mut samples: Vec<f64> = (0..1_000)
            .map(|_| d.sample_ping_pong(&beacon).stage2_s)
            .collect();
        samples.sort_by(f64::total_cmp);
        let p99 = samples[989];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(p99 < 0.2819, "p99 {p99}");
        assert!(mean > 0.22 && mean < 0.27, "mean {mean}");
    }

    #[test]
    fn software_delay_mean_matches_paper() {
        let d = driver();
        assert!(
            (d.latency().mean() - 0.0589).abs() < 0.002,
            "{}",
            d.latency().mean()
        );
    }

    #[test]
    fn stage1_is_beacon_duration() {
        let mut d = driver();
        let beacon = DlBeacon::new(DlCmd::nack());
        let pp = d.sample_ping_pong(&beacon);
        assert!((pp.stage1_s - 23.0 / 250.0).abs() < 1e-9);
        assert!((pp.total() - pp.stage1_s - pp.stage2_s).abs() < 1e-15);
    }

    #[test]
    fn total_fits_within_slot() {
        // The whole ping-pong must complete inside the 1 s slot.
        let mut d = driver();
        let beacon = DlBeacon::new(DlCmd::ack());
        for _ in 0..1_000 {
            assert!(d.sample_ping_pong(&beacon).total() < 1.0);
        }
    }
}
