//! The streaming receiver, assembled as the paper's back-pressure block
//! pipeline (Sec. 6.1: "Each two adjacent blocks share a buffer with a
//! back-pressure mechanism to manage data flow").
//!
//! The stages mirror [`crate::rx::UplinkReceiver`] but run incrementally
//! over DAQ-sized chunks with bounded buffers between stages: when a
//! downstream stage stalls, pressure propagates back to the ingest ring —
//! exactly the real-time behaviour of the reader software, where the USB
//! producer must never overrun the decoder.

use arachnet_core::packet::UlPacket;
use arachnet_dsp::cplx::Cplx;
use arachnet_dsp::nco::DownConverter;
use arachnet_dsp::pipeline::{pump, FnStage, RingBuffer, Stage};

use crate::rx::{RxConfig, UplinkReceiver};

/// A streaming receiver instance.
pub struct StreamingReceiver {
    cfg: RxConfig,
    // Stage blocks.
    mixer: MixDecimate,
    slicer: SliceStage,
    decoder: EdgeDecoder,
    // Inter-stage rings.
    ingest: RingBuffer<f64>,
    baseband: RingBuffer<Cplx>,
    levels: RingBuffer<(u64, Option<bool>)>,
    packets: RingBuffer<UlPacket>,
}

/// Stage 1: down-convert + boxcar decimate.
struct MixDecimate {
    mixer: DownConverter,
    acc: Cplx,
    count: usize,
    factor: usize,
}

impl Stage for MixDecimate {
    type In = f64;
    type Out = Cplx;

    fn process(&mut self, x: f64, out: &mut Vec<Cplx>) {
        self.acc += self.mixer.mix(x);
        self.count += 1;
        if self.count == self.factor {
            out.push(self.acc / self.factor as f64);
            self.acc = Cplx::ZERO;
            self.count = 0;
        }
    }
}

/// Stage 2: magnitude + adaptive slicing → level transitions.
///
/// Thresholds come from exponential envelope followers (`lo`/`hi`), so the
/// stage needs no warm-up buffer and adapts if the link budget drifts.
/// Transitions are suppressed while the observed contrast is too small to
/// be modulation. A heartbeat item (`None`) is emitted periodically so the
/// downstream decoder can detect end-of-packet silence.
struct SliceStage {
    lo: f64,
    hi: f64,
    initialized: bool,
    level: bool,
    index: u64,
    min_contrast: f64,
    decay: f64,
    heartbeat_every: u64,
}

impl Stage for SliceStage {
    type In = Cplx;
    type Out = (u64, Option<bool>); // Some(level) = transition, None = heartbeat

    fn process(&mut self, z: Cplx, out: &mut Vec<(u64, Option<bool>)>) {
        let mag = z.abs();
        let idx = self.index;
        self.index += 1;
        if !self.initialized {
            self.lo = mag;
            self.hi = mag;
            self.initialized = true;
        }
        // Envelope followers: instant attack, slow decay toward the signal.
        let range = (self.hi - self.lo).max(0.0);
        self.lo = mag.min(self.lo + self.decay * range);
        self.hi = mag.max(self.hi - self.decay * range);
        let mid = 0.5 * (self.lo + self.hi);
        let contrast_ok = mid > 0.0 && (self.hi - self.lo) > self.min_contrast * mid;
        if contrast_ok {
            let band = 0.1 * (self.hi - self.lo);
            if !self.level && mag > mid + band {
                self.level = true;
                out.push((idx, Some(true)));
            } else if self.level && mag < mid - band {
                self.level = false;
                out.push((idx, Some(false)));
            }
        }
        if idx.is_multiple_of(self.heartbeat_every) {
            out.push((idx, None));
        }
    }

    fn max_outputs_per_input(&self) -> usize {
        2
    }
}

/// Stage 3: edge-interval FM0 decoding on completed bursts.
///
/// Transitions accumulate until a silence gap (no transition for several
/// raw-bit times, detected via heartbeats) marks the end of a burst; the
/// batch edge decoder then runs over the burst.
struct EdgeDecoder {
    rx: UplinkReceiver,
    /// Raw-bit duration in decimated samples.
    t_nominal: f64,
    transitions: Vec<(u64, bool)>,
    /// Total transitions ever received (diagnostics).
    transitions_seen: u64,
    /// Decode attempts and successes (diagnostics).
    attempts: u64,
    successes: u64,
}

impl Stage for EdgeDecoder {
    type In = (u64, Option<bool>);
    type Out = UlPacket;

    fn process(&mut self, item: (u64, Option<bool>), out: &mut Vec<UlPacket>) {
        let (idx, kind) = item;
        match kind {
            Some(level) => {
                self.transitions_seen += 1;
                self.transitions.push((idx, level));
            }
            None => {
                // Heartbeat: if the last transition is stale, the burst is
                // over — decode and clear.
                if let Some(&(last, _)) = self.transitions.last() {
                    if (idx.saturating_sub(last)) as f64 > 6.0 * self.t_nominal
                        && self.transitions.len() >= 30
                    {
                        self.attempts += 1;
                        if let Some(pkt) = self.try_decode() {
                            self.successes += 1;
                            out.push(pkt);
                        }
                        self.transitions.clear();
                    } else if (idx.saturating_sub(last)) as f64 > 6.0 * self.t_nominal {
                        // Stale noise blips: drop them.
                        self.transitions.clear();
                    }
                }
                // Bound the window against pathological chatter.
                if self.transitions.len() > 4_096 {
                    self.transitions.drain(..2_048);
                }
            }
        }
    }

    fn max_outputs_per_input(&self) -> usize {
        1
    }
}

impl EdgeDecoder {
    fn try_decode(&self) -> Option<UlPacket> {
        // Rebuild an edge list understood by the batch decoder.
        use arachnet_dsp::schmitt::Edge;
        let edges: Vec<Edge> = self
            .transitions
            .iter()
            .map(|&(i, lvl)| {
                if lvl {
                    Edge::Rising(i as usize)
                } else {
                    Edge::Falling(i as usize)
                }
            })
            .collect();
        self.rx.decode_edges_internal(&edges).ok()
    }
}

impl StreamingReceiver {
    /// Builds the pipeline with the given buffer capacity per ring.
    pub fn new(cfg: RxConfig, ring_capacity: usize) -> Self {
        let rx = UplinkReceiver::new(cfg);
        let factor = rx.decimation();
        Self {
            cfg,
            mixer: MixDecimate {
                mixer: DownConverter::new(cfg.sample_rate, cfg.carrier_hz),
                acc: Cplx::ZERO,
                count: 0,
                factor,
            },
            slicer: SliceStage {
                lo: 0.0,
                hi: 0.0,
                initialized: false,
                level: false,
                index: 0,
                min_contrast: cfg.min_contrast,
                decay: 5e-4,
                heartbeat_every: 32,
            },
            decoder: EdgeDecoder {
                rx,
                t_nominal: cfg.sample_rate / (cfg.ul_bps * factor as f64),
                transitions: Vec::new(),
                transitions_seen: 0,
                attempts: 0,
                successes: 0,
            },
            ingest: RingBuffer::new(ring_capacity),
            baseband: RingBuffer::new(ring_capacity),
            levels: RingBuffer::new(ring_capacity),
            packets: RingBuffer::new(64),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RxConfig {
        &self.cfg
    }

    /// Offers DAQ samples; returns how many were accepted (back-pressure
    /// may refuse the tail).
    pub fn offer(&mut self, samples: &[f64]) -> usize {
        let mut accepted = 0;
        for &s in samples {
            if self.ingest.push(s).is_err() {
                break;
            }
            accepted += 1;
        }
        accepted
    }

    /// Runs one polling round over all stages; returns true if any stage
    /// made progress.
    pub fn poll(&mut self) -> bool {
        let a = pump(&mut self.mixer, &mut self.ingest, &mut self.baseband);
        let b = pump(&mut self.slicer, &mut self.baseband, &mut self.levels);
        let c = pump(&mut self.decoder, &mut self.levels, &mut self.packets);
        a + b + c > 0
    }

    /// Pops a decoded packet, if available.
    pub fn pop_packet(&mut self) -> Option<UlPacket> {
        self.packets.pop()
    }

    /// Queue depths `(ingest, baseband, levels, packets)` — for tests and
    /// monitoring.
    pub fn depths(&self) -> (usize, usize, usize, usize) {
        (
            self.ingest.len(),
            self.baseband.len(),
            self.levels.len(),
            self.packets.len(),
        )
    }

    /// Decoder statistics `(transitions_seen, decode_attempts, successes,
    /// pending_transitions)`.
    pub fn decoder_stats(&self) -> (u64, u64, u64, usize) {
        (
            self.decoder.transitions_seen,
            self.decoder.attempts,
            self.decoder.successes,
            self.decoder.transitions.len(),
        )
    }
}

/// Convenience: a trivial pass-through stage used in pipeline tests.
pub fn passthrough<T: Copy>() -> FnStage<T, T, impl FnMut(T, &mut Vec<T>)> {
    FnStage::new(1, |x: T, out: &mut Vec<T>| out.push(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::fm0::Fm0Encoder;
    use biw_channel::channel::{BiwChannel, ChannelConfig};
    use biw_channel::noise::NoiseConfig;
    use biw_channel::pzt::PztState;

    fn packet_wave(pkt: &UlPacket, tid: u8) -> Vec<f64> {
        let ch = BiwChannel::paper(ChannelConfig {
            noise: NoiseConfig::silent(),
            ..ChannelConfig::default()
        });
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(pkt.to_bits().iter()).to_bools();
        let spb = (500_000.0 / 375.0) as usize;
        let mut states = vec![PztState::Absorptive; 8 * spb];
        states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        states.extend(vec![PztState::Absorptive; 8 * spb]);
        let len = states.len();
        ch.uplink_waveform(&[(tid, &states)], len)
    }

    #[test]
    fn streaming_decodes_same_as_batch() {
        let pkt = UlPacket::new(8, 0x456).unwrap();
        let wave = packet_wave(&pkt, 8);
        let mut sr = StreamingReceiver::new(RxConfig::default(), 4_096);
        let mut offset = 0;
        let mut decoded = None;
        while offset < wave.len() || decoded.is_none() {
            let chunk_end = (offset + 1_000).min(wave.len());
            offset += sr.offer(&wave[offset..chunk_end]);
            while sr.poll() {}
            if let Some(p) = sr.pop_packet() {
                decoded = Some(p);
                break;
            }
            if offset >= wave.len() {
                break;
            }
        }
        assert_eq!(decoded, Some(pkt));
    }

    #[test]
    fn ingest_backpressure_refuses_overflow() {
        let mut sr = StreamingReceiver::new(RxConfig::default(), 128);
        let accepted = sr.offer(&vec![0.0; 1_000]);
        assert_eq!(accepted, 128, "ring must refuse past capacity");
        // After polling, more fits.
        while sr.poll() {}
        let more = sr.offer(&vec![0.0; 1_000]);
        assert!(more > 0);
    }

    #[test]
    fn no_samples_lost_under_chunked_feed() {
        // Feed a packet in awkward chunk sizes with tiny rings; the decoder
        // must still see the packet exactly once.
        let pkt = UlPacket::new(3, 0x0F0).unwrap();
        let wave = packet_wave(&pkt, 8);
        let mut sr = StreamingReceiver::new(RxConfig::default(), 512);
        let mut offset = 0;
        let mut packets = Vec::new();
        while offset < wave.len() {
            let end = (offset + 313).min(wave.len());
            offset += sr.offer(&wave[offset..end]);
            while sr.poll() {}
            while let Some(p) = sr.pop_packet() {
                packets.push(p);
            }
        }
        while sr.poll() {
            while let Some(p) = sr.pop_packet() {
                packets.push(p);
            }
        }
        assert_eq!(packets, vec![pkt]);
    }

    #[test]
    fn depths_report_queue_state() {
        let mut sr = StreamingReceiver::new(RxConfig::default(), 256);
        sr.offer(&vec![0.1; 100]);
        let (ingest, ..) = sr.depths();
        assert_eq!(ingest, 100);
        while sr.poll() {}
        let (ingest_after, ..) = sr.depths();
        assert_eq!(ingest_after, 0);
    }

    #[test]
    fn passthrough_stage_works() {
        use arachnet_dsp::pipeline::{pump, RingBuffer};
        let mut st = passthrough::<u8>();
        let mut a = RingBuffer::new(8);
        let mut b = RingBuffer::new(8);
        a.push(7u8).unwrap();
        pump(&mut st, &mut a, &mut b);
        assert_eq!(b.pop(), Some(7));
    }
}
