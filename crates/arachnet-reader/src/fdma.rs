//! FDMA parallel decoding — the reader side of the subcarrier extension.
//!
//! Several tags transmit in the same slot on distinct subcarrier channels
//! (see `arachnet_tag::subcarrier`). The receiver mixes the slot to
//! baseband IQ and, per tag, coherently despreads with that tag's ±1 chip
//! template: integer-cycle windows make different channels orthogonal, so
//! each despread output sees only its own tag. Carrier phase is recovered
//! from the known packet preamble, and frame timing by maximizing the
//! preamble correlation over a lag search.

use arachnet_core::bits::BitBuf;
use arachnet_core::packet::{UlPacket, UL_PACKET_BITS, UL_PREAMBLE};
use arachnet_dsp::cplx::Cplx;
use arachnet_dsp::nco::DownConverter;
use arachnet_tag::subcarrier::SubcarrierChannel;

/// Configuration of the FDMA receiver.
#[derive(Debug, Clone, Copy)]
pub struct FdmaConfig {
    /// DAQ sample rate (Hz).
    pub sample_rate: f64,
    /// Carrier frequency (Hz).
    pub carrier_hz: f64,
    /// Data bit rate shared by all FDMA tags (bps).
    pub bit_rate: f64,
    /// Minimum preamble correlation to accept a frame.
    pub sync_threshold: f64,
}

impl Default for FdmaConfig {
    fn default() -> Self {
        Self {
            sample_rate: 500_000.0,
            carrier_hz: 90_000.0,
            bit_rate: 93.75,
            sync_threshold: 0.6,
        }
    }
}

/// Per-tag decode result.
#[derive(Debug, Clone, PartialEq)]
pub struct FdmaDecode {
    /// The channel that was despread.
    pub channel: SubcarrierChannel,
    /// CRC-valid packet, if recovered.
    pub packet: Option<UlPacket>,
    /// Preamble correlation achieved at the chosen lag.
    pub sync_score: f64,
}

/// The FDMA receiver.
#[derive(Debug, Clone)]
pub struct FdmaReceiver {
    cfg: FdmaConfig,
}

impl FdmaReceiver {
    /// Receiver with the given configuration.
    pub fn new(cfg: FdmaConfig) -> Self {
        Self { cfg }
    }

    /// Configuration.
    pub fn config(&self) -> &FdmaConfig {
        &self.cfg
    }

    /// Samples per chip for a channel.
    fn samples_per_chip(&self, ch: &SubcarrierChannel) -> f64 {
        self.cfg.sample_rate / (self.cfg.bit_rate * f64::from(ch.chips_per_bit()))
    }

    /// Mixes a slot waveform to (undecimated) baseband IQ with the carrier
    /// mean removed.
    fn to_iq(&self, wave: &[f64]) -> Vec<Cplx> {
        let mut mixer = DownConverter::new(self.cfg.sample_rate, self.cfg.carrier_hz);
        let mut iq: Vec<Cplx> = wave.iter().map(|&x| mixer.mix(x)).collect();
        // Light smoothing to suppress the 2fc image: boxcar over ~2 carrier
        // cycles.
        let d = (2.0 * self.cfg.sample_rate / self.cfg.carrier_hz) as usize;
        let mut acc = Cplx::ZERO;
        let src = iq.clone();
        for (i, z) in iq.iter_mut().enumerate() {
            acc += src[i];
            if i >= d {
                acc -= src[i - d];
                *z = acc / d as f64;
            } else {
                *z = acc / (i + 1) as f64;
            }
        }
        let mean = iq.iter().fold(Cplx::ZERO, |a, &z| a + z) / iq.len() as f64;
        iq.iter().map(|&z| z - mean).collect()
    }

    /// Despreads one channel at a given start-sample lag, returning one
    /// complex value per data bit.
    fn despread(&self, iq: &[Cplx], ch: &SubcarrierChannel, lag: usize) -> Vec<Cplx> {
        let spc = self.samples_per_chip(ch);
        let chips = ch.chip_template();
        let bits_avail = ((iq.len() - lag) as f64 / (spc * chips.len() as f64)).floor() as usize;
        let n_bits = bits_avail.min(UL_PACKET_BITS);
        let mut out = Vec::with_capacity(n_bits);
        for b in 0..n_bits {
            let mut acc = Cplx::ZERO;
            for (ci, &cv) in chips.iter().enumerate() {
                let start = lag as f64 + (b * chips.len() + ci) as f64 * spc;
                let end = start + spc;
                let (s, e) = (start as usize, (end as usize).min(iq.len()));
                for &z in &iq[s..e] {
                    acc += z * cv;
                }
            }
            out.push(acc);
        }
        out
    }

    /// Preamble-based sync + phase metric: returns `(score, phase)` for a
    /// despread bit stream.
    fn preamble_metric(bits: &[Cplx]) -> (f64, f64) {
        if bits.len() < UL_PREAMBLE.len() {
            return (0.0, 0.0);
        }
        let mut acc = Cplx::ZERO;
        let mut energy = 0.0;
        for (i, &p) in UL_PREAMBLE.iter().enumerate() {
            let s = if p { 1.0 } else { -1.0 };
            acc += bits[i] * s;
            energy += bits[i].abs();
        }
        if energy < 1e-30 {
            return (0.0, 0.0);
        }
        (acc.abs() / energy, acc.arg())
    }

    /// Decodes one channel from a slot waveform.
    pub fn decode_channel(&self, wave: &[f64], ch: SubcarrierChannel) -> FdmaDecode {
        let iq = self.to_iq(wave);
        let spc = self.samples_per_chip(&ch);
        let bit_samples = spc * f64::from(ch.chips_per_bit());
        // Lag search over one bit duration in quarter-chip steps.
        let step = (spc / 4.0).max(1.0) as usize;
        let max_lag = bit_samples as usize;
        let mut best: Option<(usize, f64, f64)> = None; // (lag, score, phase)
        let mut lag = 0;
        while lag < max_lag {
            let bits = self.despread(&iq, &ch, lag);
            let (score, phase) = Self::preamble_metric(&bits);
            if best.is_none_or(|(_, s, _)| score > s) {
                best = Some((lag, score, phase));
            }
            lag += step;
        }
        let Some((lag, score, phase)) = best else {
            return FdmaDecode {
                channel: ch,
                packet: None,
                sync_score: 0.0,
            };
        };
        if score < self.cfg.sync_threshold {
            return FdmaDecode {
                channel: ch,
                packet: None,
                sync_score: score,
            };
        }
        let soft = self.despread(&iq, &ch, lag);
        let rot = Cplx::cis(-phase);
        let mut hard = BitBuf::with_capacity(soft.len());
        for z in &soft {
            hard.push((*z * rot).re >= 0.0);
        }
        let packet = if hard.len() >= UL_PACKET_BITS {
            UlPacket::from_bits(&hard.slice(0, UL_PACKET_BITS).expect("length checked")).ok()
        } else {
            None
        };
        FdmaDecode {
            channel: ch,
            packet,
            sync_score: score,
        }
    }

    /// Decodes every configured channel from one slot — the parallel-
    /// decoding throughput win.
    pub fn decode_all(&self, wave: &[f64], channels: &[SubcarrierChannel]) -> Vec<FdmaDecode> {
        channels
            .iter()
            .map(|&ch| self.decode_channel(wave, ch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_tag::subcarrier::SubcarrierChannel;
    use biw_channel::channel::{BiwChannel, ChannelConfig};
    use biw_channel::noise::NoiseConfig;
    use biw_channel::pzt::PztState;

    fn channel(noise: NoiseConfig) -> BiwChannel {
        BiwChannel::paper(ChannelConfig {
            noise,
            seed: 5,
            ..ChannelConfig::default()
        })
    }

    /// Expands chips into per-sample states at *fractional* chip
    /// boundaries, exactly as a hardware timer clocking the switch would.
    fn chips_to_states(chips: &[bool], spc: f64, lead: usize) -> Vec<PztState> {
        let total = lead + (chips.len() as f64 * spc).ceil() as usize;
        let mut states = vec![PztState::Absorptive; total];
        for (i, s) in states.iter_mut().enumerate().skip(lead) {
            let chip = ((i - lead) as f64 / spc) as usize;
            if let Some(&c) = chips.get(chip) {
                *s = if c {
                    PztState::Reflective
                } else {
                    PztState::Absorptive
                };
            }
        }
        states
    }

    fn make_slot(
        ch: &BiwChannel,
        cfg: &FdmaConfig,
        tags: &[(u8, SubcarrierChannel, UlPacket)],
    ) -> Vec<f64> {
        let mut streams: Vec<(u8, Vec<PztState>)> = Vec::new();
        let mut max_len = 0;
        for (tid, sub, pkt) in tags {
            let chips = sub.modulate(&pkt.to_bits());
            let spc = cfg.sample_rate / (cfg.bit_rate * f64::from(sub.chips_per_bit()));
            let states = chips_to_states(&chips, spc, spc as usize);
            max_len = max_len.max(states.len());
            streams.push((*tid, states));
        }
        let refs: Vec<(u8, &[PztState])> =
            streams.iter().map(|(t, s)| (*t, s.as_slice())).collect();
        ch.uplink_waveform(&refs, max_len + 2_000)
    }

    #[test]
    fn single_tag_decodes() {
        let cfg = FdmaConfig::default();
        let rx = FdmaReceiver::new(cfg);
        let ch = channel(NoiseConfig::silent());
        let sub = SubcarrierChannel::new(6);
        let pkt = UlPacket::new(8, 0x5A5).unwrap();
        let wave = make_slot(&ch, &cfg, &[(8, sub, pkt)]);
        let out = rx.decode_channel(&wave, sub);
        assert_eq!(out.packet, Some(pkt), "sync {:.2}", out.sync_score);
    }

    #[test]
    fn two_tags_decode_in_parallel() {
        // The headline: two tags, same slot, different subcarriers — both
        // packets recovered. FM0 would have called this a collision.
        let cfg = FdmaConfig::default();
        let rx = FdmaReceiver::new(cfg);
        let ch = channel(NoiseConfig::silent());
        let sub_a = SubcarrierChannel::new(6);
        let sub_b = SubcarrierChannel::new(9);
        let pkt_a = UlPacket::new(8, 0x111).unwrap();
        let pkt_b = UlPacket::new(7, 0xEEE).unwrap();
        let wave = make_slot(&ch, &cfg, &[(8, sub_a, pkt_a), (7, sub_b, pkt_b)]);
        let outs = rx.decode_all(&wave, &[sub_a, sub_b]);
        assert_eq!(
            outs[0].packet,
            Some(pkt_a),
            "tag A sync {:.2}",
            outs[0].sync_score
        );
        assert_eq!(
            outs[1].packet,
            Some(pkt_b),
            "tag B sync {:.2}",
            outs[1].sync_score
        );
    }

    #[test]
    fn parallel_decode_survives_noise() {
        let cfg = FdmaConfig::default();
        let rx = FdmaReceiver::new(cfg);
        let ch = channel(NoiseConfig::default());
        let sub_a = SubcarrierChannel::new(6);
        let sub_b = SubcarrierChannel::new(9);
        let pkt_a = UlPacket::new(5, 0x234).unwrap();
        let pkt_b = UlPacket::new(11, 0xABC).unwrap();
        let wave = make_slot(&ch, &cfg, &[(8, sub_a, pkt_a), (11, sub_b, pkt_b)]);
        let outs = rx.decode_all(&wave, &[sub_a, sub_b]);
        assert_eq!(outs[0].packet, Some(pkt_a));
        assert_eq!(outs[1].packet, Some(pkt_b));
    }

    #[test]
    fn unused_channel_stays_silent() {
        // Despreading a channel nobody transmits on must not hallucinate a
        // packet (CRC + sync threshold).
        let cfg = FdmaConfig::default();
        let rx = FdmaReceiver::new(cfg);
        let ch = channel(NoiseConfig::default());
        let sub_a = SubcarrierChannel::new(6);
        let sub_idle = SubcarrierChannel::new(4);
        let pkt = UlPacket::new(8, 0x777).unwrap();
        let wave = make_slot(&ch, &cfg, &[(8, sub_a, pkt)]);
        let out = rx.decode_channel(&wave, sub_idle);
        assert_eq!(out.packet, None);
    }

    #[test]
    fn empty_slot_decodes_nothing() {
        let cfg = FdmaConfig::default();
        let rx = FdmaReceiver::new(cfg);
        let ch = channel(NoiseConfig::default());
        let wave = ch.uplink_waveform(&[], 60_000);
        let out = rx.decode_channel(&wave, SubcarrierChannel::new(6));
        assert_eq!(out.packet, None);
    }
}
