//! The uplink receiver (Sec. 6.1's processing blocks, batch form).
//!
//! Chain: **down conversion** (mix the 500 kHz real stream to baseband) →
//! **filtering + decimation** (boxcar anti-alias, rate matched to ~16
//! samples per raw bit) → **envelope + adaptive slicing** (Schmitt around
//! the percentile midpoint — the backscatter rides on a large carrier
//! leak) → **edge-domain FM0 decoding** → CRC-checked packet.
//!
//! Two design points worth calling out:
//!
//! * decoding works on *edge intervals*, classifying each run as 1 or 2
//!   raw-bit durations with the duration estimated from the signal itself.
//!   FM0 guarantees a transition at every symbol boundary, so the decoder
//!   automatically absorbs the tag's ±3 % clock drift that would break a
//!   fixed-grid sampler over a 64-raw-bit packet;
//! * collision detection (Sec. 5.3) clusters the decimated IQ samples: one
//!   backscatterer makes ≤2 clusters, two make up to 4 — "if more than two
//!   clusters are identified, we infer that a collision has occurred".

use arachnet_core::bits::BitBuf;
use arachnet_core::fm0::{self, Fm0Encoder};
use arachnet_core::packet::{UlPacket, UL_PREAMBLE};
use arachnet_obs::DecodeFailReason;
use arachnet_dsp::cluster::{cluster_iq, ClusterConfig};
use arachnet_dsp::cplx::Cplx;
use arachnet_dsp::nco::{CarrierTable, DownConverter};
use arachnet_dsp::psd::{welch_psd, welch_psd_into, Psd, WelchScratch};
use arachnet_dsp::schmitt::{Edge, Schmitt};
use arachnet_dsp::window::Window;

/// Reusable per-worker working set for the RX chain. Every buffer the
/// mix → decimate → slice → decode pipeline needs lives here, so a warm
/// receiver processes slots without allocating (`cluster_iq`'s interior
/// work is bounded by its ~1500-point sub-sample, independent of waveform
/// length). Scratch contents never influence results — only capacities
/// persist between calls — so sharing one scratch per worker thread keeps
/// sweep results bit-identical at any thread count.
#[derive(Debug, Clone, Default)]
pub struct RxScratch {
    iq: Vec<Cplx>,
    tmp: Vec<Cplx>,
    proj: Vec<f64>,
    sorted: Vec<f64>,
    steps: Vec<f64>,
    steps_sorted: Vec<f64>,
    settled: Vec<Cplx>,
    sub: Vec<Cplx>,
    edges: Vec<Edge>,
    cleaned: Vec<f64>,
    corr: Vec<f64>,
    welch: WelchScratch,
    psd: Psd,
}

/// Receiver configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// DAQ sample rate (Hz).
    pub sample_rate: f64,
    /// Carrier frequency (Hz).
    pub carrier_hz: f64,
    /// Expected UL raw bit rate (bps).
    pub ul_bps: f64,
    /// Minimum modulation contrast (fraction of the envelope midpoint)
    /// below which the slot is declared empty.
    pub min_contrast: f64,
}

impl Default for RxConfig {
    fn default() -> Self {
        Self {
            sample_rate: 500_000.0,
            carrier_hz: 90_000.0,
            ul_bps: 375.0,
            min_contrast: 0.002,
        }
    }
}

/// Result of processing one slot's waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRx {
    /// CRC-valid decoded packet, if any.
    pub packet: Option<UlPacket>,
    /// Collision verdict from IQ clustering.
    pub collision: bool,
    /// Number of significant IQ clusters observed.
    pub clusters: usize,
    /// Envelope edges detected (diagnostics).
    pub edges: usize,
    /// Why no packet was decoded (`None` when `packet` is `Some`).
    ///
    /// Note the receiver cannot tell an empty slot from a transmission it
    /// failed to detect: a genuinely idle slot reads `NoModulation` (or
    /// `TooShort`). Whether that is a *failure* is the caller's call — the
    /// sim layer only records a `DecodeFail` event when it knows a tag
    /// actually transmitted.
    pub fail: Option<DecodeFailReason>,
}

impl SlotRx {
    /// An empty-slot result.
    pub fn empty() -> Self {
        Self {
            packet: None,
            collision: false,
            clusters: 1,
            edges: 0,
            fail: Some(DecodeFailReason::NoModulation),
        }
    }
}

/// The batch uplink receiver.
///
/// ```
/// use arachnet_reader::rx::{RxConfig, UplinkReceiver};
///
/// let rx = UplinkReceiver::new(RxConfig::default());
/// // At the default 375 bps the decimator snaps to 75 — a multiple of 25,
/// // placing a boxcar null exactly on the 180 kHz mixing image.
/// assert_eq!(rx.decimation(), 75);
/// ```
#[derive(Debug, Clone)]
pub struct UplinkReceiver {
    cfg: RxConfig,
    /// FM0 raw-bit expansion of the UL preamble (16 raw bits).
    preamble_raw: Vec<bool>,
    /// Exact-period conjugate-carrier table (None → trig fallback).
    carrier_tab: Option<CarrierTable>,
}

impl UplinkReceiver {
    /// Receiver with the given configuration.
    pub fn new(cfg: RxConfig) -> Self {
        let mut enc = Fm0Encoder::new();
        let preamble_raw = enc.encode(UL_PREAMBLE.iter().copied()).to_bools();
        let carrier_tab = CarrierTable::exact(cfg.sample_rate, cfg.carrier_hz, 4096);
        Self {
            cfg,
            preamble_raw,
            carrier_tab,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RxConfig {
        &self.cfg
    }

    /// Decimation factor used for this rate.
    ///
    /// The raw target is ~16 output samples per raw bit, but the factor is
    /// snapped to a multiple that places a boxcar null *exactly* on the
    /// 2·f_c mixing image (for 90 kHz at 500 kHz: 2f_c/f_s = 9/25, so any
    /// multiple of 25 nulls it) — otherwise the image ripple rivals the
    /// modulation contrast of far tags.
    pub fn decimation(&self) -> usize {
        let target = (self.cfg.sample_rate / (self.cfg.ul_bps * 16.0)).max(1.0);
        // Find q such that 2·fc/fs = p/q in lowest terms.
        let image = 2.0 * self.cfg.carrier_hz;
        let q = {
            // Rational approximation with small denominator.
            let mut best = 1usize;
            let mut err = f64::MAX;
            for cand in 1..=200usize {
                let ratio = image * cand as f64 / self.cfg.sample_rate;
                let e = (ratio - ratio.round()).abs();
                if e < err - 1e-12 {
                    err = e;
                    best = cand;
                    if e < 1e-9 {
                        break;
                    }
                }
            }
            best
        };
        let snapped = ((target / q as f64).round() as usize).max(1) * q;
        snapped.max(q)
    }

    /// Mixes and decimates a slot waveform to baseband IQ.
    ///
    /// Two cascaded boxcars (a triangular response) are used before
    /// decimation: a single boxcar leaves ~1 % of the 2·f_c mixing image,
    /// which is comparable to the modulation contrast of the weakest tags;
    /// squaring the rejection buries it.
    fn to_baseband_into(&self, wave: &[f64], iq: &mut Vec<Cplx>, tmp: &mut Vec<Cplx>) {
        let d = self.decimation();
        // Single fused pass: mix → boxcar → boxcar → keep every d-th
        // sample. Arithmetically identical to materializing each stage
        // (same running sums, same divisions, in the same order) but only
        // two length-d rings stay live — no full-rate buffers — and the
        // second boxcar's division runs only at the samples the decimator
        // keeps, since every other quotient would be thrown away.
        iq.clear();
        iq.reserve(wave.len().div_ceil(d));
        tmp.clear();
        tmp.resize(2 * d, Cplx::ZERO);
        let (ring1, ring2) = tmp.split_at_mut(d);
        let mut mixer = match &self.carrier_tab {
            Some(_) => None,
            None => Some(DownConverter::new(self.cfg.sample_rate, self.cfg.carrier_hz)),
        };
        let phasors = self.carrier_tab.as_ref().map(|t| t.phasors());
        let mut ph = 0usize;
        let p = phasors.map_or(1, <[Cplx]>::len);
        let (mut acc1, mut acc2) = (Cplx::ZERO, Cplx::ZERO);
        let mut idx = 0usize; // i mod d, wrapping — ring slot and keep mark
        for (i, &x) in wave.iter().enumerate() {
            let z = match phasors {
                Some(tab) => {
                    let z = tab[ph] * x;
                    ph += 1;
                    if ph == p {
                        ph = 0;
                    }
                    z
                }
                None => mixer.as_mut().expect("fallback mixer").mix(x),
            };
            acc1 += z;
            let o1 = if i >= d {
                acc1 -= ring1[idx];
                acc1 / d as f64
            } else {
                acc1 / (i + 1) as f64
            };
            ring1[idx] = z;
            acc2 += o1;
            if i >= d {
                acc2 -= ring2[idx];
                if idx == 0 {
                    iq.push(acc2 / d as f64);
                }
            } else if idx == 0 {
                iq.push(acc2 / (i + 1) as f64);
            }
            ring2[idx] = o1;
            idx += 1;
            if idx == d {
                idx = 0;
            }
        }
    }

    /// Processes one slot's waveform.
    ///
    /// Slicing operates on the *principal-component projection* of the IQ
    /// samples, not on the envelope magnitude: when a tag's backscatter
    /// phasor lands near quadrature with the carrier leak, |IQ| barely
    /// moves (the classic backscatter blind spot), but the modulation axis
    /// in the IQ plane always carries the full swing.
    pub fn process_slot(&self, wave: &[f64]) -> SlotRx {
        self.process_slot_with(wave, &mut RxScratch::default())
    }

    /// [`UplinkReceiver::process_slot`] over a caller-owned scratch: bit-
    /// identical results, but a warm scratch makes the whole chain
    /// allocation-free. Keep one scratch per worker thread.
    pub fn process_slot_with(&self, wave: &[f64], scratch: &mut RxScratch) -> SlotRx {
        if wave.len() < 64 {
            return SlotRx {
                fail: Some(DecodeFailReason::TooShort),
                ..SlotRx::empty()
            };
        }
        let RxScratch {
            iq,
            tmp,
            proj,
            sorted,
            steps,
            steps_sorted,
            settled,
            sub,
            edges,
            ..
        } = scratch;
        self.to_baseband_into(wave, iq, tmp);
        let n = iq.len() as f64;
        let mean = iq.iter().fold(Cplx::ZERO, |a, &z| a + z) / n;
        // 2×2 covariance → principal axis.
        let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
        for &z in iq.iter() {
            let d = z - mean;
            sxx += d.re * d.re;
            sxy += d.re * d.im;
            syy += d.im * d.im;
        }
        let theta = 0.5 * (2.0 * sxy).atan2(sxx - syy);
        let (ct, st) = (theta.cos(), theta.sin());
        proj.clear();
        proj.extend(
            iq.iter()
                .map(|z| (z.re - mean.re) * ct + (z.im - mean.im) * st),
        );

        // Adaptive slicing thresholds from projection percentiles.
        sorted.clear();
        sorted.extend_from_slice(proj);
        sorted.sort_by(f64::total_cmp);
        let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        let (lo, hi) = (p(0.05), p(0.95));
        let mid = 0.5 * (lo + hi);
        let range = hi - lo;
        let clusters = Self::count_clusters(iq, steps, steps_sorted, settled, sub);
        let collision = clusters > 2;
        let leak_scale = mean.abs().max(1e-12);
        if !range.is_finite() || range < self.cfg.min_contrast * leak_scale {
            // A non-finite range means NaN/Inf samples poisoned the
            // percentiles (degenerate channel config); there is no usable
            // modulation contrast either way, and building a Schmitt slicer
            // from non-finite thresholds would panic.
            // No modulation: empty slot (but clustering may still have seen
            // something odd; keep its verdict).
            return SlotRx {
                packet: None,
                collision,
                clusters,
                edges: 0,
                fail: Some(DecodeFailReason::NoModulation),
            };
        }

        let mut slicer = Schmitt::new(mid + 0.2 * range * 0.5, mid - 0.2 * range * 0.5);
        slicer.process_edges_into(proj, edges);
        // The PCA axis sign is arbitrary; the decoder's dual-polarity scan
        // absorbs it.
        let (packet, fail) = match self.decode_edges_internal(edges) {
            Ok(pkt) => (Some(pkt), None),
            Err(reason) => (None, Some(reason)),
        };
        SlotRx {
            packet,
            collision,
            clusters,
            edges: edges.len(),
            fail,
        }
    }

    /// Counts significant IQ clusters (sub-sampled for speed).
    ///
    /// Samples in the middle of a symbol transition (the anti-alias ramp)
    /// sit between constellation points and inflate the within-cluster
    /// spread, hiding weak tags' states; they are removed by a local
    /// derivative test before clustering.
    fn count_clusters(
        iq: &[Cplx],
        steps: &mut Vec<f64>,
        steps_sorted: &mut Vec<f64>,
        settled: &mut Vec<Cplx>,
        sub: &mut Vec<Cplx>,
    ) -> usize {
        if iq.len() < 3 {
            return 1;
        }
        // Local step sizes; settled samples move far less than ramps. The
        // cutoff keys on the large (ramp) steps — a median-based cutoff
        // collapses on noiseless channels where settled steps are ~0.
        steps.clear();
        steps.extend(iq.windows(2).map(|w| (w[1] - w[0]).abs()));
        steps_sorted.clear();
        steps_sorted.extend_from_slice(steps);
        steps_sorted.sort_by(f64::total_cmp);
        let median_step = steps_sorted[steps_sorted.len() / 2];
        let p95_step = steps_sorted[(steps_sorted.len() - 1) * 19 / 20];
        let cutoff = (3.0 * median_step).max(0.25 * p95_step).max(1e-12);
        settled.clear();
        settled.extend(
            (1..iq.len() - 1)
                .filter(|&i| steps[i - 1] < cutoff && steps[i] < cutoff)
                .map(|i| iq[i]),
        );
        let source: &[Cplx] = if settled.len() >= iq.len() / 4 {
            settled
        } else {
            iq
        };
        let stride = (source.len() / 1_500).max(1);
        sub.clear();
        sub.extend(source.iter().step_by(stride).copied());
        let cfg = ClusterConfig {
            separation_ratio: 3.5,
            ..ClusterConfig::default()
        };
        cluster_iq(sub, cfg).len()
    }

    /// Edge-domain FM0 decode: runs → raw bits → preamble search → packet.
    /// `Err` carries the first stage that could not proceed.
    pub(crate) fn decode_edges_internal(
        &self,
        edges: &[Edge],
    ) -> Result<UlPacket, DecodeFailReason> {
        if edges.len() < 8 {
            return Err(DecodeFailReason::TooFewEdges);
        }
        // Build (start, level) transitions; run k spans transition k→k+1.
        let times: Vec<(usize, bool)> = edges
            .iter()
            .map(|e| match *e {
                Edge::Rising(i) => (i, true),
                Edge::Falling(i) => (i, false),
            })
            .collect();

        // Estimate the raw-bit duration in decimated samples. Nominal:
        let t_nom = self.cfg.sample_rate / (self.cfg.ul_bps * self.decimation() as f64);
        let mut shorts = Vec::new();
        for w in times.windows(2) {
            let run = (w[1].0 - w[0].0) as f64;
            if run > 0.6 * t_nom && run < 1.4 * t_nom {
                shorts.push(run);
            } else if run > 1.6 * t_nom && run < 2.4 * t_nom {
                shorts.push(run / 2.0);
            }
        }
        if shorts.is_empty() {
            return Err(DecodeFailReason::NoBitClock);
        }
        let t_est = shorts.iter().sum::<f64>() / shorts.len() as f64;

        // Expand runs to raw bits. The run before the first edge and after
        // the last are unbounded (idle), so only interior runs count; the
        // level during run k is the polarity of transition k.
        let mut raw = BitBuf::new();
        // The level *before* the first transition may hold the packet's
        // clipped head run (up to 2 raw bits — e.g. the slicer armed
        // mid-run, or the idle level coincides with the first symbol's
        // level under inverted polarity). Prepend it unconditionally: a
        // wrong guess cannot produce a CRC-valid packet.
        if let Some(&(_, first_lvl)) = times.first() {
            raw.push(!first_lvl);
            raw.push(!first_lvl);
        }
        for (ri, w) in times.windows(2).enumerate() {
            let run = (w[1].0 - w[0].0) as f64;
            let n = (run / t_est).round() as usize;
            if !(1..=2).contains(&n) {
                if ri == 0 && n > 2 {
                    // Stream-onset artifact: the receiver switched on mid-
                    // level, so the first run absorbed idle time. Only its
                    // tail can belong to the packet — keep 2 raw bits (the
                    // CRC rejects wrong guesses).
                    raw.push(w[0].1);
                    raw.push(w[0].1);
                    continue;
                }
                // Not a legal FM0 run: restart decoding after this point by
                // inserting a separator the preamble search cannot match.
                // (Simplest: push 3 alternating bits which kill alignment.)
                raw.push(w[0].1);
                raw.push(!w[0].1);
                raw.push(w[0].1);
                continue;
            }
            for _ in 0..n {
                raw.push(w[0].1);
            }
        }

        // Symmetrically, the run after the final transition merges with the
        // idle tail and never produces an edge: append two bits of the
        // ongoing level.
        if let Some(&(_, lvl)) = times.last() {
            raw.push(lvl);
            raw.push(lvl);
        }

        // Slide the FM0-expanded preamble over the raw stream; the
        // envelope polarity depends on the leak-relative backscatter phase,
        // so scan both senses.
        let (pkt, saw_preamble_a) = self.scan_raw(&raw);
        if let Some(pkt) = pkt {
            return Ok(pkt);
        }
        let inverted: BitBuf = raw.iter().map(|b| !b).collect();
        let (pkt, saw_preamble_b) = self.scan_raw(&inverted);
        match pkt {
            Some(pkt) => Ok(pkt),
            None if saw_preamble_a || saw_preamble_b => Err(DecodeFailReason::BadCrc),
            None => Err(DecodeFailReason::NoPreamble),
        }
    }

    /// Scans a recovered raw-bit stream for a preamble + CRC-valid body.
    /// Also reports whether *any* preamble alignment matched (to tell a
    /// CRC reject apart from never finding the preamble at all).
    fn scan_raw(&self, raw: &BitBuf) -> (Option<UlPacket>, bool) {
        let pre = &self.preamble_raw;
        let need_body = 2 * (arachnet_core::packet::UL_PACKET_BITS - 8);
        if raw.len() < pre.len() + need_body {
            return (None, false);
        }
        let mut saw_preamble = false;
        'outer: for start in 0..=(raw.len() - pre.len() - need_body) {
            for (k, &pb) in pre.iter().enumerate() {
                if raw.get(start + k) != Some(pb) {
                    continue 'outer;
                }
            }
            saw_preamble = true;
            let body_raw = raw
                .slice(start + pre.len(), need_body)
                .expect("bounds checked");
            if let Ok(body_bits) = fm0::decode_lenient(&body_raw) {
                if let Ok(pkt) = UlPacket::from_body_bits(&body_bits) {
                    return (Some(pkt), true);
                }
            }
        }
        (None, saw_preamble)
    }

    /// Welch PSD of a slot waveform (for analysis and the SNR metric).
    pub fn psd(&self, wave: &[f64]) -> Psd {
        let seg = 8_192.min(wave.len().next_power_of_two() / 2).max(256);
        welch_psd(wave, self.cfg.sample_rate, seg, Window::Hann)
    }

    /// The paper's Fig. 12(a) SNR: backscatter sideband power density over
    /// the surrounding band's density.
    ///
    /// The CW carrier leak (and the unmodulated mean of the backscatter)
    /// sits exactly at f_c and would spill through the analysis window's
    /// sidelobes into the modulation band, so it is coherently estimated
    /// and subtracted before the PSD — the "frequency offset calibration"
    /// stage of the real reader does the equivalent job.
    pub fn uplink_snr_db(&self, wave: &[f64]) -> f64 {
        self.uplink_snr_db_with(wave, &mut RxScratch::default())
    }

    /// [`UplinkReceiver::uplink_snr_db`] over a caller-owned scratch
    /// (allocation-free once warm; identical results).
    pub fn uplink_snr_db_with(&self, wave: &[f64], scratch: &mut RxScratch) -> f64 {
        let fc = self.cfg.carrier_hz;
        let r = self.cfg.ul_bps;
        // Coherent carrier estimate a = (2/N) Σ x[n] e^{-jωn}.
        let w = 2.0 * std::f64::consts::PI * fc / self.cfg.sample_rate;
        let mut acc = Cplx::ZERO;
        match &self.carrier_tab {
            Some(tab) => {
                // Wrapping phase counter: same phasors, no `%` per sample.
                let phasors = tab.phasors();
                let p = phasors.len();
                let mut ph = 0usize;
                for &x in wave {
                    acc += phasors[ph] * x;
                    ph += 1;
                    if ph == p {
                        ph = 0;
                    }
                }
            }
            None => {
                for (n, &x) in wave.iter().enumerate() {
                    acc += Cplx::cis(-w * n as f64) * x;
                }
            }
        }
        let a = acc * (2.0 / wave.len() as f64);
        let RxScratch {
            cleaned,
            corr,
            welch,
            psd,
            ..
        } = scratch;
        cleaned.clear();
        match &self.carrier_tab {
            Some(tab) => {
                // `(phasor.conj() * a).re` only takes one value per table
                // phase — compute each once, then subtraction is a lookup.
                corr.clear();
                corr.extend(tab.phasors().iter().map(|z| (z.conj() * a).re));
                let p = corr.len();
                let mut ph = 0usize;
                cleaned.extend(wave.iter().map(|&x| {
                    let y = x - corr[ph];
                    ph += 1;
                    if ph == p {
                        ph = 0;
                    }
                    y
                }));
            }
            None => cleaned.extend(
                wave.iter()
                    .enumerate()
                    .map(|(n, &x)| x - (Cplx::cis(w * n as f64) * a).re),
            ),
        }
        let seg = 8_192.min(cleaned.len().next_power_of_two() / 2).max(256);
        welch_psd_into(cleaned, self.cfg.sample_rate, seg, Window::Hann, welch, psd);
        let psd = &*psd;
        let band = |lo: f64, hi: f64| psd.band_power(lo, hi);
        // Modulation sidebands of FM0 OOK at raw rate R.
        let sig = band(fc + 0.1 * r, fc + 2.0 * r) + band(fc - 2.0 * r, fc - 0.1 * r);
        let sig_bw = 2.0 * 1.9 * r;
        let noise = band(fc + 4.0 * r, fc + 12.0 * r) + band(fc - 12.0 * r, fc - 4.0 * r);
        let noise_bw = 2.0 * 8.0 * r;
        let sig_d = (sig / sig_bw).max(f64::MIN_POSITIVE);
        let noise_d = (noise / noise_bw).max(f64::MIN_POSITIVE);
        10.0 * (sig_d / noise_d).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biw_channel::channel::{BiwChannel, ChannelConfig};
    use biw_channel::noise::NoiseConfig;
    use biw_channel::pzt::PztState;

    fn channel(noise: NoiseConfig) -> BiwChannel {
        BiwChannel::paper(ChannelConfig {
            noise,
            seed: 7,
            ..ChannelConfig::default()
        })
    }

    /// Synthesizes one tag's packet transmission into a reader waveform.
    fn tag_waveform(ch: &BiwChannel, tid: u8, packet: &UlPacket, bps: f64) -> Vec<f64> {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(packet.to_bits().iter()).to_bools();
        let spb = (500_000.0f64 / bps).round() as usize;
        // Idle lead-in and tail.
        let mut states = vec![PztState::Absorptive; 8 * spb];
        states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        states.extend(vec![PztState::Absorptive; 8 * spb]);
        let len = states.len();
        ch.uplink_waveform(&[(tid, &states)], len)
    }

    #[test]
    fn nan_bearing_waveform_does_not_panic_the_rx_chain() {
        // Regression: the adaptive-slicing percentile sort used
        // `partial_cmp().unwrap()`, so one NaN sample from a degenerate
        // channel config panicked the whole sweep worker. With `total_cmp`
        // the chain must classify the slot (any outcome) without panicking.
        let ch = channel(NoiseConfig::silent());
        let pkt = UlPacket::new(8, 0xABC).unwrap();
        let mut wave = tag_waveform(&ch, 8, &pkt, 375.0);
        for i in (0..wave.len()).step_by(97) {
            wave[i] = f64::NAN;
        }
        let mid = wave.len() / 2;
        wave[mid] = f64::INFINITY;
        let rx = UplinkReceiver::new(RxConfig::default());
        let mut scratch = RxScratch::default();
        let out = rx.process_slot_with(&wave, &mut scratch);
        // No particular decode outcome is required — only survival.
        assert!(out.edges < wave.len(), "edge count stayed bounded");
    }

    #[test]
    fn decodes_clean_packet_from_strong_tag() {
        let ch = channel(NoiseConfig::silent());
        let pkt = UlPacket::new(8, 0xABC).unwrap();
        let wave = tag_waveform(&ch, 8, &pkt, 375.0);
        let rx = UplinkReceiver::new(RxConfig::default());
        let out = rx.process_slot(&wave);
        assert_eq!(out.packet, Some(pkt));
        assert!(!out.collision, "single tag flagged as collision: {out:?}");
    }

    #[test]
    fn decodes_weak_far_tag() {
        let ch = channel(NoiseConfig::default());
        let pkt = UlPacket::new(11, 0x123).unwrap();
        let wave = tag_waveform(&ch, 11, &pkt, 375.0);
        let rx = UplinkReceiver::new(RxConfig::default());
        let out = rx.process_slot(&wave);
        assert_eq!(
            out.packet,
            Some(pkt),
            "edges={} clusters={}",
            out.edges,
            out.clusters
        );
    }

    #[test]
    fn decodes_at_all_paper_rates() {
        let ch = channel(NoiseConfig::silent());
        for bps in [93.75, 187.5, 375.0, 750.0, 1_500.0, 3_000.0] {
            let pkt = UlPacket::new(4, 0x5A5).unwrap();
            let wave = tag_waveform(&ch, 4, &pkt, bps);
            let rx = UplinkReceiver::new(RxConfig {
                ul_bps: bps,
                ..RxConfig::default()
            });
            let out = rx.process_slot(&wave);
            assert_eq!(out.packet, Some(pkt), "rate {bps}");
        }
    }

    #[test]
    fn empty_slot_yields_nothing() {
        let ch = channel(NoiseConfig::default());
        let wave = ch.uplink_waveform(&[], 100_000);
        let rx = UplinkReceiver::new(RxConfig::default());
        let out = rx.process_slot(&wave);
        assert_eq!(out.packet, None);
        assert!(!out.collision);
    }

    #[test]
    fn two_tags_flag_collision() {
        // Two concurrent backscatterers with *different* data: the IQ
        // constellation shows the Cartesian product of their states.
        let ch = channel(NoiseConfig::silent());
        let p1 = UlPacket::new(8, 0x155).unwrap();
        let p2 = UlPacket::new(7, 0xEAA).unwrap();
        let spb = (500_000.0f64 / 375.0).round() as usize;
        let mk = |p: &UlPacket| {
            let mut enc = Fm0Encoder::new();
            let raw = enc.encode(p.to_bits().iter()).to_bools();
            let mut s = vec![PztState::Absorptive; 8 * spb];
            s.extend(BiwChannel::states_from_raw_bits(&raw, spb));
            s.extend(vec![PztState::Absorptive; 8 * spb]);
            s
        };
        let s1 = mk(&p1);
        let s2 = mk(&p2);
        let len = s1.len();
        let wave = ch.uplink_waveform(&[(8, &s1), (7, &s2)], len);
        let rx = UplinkReceiver::new(RxConfig::default());
        let out = rx.process_slot(&wave);
        assert!(out.collision, "clusters={}", out.clusters);
    }

    #[test]
    fn corrupted_crc_is_rejected() {
        let ch = channel(NoiseConfig::silent());
        let pkt = UlPacket::new(8, 0xABC).unwrap();
        // Flip one payload bit after encoding by building raw manually.
        let mut bits = pkt.to_bits();
        bits.set(15, !bits.get(15).unwrap());
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(bits.iter()).to_bools();
        let spb = (500_000.0f64 / 375.0).round() as usize;
        let mut states = vec![PztState::Absorptive; 8 * spb];
        states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        states.extend(vec![PztState::Absorptive; 8 * spb]);
        let len = states.len();
        let wave = ch.uplink_waveform(&[(8, &states)], len);
        let rx = UplinkReceiver::new(RxConfig::default());
        assert_eq!(rx.process_slot(&wave).packet, None);
    }

    #[test]
    fn survives_tag_clock_drift() {
        // ±3 % raw-bit scaling: the edge-domain decoder must still decode.
        let ch = channel(NoiseConfig::silent());
        let pkt = UlPacket::new(5, 0x7F7).unwrap();
        for scale in [0.97, 1.03] {
            let mut enc = Fm0Encoder::new();
            let raw = enc.encode(pkt.to_bits().iter()).to_bools();
            let spb = (500_000.0f64 / 375.0 * scale).round() as usize;
            let mut states = vec![PztState::Absorptive; 8 * spb];
            states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
            states.extend(vec![PztState::Absorptive; 8 * spb]);
            let len = states.len();
            let wave = ch.uplink_waveform(&[(5, &states)], len);
            let rx = UplinkReceiver::new(RxConfig::default());
            assert_eq!(rx.process_slot(&wave).packet, Some(pkt), "scale {scale}");
        }
    }

    #[test]
    fn snr_orders_tags_by_path_strength() {
        // Fig. 12(a): Tag 8 (nearest) > Tag 4 (junction) > Tag 11 (far).
        let ch = channel(NoiseConfig {
            floor_sigma: 0.02,
            ..NoiseConfig::default()
        });
        let rx = UplinkReceiver::new(RxConfig::default());
        let snr = |tid: u8| {
            let pkt = UlPacket::new(tid % 16, 0x3C3).unwrap();
            let wave = tag_waveform(&ch, tid, &pkt, 375.0);
            rx.uplink_snr_db(&wave)
        };
        let (s8, s4, s11) = (snr(8), snr(4), snr(11));
        assert!(s8 > s4, "tag8 {s8:.1} dB vs tag4 {s4:.1} dB");
        assert!(s4 > s11, "tag4 {s4:.1} dB vs tag11 {s11:.1} dB");
    }

    #[test]
    fn snr_decreases_with_bit_rate() {
        // Fig. 12(a): power spreads over wider bandwidth at higher rates.
        let ch = channel(NoiseConfig {
            floor_sigma: 0.02,
            ..NoiseConfig::default()
        });
        let pkt = UlPacket::new(8, 0x3C3).unwrap();
        let snr_at = |bps: f64| {
            let rx = UplinkReceiver::new(RxConfig {
                ul_bps: bps,
                ..RxConfig::default()
            });
            let wave = tag_waveform(&ch, 8, &pkt, bps);
            rx.uplink_snr_db(&wave)
        };
        let low = snr_at(93.75);
        let high = snr_at(3_000.0);
        assert!(low > high, "93.75 bps {low:.1} dB vs 3 kbps {high:.1} dB");
    }

    #[test]
    fn short_waveform_is_empty() {
        let rx = UplinkReceiver::new(RxConfig::default());
        let out = rx.process_slot(&[0.0; 10]);
        assert_eq!(out.packet, None);
        assert!(!out.collision);
        assert_eq!(out.fail, Some(DecodeFailReason::TooShort));
    }

    #[test]
    fn failure_reasons_match_the_stage_that_failed() {
        let rx = UplinkReceiver::new(RxConfig::default());
        // Idle silent channel: no modulation contrast at all.
        let silent_idle = channel(NoiseConfig::silent()).uplink_waveform(&[], 100_000);
        assert_eq!(
            rx.process_slot(&silent_idle).fail,
            Some(DecodeFailReason::NoModulation)
        );
        // Idle noisy channel: still no packet, some failure reason set.
        let ch = channel(NoiseConfig::default());
        let idle = ch.uplink_waveform(&[], 100_000);
        let noisy = rx.process_slot(&idle);
        assert_eq!(noisy.packet, None);
        assert!(noisy.fail.is_some());
        // A corrupted payload decodes edges fine but fails the body check.
        let pkt = UlPacket::new(8, 0xABC).unwrap();
        let mut bits = pkt.to_bits();
        bits.set(15, !bits.get(15).unwrap());
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(bits.iter()).to_bools();
        let spb = (500_000.0f64 / 375.0).round() as usize;
        let silent = channel(NoiseConfig::silent());
        let mut states = vec![PztState::Absorptive; 8 * spb];
        states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        states.extend(vec![PztState::Absorptive; 8 * spb]);
        let len = states.len();
        let wave = silent.uplink_waveform(&[(8, &states)], len);
        let out = rx.process_slot(&wave);
        assert_eq!(out.packet, None);
        assert!(matches!(
            out.fail,
            Some(DecodeFailReason::BadCrc) | Some(DecodeFailReason::NoPreamble)
        ));
        // A good decode carries no failure reason.
        let good = tag_waveform(&silent, 8, &pkt, 375.0);
        let ok = rx.process_slot(&good);
        assert_eq!(ok.packet, Some(pkt));
        assert_eq!(ok.fail, None);
    }

    #[test]
    fn warm_scratch_is_bit_identical() {
        // The scratch-reusing path must produce the same result whether the
        // scratch is fresh or warm from an unrelated (longer) waveform —
        // that invariance is what makes per-worker scratch sharing safe.
        let ch = channel(NoiseConfig::default());
        let pkt = UlPacket::new(8, 0x6D2).unwrap();
        let wave = tag_waveform(&ch, 8, &pkt, 375.0);
        let idle = ch.uplink_waveform(&[], 150_000);
        let rx = UplinkReceiver::new(RxConfig::default());
        let fresh_slot = rx.process_slot(&wave);
        let fresh_snr = rx.uplink_snr_db(&wave);
        let mut scratch = RxScratch::default();
        rx.process_slot_with(&idle, &mut scratch);
        rx.uplink_snr_db_with(&idle, &mut scratch);
        assert_eq!(rx.process_slot_with(&wave, &mut scratch), fresh_slot);
        assert_eq!(rx.uplink_snr_db_with(&wave, &mut scratch), fresh_snr);
        assert_eq!(fresh_slot.packet, Some(pkt));
    }
}
