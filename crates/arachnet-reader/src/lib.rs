//! # arachnet-reader — the backscatter reader (Sec. 6.1)
//!
//! The paper's reader is a USB DAQ (500 kHz sampling) plus C++ software
//! handling "DL transmission, UL reception, and network protocols in real
//! time". This crate is that software:
//!
//! * [`tx`] — the beacon transmitter: PIE modulation with the 0.1–0.3 ms
//!   per-symbol software jitter the paper measures (the reader modulates
//!   PIE "using software… via USB commands");
//! * [`rx`] — the uplink receiver: down-conversion, low-pass/decimation,
//!   adaptive slicing, edge-domain FM0 decoding (immune to tag clock
//!   drift), CRC check, IQ-domain collision detection (Sec. 5.3) and the
//!   PSD-based SNR metric of Fig. 12(a);
//! * [`pipeline`] — the same receiver assembled as the paper's
//!   back-pressure block pipeline, for the streaming/real-time form;
//! * [`driver`] — the slot loop that binds the reader MAC
//!   (`arachnet-core`) to TX and RX timing;
//! * [`fleet`] — frequency-space division for reader fleets: the
//!   validated per-reader FDMA sub-band [`fleet::FleetPlan`] plus the
//!   inter-reader interference-rejecting [`fleet::FleetReceiver`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod fdma;
pub mod fleet;
pub mod pipeline;
pub mod rx;
pub mod tx;

pub use driver::ReaderDriver;
pub use fleet::{FleetPlan, FleetPlanError, FleetReceiver, FleetRxScratch};
pub use rx::{SlotRx, UplinkReceiver};
pub use tx::BeaconTransmitter;
