//! Frequency-space division for reader fleets (the multi-reader MAC).
//!
//! K readers on adjacent bodies share one acoustic medium (see
//! `biw_channel::fleet`), so their CW carriers leak into each other's RX
//! PZTs. The coordinator avoids inter-reader interference the way Trident
//! does for RFID: *frequency-space division*. Each reader is assigned its
//! own sub-band carrier from a validated [`FleetPlan`], and the receiver
//! front-end additionally performs *inter-reader interference rejection* —
//! each foreign carrier is coherently estimated over the slot
//! (`a = (2/N) Σ x[n] e^{-jωn}`, the same estimate the SNR metric uses for
//! the own carrier) and subtracted before the single-reader chain runs.
//!
//! Sub-bands are chosen so that every carrier has an *exact* sample period
//! at the DAQ rate: the synthesis and mixing hot paths then stay on the
//! prebuilt block tables ([`CarrierTable`]) with no per-sample trig.

use std::fmt;

use arachnet_dsp::cplx::Cplx;
use arachnet_dsp::nco::CarrierTable;
use biw_channel::fleet::{MAX_BAND_HZ, MIN_BAND_HZ};

use crate::rx::{RxConfig, RxScratch, SlotRx, UplinkReceiver};

/// Minimum sub-band separation (Hz) a valid FDMA plan must keep: wide
/// enough that the decimation filter puts a foreign carrier well outside
/// the modulation band at every paper bit rate.
pub const MIN_SPACING_HZ: f64 = 2_000.0;

/// Most readers a single plan will coordinate.
pub const MAX_READERS: usize = 8;

/// Why a [`FleetPlan`] failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetPlanError {
    /// The plan has no readers.
    NoReaders,
    /// More readers than [`MAX_READERS`].
    TooManyReaders {
        /// Requested reader count.
        readers: usize,
    },
    /// A sub-band carrier left the usable acoustic band.
    OutOfBand {
        /// The offending carrier (Hz).
        carrier_hz: f64,
    },
    /// Two sub-bands sit closer than [`MIN_SPACING_HZ`].
    TooClose {
        /// One carrier of the offending pair (Hz).
        a: f64,
        /// The other carrier (Hz).
        b: f64,
    },
    /// A carrier has no exact sample period at the DAQ rate, which would
    /// knock synthesis and mixing off the block-table fast path.
    NoExactPeriod {
        /// The offending carrier (Hz).
        carrier_hz: f64,
    },
}

impl fmt::Display for FleetPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetPlanError::NoReaders => write!(f, "fleet plan needs at least one reader"),
            FleetPlanError::TooManyReaders { readers } => {
                write!(f, "{readers} readers exceeds the supported fleet size ({MAX_READERS})")
            }
            FleetPlanError::OutOfBand { carrier_hz } => write!(
                f,
                "sub-band {carrier_hz} Hz outside the usable band \
                 [{MIN_BAND_HZ}, {MAX_BAND_HZ}] Hz"
            ),
            FleetPlanError::TooClose { a, b } => write!(
                f,
                "sub-bands {a} Hz and {b} Hz closer than {MIN_SPACING_HZ} Hz"
            ),
            FleetPlanError::NoExactPeriod { carrier_hz } => write!(
                f,
                "carrier {carrier_hz} Hz has no exact sample period at the DAQ rate"
            ),
        }
    }
}

impl std::error::Error for FleetPlanError {}

/// A validated per-reader FDMA sub-band assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    sample_rate: f64,
    carriers: Vec<f64>,
}

impl FleetPlan {
    /// The default plan: `readers` sub-bands on a grid centred on the
    /// 90 kHz resonance at 4 kHz spacing (offsets 0, +4, −4, +8, … kHz),
    /// validated end to end.
    pub fn fdma(readers: usize, sample_rate: f64) -> Result<Self, FleetPlanError> {
        Self::with_spacing(readers, 90_000.0, 4_000.0, sample_rate)
    }

    /// A plan on a centred grid with explicit base carrier and spacing.
    pub fn with_spacing(
        readers: usize,
        base_hz: f64,
        spacing_hz: f64,
        sample_rate: f64,
    ) -> Result<Self, FleetPlanError> {
        let carriers = (0..readers)
            .map(|r| {
                // 0, +1, -1, +2, -2, … grid steps.
                let step = (r as i64 + 1) / 2;
                let sign = if r % 2 == 1 { 1.0 } else { -1.0 };
                base_hz + sign * step as f64 * spacing_hz
            })
            .collect();
        let plan = Self {
            sample_rate,
            carriers,
        };
        plan.validate(true)?;
        Ok(plan)
    }

    /// A plan for more readers than available sub-bands: `bands` distinct
    /// sub-bands of the default grid, assigned round-robin, so some cells
    /// share a band. Spacing is validated across the *distinct* carriers;
    /// sharing itself is legal — the fleet soak uses exactly this shape to
    /// measure the cost of frequency-space collision (see
    /// [`FleetPlan::band`]).
    pub fn fdma_reuse(
        readers: usize,
        bands: usize,
        sample_rate: f64,
    ) -> Result<Self, FleetPlanError> {
        if readers > MAX_READERS {
            return Err(FleetPlanError::TooManyReaders { readers });
        }
        let grid = Self::fdma(bands.min(readers.max(1)), sample_rate)?;
        let carriers = (0..readers)
            .map(|r| grid.carriers[r % grid.readers()])
            .collect();
        let plan = Self {
            sample_rate,
            carriers,
        };
        plan.validate(false)?;
        Ok(plan)
    }

    /// The deliberately degenerate baseline: every reader on the *same*
    /// carrier. Skips the spacing check (that is the point) but still
    /// validates band membership and the exact-period requirement — this
    /// is the "no frequency-space division" arm of the interference
    /// experiments, not a plan anyone should deploy.
    pub fn co_channel(
        readers: usize,
        base_hz: f64,
        sample_rate: f64,
    ) -> Result<Self, FleetPlanError> {
        let plan = Self {
            sample_rate,
            carriers: vec![base_hz; readers],
        };
        plan.validate(false)?;
        Ok(plan)
    }

    fn validate(&self, check_spacing: bool) -> Result<(), FleetPlanError> {
        if self.carriers.is_empty() {
            return Err(FleetPlanError::NoReaders);
        }
        if self.carriers.len() > MAX_READERS {
            return Err(FleetPlanError::TooManyReaders {
                readers: self.carriers.len(),
            });
        }
        for &f in &self.carriers {
            if !(MIN_BAND_HZ..=MAX_BAND_HZ).contains(&f) {
                return Err(FleetPlanError::OutOfBand { carrier_hz: f });
            }
            if CarrierTable::exact(self.sample_rate, f, 4096).is_none() {
                return Err(FleetPlanError::NoExactPeriod { carrier_hz: f });
            }
        }
        if check_spacing {
            for (i, &a) in self.carriers.iter().enumerate() {
                for &b in &self.carriers[i + 1..] {
                    if (a - b).abs() < MIN_SPACING_HZ {
                        return Err(FleetPlanError::TooClose { a, b });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of readers in the plan.
    pub fn readers(&self) -> usize {
        self.carriers.len()
    }

    /// DAQ sample rate the plan was validated against (Hz).
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Per-reader carrier assignment (Hz), indexed by reader.
    pub fn carriers(&self) -> &[f64] {
        &self.carriers
    }

    /// Reader `r`'s assigned carrier (Hz).
    pub fn carrier_hz(&self, r: usize) -> f64 {
        self.carriers[r]
    }

    /// Reader `r`'s sub-band index: the rank of its carrier among the
    /// plan's distinct carriers, ascending. Readers sharing a carrier
    /// (the co-channel baseline) share a band index — band reuse is how
    /// the fleet soak detects frequency-space collisions.
    pub fn band(&self, r: usize) -> usize {
        let f = self.carriers[r];
        let mut distinct: Vec<f64> = self.carriers.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        distinct.iter().position(|&x| x == f).expect("own carrier")
    }
}

/// Reusable working set for [`FleetReceiver`]: the interference-rejected
/// waveform copy, the per-phase correction table, and the single-reader
/// chain's scratch. Contents never influence results.
#[derive(Debug, Clone, Default)]
pub struct FleetRxScratch {
    cleaned: Vec<f64>,
    corr: Vec<f64>,
    /// Scratch of the wrapped single-reader chain.
    pub rx: RxScratch,
}

/// One interferer the receiver must reject.
#[derive(Debug, Clone)]
struct Interferer {
    /// Angular frequency per sample (trig fallback).
    w: f64,
    /// Exact-period conjugate-phasor table, when one exists.
    tab: Option<CarrierTable>,
}

/// The multi-reader receiver front-end: inter-reader interference
/// rejection wrapped around the single-reader [`UplinkReceiver`].
#[derive(Debug, Clone)]
pub struct FleetReceiver {
    rx: UplinkReceiver,
    interferers: Vec<Interferer>,
    reject: bool,
}

impl FleetReceiver {
    /// Receiver for reader `reader` under `plan`, expecting `ul_bps`
    /// uplink raw bits. Every *other* plan carrier that differs from the
    /// reader's own becomes an interferer to reject (co-channel neighbours
    /// cannot be rejected coherently — subtracting the own-frequency CW
    /// would also null the backscatter mean — so they are skipped).
    pub fn new(plan: &FleetPlan, reader: usize, ul_bps: f64) -> Self {
        let own = plan.carrier_hz(reader);
        let cfg = RxConfig {
            sample_rate: plan.sample_rate(),
            carrier_hz: own,
            ul_bps,
            ..RxConfig::default()
        };
        let interferers = plan
            .carriers()
            .iter()
            .enumerate()
            .filter(|&(r, &f)| r != reader && (f - own).abs() > 1.0)
            .map(|(_, &f)| Interferer {
                w: 2.0 * std::f64::consts::PI * f / plan.sample_rate(),
                tab: CarrierTable::exact(plan.sample_rate(), f, 4096),
            })
            .collect();
        Self {
            rx: UplinkReceiver::new(cfg),
            interferers,
            reject: true,
        }
    }

    /// Enables/disables the rejection stage (on by default); with it off
    /// the receiver degenerates to the bare single-reader chain — the
    /// "FDMA without rejection" arm of the interference experiments.
    pub fn set_rejection(&mut self, on: bool) {
        self.reject = on;
    }

    /// The wrapped single-reader receiver.
    pub fn inner(&self) -> &UplinkReceiver {
        &self.rx
    }

    /// Number of foreign carriers this receiver rejects.
    pub fn interferer_count(&self) -> usize {
        self.interferers.len()
    }

    /// Coherently estimates and subtracts every foreign carrier from
    /// `wave` in place (see the module docs for the estimator).
    fn reject_into(&self, wave: &mut [f64], corr: &mut Vec<f64>) {
        for it in &self.interferers {
            let mut acc = Cplx::ZERO;
            match &it.tab {
                Some(tab) => {
                    let phasors = tab.phasors();
                    let p = phasors.len();
                    let mut ph = 0usize;
                    for &x in wave.iter() {
                        acc += phasors[ph] * x;
                        ph += 1;
                        if ph == p {
                            ph = 0;
                        }
                    }
                    let a = acc * (2.0 / wave.len() as f64);
                    // One correction value per table phase, computed once.
                    corr.clear();
                    corr.extend(phasors.iter().map(|z| (z.conj() * a).re));
                    let mut ph = 0usize;
                    for x in wave.iter_mut() {
                        *x -= corr[ph];
                        ph += 1;
                        if ph == p {
                            ph = 0;
                        }
                    }
                }
                None => {
                    for (n, &x) in wave.iter().enumerate() {
                        acc += Cplx::cis(-it.w * n as f64) * x;
                    }
                    let a = acc * (2.0 / wave.len() as f64);
                    for (n, x) in wave.iter_mut().enumerate() {
                        *x -= (Cplx::cis(it.w * n as f64) * a).re;
                    }
                }
            }
        }
    }

    /// Processes one slot: interference rejection (when enabled and there
    /// is anything to reject), then the single-reader chain. Bit-identical
    /// across scratch reuse, like the chain it wraps.
    pub fn process_slot_with(&self, wave: &[f64], scratch: &mut FleetRxScratch) -> SlotRx {
        if !self.reject || self.interferers.is_empty() {
            return self.rx.process_slot_with(wave, &mut scratch.rx);
        }
        scratch.cleaned.clear();
        scratch.cleaned.extend_from_slice(wave);
        self.reject_into(&mut scratch.cleaned, &mut scratch.corr);
        self.rx.process_slot_with(&scratch.cleaned, &mut scratch.rx)
    }

    /// SNR of the slot after interference rejection (the fleet analogue of
    /// [`UplinkReceiver::uplink_snr_db_with`]).
    pub fn uplink_snr_db_with(&self, wave: &[f64], scratch: &mut FleetRxScratch) -> f64 {
        if !self.reject || self.interferers.is_empty() {
            return self.rx.uplink_snr_db_with(wave, &mut scratch.rx);
        }
        scratch.cleaned.clear();
        scratch.cleaned.extend_from_slice(wave);
        self.reject_into(&mut scratch.cleaned, &mut scratch.corr);
        self.rx.uplink_snr_db_with(&scratch.cleaned, &mut scratch.rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arachnet_core::fm0::Fm0Encoder;
    use arachnet_core::packet::UlPacket;
    use biw_channel::channel::{BiwChannel, ChannelConfig};
    use biw_channel::fleet::{FleetChannel, FleetChannelConfig};
    use biw_channel::noise::NoiseConfig;
    use biw_channel::pzt::PztState;

    #[test]
    fn fdma_plan_assigns_distinct_inband_carriers() {
        let plan = FleetPlan::fdma(4, 500_000.0).unwrap();
        assert_eq!(plan.readers(), 4);
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..4 {
            let f = plan.carrier_hz(r);
            assert!((MIN_BAND_HZ..=MAX_BAND_HZ).contains(&f), "reader {r}: {f}");
            assert!(seen.insert(f as i64), "duplicate carrier {f}");
            assert!(
                CarrierTable::exact(500_000.0, f, 4096).is_some(),
                "reader {r}: carrier {f} has no exact period"
            );
        }
        // Bands are a permutation of 0..readers.
        let mut bands: Vec<usize> = (0..4).map(|r| plan.band(r)).collect();
        bands.sort_unstable();
        assert_eq!(bands, vec![0, 1, 2, 3]);
    }

    #[test]
    fn plan_validation_catches_bad_configs() {
        assert_eq!(
            FleetPlan::fdma(0, 500_000.0),
            Err(FleetPlanError::NoReaders)
        );
        assert_eq!(
            FleetPlan::fdma(9, 500_000.0),
            Err(FleetPlanError::TooManyReaders { readers: 9 })
        );
        assert!(matches!(
            FleetPlan::with_spacing(2, 90_000.0, 500.0, 500_000.0),
            Err(FleetPlanError::TooClose { .. })
        ));
        assert!(matches!(
            FleetPlan::with_spacing(8, 90_000.0, 4_000.0, 500_000.0),
            Err(FleetPlanError::OutOfBand { .. })
        ));
        assert!(matches!(
            FleetPlan::with_spacing(2, 90_000.0, 2_000.0 + 0.12345, 500_000.0),
            Err(FleetPlanError::NoExactPeriod { .. })
        ));
        // Errors render readable messages.
        let e = FleetPlan::fdma(9, 500_000.0).unwrap_err();
        assert!(e.to_string().contains("fleet size"));
    }

    #[test]
    fn co_channel_plan_shares_one_band() {
        let plan = FleetPlan::co_channel(3, 90_000.0, 500_000.0).unwrap();
        assert_eq!(plan.readers(), 3);
        for r in 0..3 {
            assert_eq!(plan.band(r), 0);
        }
        // A co-channel receiver has nothing it can coherently reject.
        let rx = FleetReceiver::new(&plan, 0, 375.0);
        assert_eq!(rx.interferer_count(), 0);
    }

    fn packet_states(pkt: &UlPacket, spb: usize) -> Vec<PztState> {
        let mut enc = Fm0Encoder::new();
        let raw = enc.encode(pkt.to_bits().iter()).to_bools();
        let mut s = vec![PztState::Absorptive; 8 * spb];
        s.extend(BiwChannel::states_from_raw_bits(&raw, spb));
        s.extend(vec![PztState::Absorptive; 8 * spb]);
        s
    }

    #[test]
    fn rejection_recovers_packet_under_adjacent_carrier() {
        // Reader 0 decodes its tag while reader 1's 94 kHz carrier leaks
        // in; the rejection stage must recover the packet, and must
        // measurably remove the foreign carrier.
        let plan = FleetPlan::fdma(2, 500_000.0).unwrap();
        let fleet = FleetChannel::new(FleetChannelConfig {
            base: ChannelConfig {
                noise: NoiseConfig::silent(),
                ..ChannelConfig::default()
            },
            carriers: plan.carriers().to_vec(),
            cross_gain: 0.25,
        });
        let pkt = UlPacket::new(8, 0x3A5).unwrap();
        let spb = (500_000.0f64 / 375.0).round() as usize;
        let states = packet_states(&pkt, spb);
        let own: [(u8, &[PztState]); 1] = [(8, &states)];
        let idle: [(u8, &[PztState]); 0] = [];
        let mut wave = Vec::new();
        fleet.rx_waveform_into(0, &[&own, &idle], states.len(), 3, &mut wave);

        let rx = FleetReceiver::new(&plan, 0, 375.0);
        assert_eq!(rx.interferer_count(), 1);
        let mut scratch = FleetRxScratch::default();
        let out = rx.process_slot_with(&wave, &mut scratch);
        assert_eq!(out.packet, Some(pkt), "rejection failed: {out:?}");

        // The 94 kHz component drops by well over 20 dB.
        let f1 = plan.carrier_hz(1);
        let corr_at = |w: &[f64]| {
            let om = 2.0 * std::f64::consts::PI * f1 / 500_000.0;
            let mut acc = Cplx::ZERO;
            for (n, &x) in w.iter().enumerate() {
                acc += Cplx::cis(-om * n as f64) * x;
            }
            (acc * (2.0 / w.len() as f64)).abs()
        };
        let before = corr_at(&wave);
        let mut cleaned = wave.clone();
        rx.reject_into(&mut cleaned, &mut Vec::new());
        let after = corr_at(&cleaned);
        assert!(
            after < before / 10.0,
            "interferer only dropped {before} -> {after}"
        );
    }

    #[test]
    fn single_reader_fleet_receiver_is_the_plain_chain() {
        let plan = FleetPlan::fdma(1, 500_000.0).unwrap();
        let ch = BiwChannel::paper(ChannelConfig {
            seed: 7,
            ..ChannelConfig::default()
        });
        let pkt = UlPacket::new(5, 0x155).unwrap();
        let spb = (500_000.0f64 / 375.0).round() as usize;
        let states = packet_states(&pkt, spb);
        let wave = ch.uplink_waveform(&[(5, &states)], states.len());
        let rx = FleetReceiver::new(&plan, 0, 375.0);
        let mut scratch = FleetRxScratch::default();
        let fleet_out = rx.process_slot_with(&wave, &mut scratch);
        let plain_out = rx.inner().process_slot_with(&wave, &mut scratch.rx);
        assert_eq!(fleet_out, plain_out);
        assert_eq!(fleet_out.packet, Some(pkt));
    }
}
