/root/repo/target/release/deps/experiments-0eeabe989d44f3f4.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-0eeabe989d44f3f4: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
