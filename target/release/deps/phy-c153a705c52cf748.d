/root/repo/target/release/deps/phy-c153a705c52cf748.d: crates/bench/benches/phy.rs

/root/repo/target/release/deps/phy-c153a705c52cf748: crates/bench/benches/phy.rs

crates/bench/benches/phy.rs:
