/root/repo/target/release/deps/arachnet_testkit-453b105150687393.d: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/release/deps/libarachnet_testkit-453b105150687393.rlib: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/release/deps/libarachnet_testkit-453b105150687393.rmeta: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

crates/arachnet-testkit/src/lib.rs:
crates/arachnet-testkit/src/gen.rs:
crates/arachnet-testkit/src/runner.rs:
