/root/repo/target/release/deps/arachnet-e35159e0bebe3e81.d: src/lib.rs

/root/repo/target/release/deps/libarachnet-e35159e0bebe3e81.rlib: src/lib.rs

/root/repo/target/release/deps/libarachnet-e35159e0bebe3e81.rmeta: src/lib.rs

src/lib.rs:
