/root/repo/target/release/deps/arachnet_testkit-cf72c96d8407b78b.d: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/release/deps/arachnet_testkit-cf72c96d8407b78b: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

crates/arachnet-testkit/src/lib.rs:
crates/arachnet-testkit/src/gen.rs:
crates/arachnet-testkit/src/runner.rs:
