/root/repo/target/release/deps/arachnet_core-0546f0f12ba0a03a.d: crates/arachnet-core/src/lib.rs crates/arachnet-core/src/bits.rs crates/arachnet-core/src/convergence.rs crates/arachnet-core/src/crc.rs crates/arachnet-core/src/fm0.rs crates/arachnet-core/src/mac/mod.rs crates/arachnet-core/src/mac/reader.rs crates/arachnet-core/src/mac/tag.rs crates/arachnet-core/src/markov.rs crates/arachnet-core/src/packet.rs crates/arachnet-core/src/pie.rs crates/arachnet-core/src/rates.rs crates/arachnet-core/src/rng.rs crates/arachnet-core/src/slot.rs

/root/repo/target/release/deps/arachnet_core-0546f0f12ba0a03a: crates/arachnet-core/src/lib.rs crates/arachnet-core/src/bits.rs crates/arachnet-core/src/convergence.rs crates/arachnet-core/src/crc.rs crates/arachnet-core/src/fm0.rs crates/arachnet-core/src/mac/mod.rs crates/arachnet-core/src/mac/reader.rs crates/arachnet-core/src/mac/tag.rs crates/arachnet-core/src/markov.rs crates/arachnet-core/src/packet.rs crates/arachnet-core/src/pie.rs crates/arachnet-core/src/rates.rs crates/arachnet-core/src/rng.rs crates/arachnet-core/src/slot.rs

crates/arachnet-core/src/lib.rs:
crates/arachnet-core/src/bits.rs:
crates/arachnet-core/src/convergence.rs:
crates/arachnet-core/src/crc.rs:
crates/arachnet-core/src/fm0.rs:
crates/arachnet-core/src/mac/mod.rs:
crates/arachnet-core/src/mac/reader.rs:
crates/arachnet-core/src/mac/tag.rs:
crates/arachnet-core/src/markov.rs:
crates/arachnet-core/src/packet.rs:
crates/arachnet-core/src/pie.rs:
crates/arachnet-core/src/rates.rs:
crates/arachnet-core/src/rng.rs:
crates/arachnet-core/src/slot.rs:
