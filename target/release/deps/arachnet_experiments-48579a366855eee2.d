/root/repo/target/release/deps/arachnet_experiments-48579a366855eee2.d: crates/arachnet-experiments/src/lib.rs crates/arachnet-experiments/src/registry.rs crates/arachnet-experiments/src/render.rs crates/arachnet-experiments/src/report.rs crates/arachnet-experiments/src/ablation.rs crates/arachnet-experiments/src/ambient.rs crates/arachnet-experiments/src/fdma.rs crates/arachnet-experiments/src/fig11.rs crates/arachnet-experiments/src/fig12.rs crates/arachnet-experiments/src/fig13.rs crates/arachnet-experiments/src/fig14.rs crates/arachnet-experiments/src/fig15.rs crates/arachnet-experiments/src/fig16.rs crates/arachnet-experiments/src/fig17.rs crates/arachnet-experiments/src/fig19.rs crates/arachnet-experiments/src/markov.rs crates/arachnet-experiments/src/table1.rs crates/arachnet-experiments/src/table2.rs crates/arachnet-experiments/src/table3.rs crates/arachnet-experiments/src/table4.rs crates/arachnet-experiments/src/vanilla.rs

/root/repo/target/release/deps/libarachnet_experiments-48579a366855eee2.rlib: crates/arachnet-experiments/src/lib.rs crates/arachnet-experiments/src/registry.rs crates/arachnet-experiments/src/render.rs crates/arachnet-experiments/src/report.rs crates/arachnet-experiments/src/ablation.rs crates/arachnet-experiments/src/ambient.rs crates/arachnet-experiments/src/fdma.rs crates/arachnet-experiments/src/fig11.rs crates/arachnet-experiments/src/fig12.rs crates/arachnet-experiments/src/fig13.rs crates/arachnet-experiments/src/fig14.rs crates/arachnet-experiments/src/fig15.rs crates/arachnet-experiments/src/fig16.rs crates/arachnet-experiments/src/fig17.rs crates/arachnet-experiments/src/fig19.rs crates/arachnet-experiments/src/markov.rs crates/arachnet-experiments/src/table1.rs crates/arachnet-experiments/src/table2.rs crates/arachnet-experiments/src/table3.rs crates/arachnet-experiments/src/table4.rs crates/arachnet-experiments/src/vanilla.rs

/root/repo/target/release/deps/libarachnet_experiments-48579a366855eee2.rmeta: crates/arachnet-experiments/src/lib.rs crates/arachnet-experiments/src/registry.rs crates/arachnet-experiments/src/render.rs crates/arachnet-experiments/src/report.rs crates/arachnet-experiments/src/ablation.rs crates/arachnet-experiments/src/ambient.rs crates/arachnet-experiments/src/fdma.rs crates/arachnet-experiments/src/fig11.rs crates/arachnet-experiments/src/fig12.rs crates/arachnet-experiments/src/fig13.rs crates/arachnet-experiments/src/fig14.rs crates/arachnet-experiments/src/fig15.rs crates/arachnet-experiments/src/fig16.rs crates/arachnet-experiments/src/fig17.rs crates/arachnet-experiments/src/fig19.rs crates/arachnet-experiments/src/markov.rs crates/arachnet-experiments/src/table1.rs crates/arachnet-experiments/src/table2.rs crates/arachnet-experiments/src/table3.rs crates/arachnet-experiments/src/table4.rs crates/arachnet-experiments/src/vanilla.rs

crates/arachnet-experiments/src/lib.rs:
crates/arachnet-experiments/src/registry.rs:
crates/arachnet-experiments/src/render.rs:
crates/arachnet-experiments/src/report.rs:
crates/arachnet-experiments/src/ablation.rs:
crates/arachnet-experiments/src/ambient.rs:
crates/arachnet-experiments/src/fdma.rs:
crates/arachnet-experiments/src/fig11.rs:
crates/arachnet-experiments/src/fig12.rs:
crates/arachnet-experiments/src/fig13.rs:
crates/arachnet-experiments/src/fig14.rs:
crates/arachnet-experiments/src/fig15.rs:
crates/arachnet-experiments/src/fig16.rs:
crates/arachnet-experiments/src/fig17.rs:
crates/arachnet-experiments/src/fig19.rs:
crates/arachnet-experiments/src/markov.rs:
crates/arachnet-experiments/src/table1.rs:
crates/arachnet-experiments/src/table2.rs:
crates/arachnet-experiments/src/table3.rs:
crates/arachnet-experiments/src/table4.rs:
crates/arachnet-experiments/src/vanilla.rs:
