/root/repo/target/release/deps/arachnet_sensors-121683a942d58177.d: crates/arachnet-sensors/src/lib.rs

/root/repo/target/release/deps/arachnet_sensors-121683a942d58177: crates/arachnet-sensors/src/lib.rs

crates/arachnet-sensors/src/lib.rs:
