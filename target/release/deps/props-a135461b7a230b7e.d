/root/repo/target/release/deps/props-a135461b7a230b7e.d: tests/props.rs

/root/repo/target/release/deps/props-a135461b7a230b7e: tests/props.rs

tests/props.rs:
