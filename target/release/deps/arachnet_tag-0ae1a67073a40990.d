/root/repo/target/release/deps/arachnet_tag-0ae1a67073a40990.d: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/release/deps/arachnet_tag-0ae1a67073a40990: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

crates/arachnet-tag/src/lib.rs:
crates/arachnet-tag/src/demod.rs:
crates/arachnet-tag/src/device.rs:
crates/arachnet-tag/src/mcu.rs:
crates/arachnet-tag/src/modulator.rs:
crates/arachnet-tag/src/subcarrier.rs:
