/root/repo/target/release/deps/repro-c1b98ebf93140b23.d: crates/arachnet-experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-c1b98ebf93140b23: crates/arachnet-experiments/src/bin/repro.rs

crates/arachnet-experiments/src/bin/repro.rs:
