/root/repo/target/release/deps/hot_paths-6a9c69edfd71e2b3.d: crates/bench/benches/hot_paths.rs

/root/repo/target/release/deps/hot_paths-6a9c69edfd71e2b3: crates/bench/benches/hot_paths.rs

crates/bench/benches/hot_paths.rs:
