/root/repo/target/release/deps/arachnet_energy-f12b3eb6d92f9d49.d: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/release/deps/libarachnet_energy-f12b3eb6d92f9d49.rlib: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/release/deps/libarachnet_energy-f12b3eb6d92f9d49.rmeta: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

crates/arachnet-energy/src/lib.rs:
crates/arachnet-energy/src/ambient.rs:
crates/arachnet-energy/src/cutoff.rs:
crates/arachnet-energy/src/harvester.rs:
crates/arachnet-energy/src/ledger.rs:
crates/arachnet-energy/src/multiplier.rs:
crates/arachnet-energy/src/storage.rs:
