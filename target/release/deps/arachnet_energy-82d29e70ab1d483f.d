/root/repo/target/release/deps/arachnet_energy-82d29e70ab1d483f.d: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/release/deps/arachnet_energy-82d29e70ab1d483f: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

crates/arachnet-energy/src/lib.rs:
crates/arachnet-energy/src/ambient.rs:
crates/arachnet-energy/src/cutoff.rs:
crates/arachnet-energy/src/harvester.rs:
crates/arachnet-energy/src/ledger.rs:
crates/arachnet-energy/src/multiplier.rs:
crates/arachnet-energy/src/storage.rs:
