/root/repo/target/release/deps/arachnet_reader-a4129a8cee92611e.d: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/release/deps/libarachnet_reader-a4129a8cee92611e.rlib: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/release/deps/libarachnet_reader-a4129a8cee92611e.rmeta: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

crates/arachnet-reader/src/lib.rs:
crates/arachnet-reader/src/driver.rs:
crates/arachnet-reader/src/fdma.rs:
crates/arachnet-reader/src/pipeline.rs:
crates/arachnet-reader/src/rx.rs:
crates/arachnet-reader/src/tx.rs:
