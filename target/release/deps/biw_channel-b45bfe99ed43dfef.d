/root/repo/target/release/deps/biw_channel-b45bfe99ed43dfef.d: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

/root/repo/target/release/deps/biw_channel-b45bfe99ed43dfef: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

crates/biw-channel/src/lib.rs:
crates/biw-channel/src/channel.rs:
crates/biw-channel/src/geometry.rs:
crates/biw-channel/src/noise.rs:
crates/biw-channel/src/propagation.rs:
crates/biw-channel/src/pzt.rs:
crates/biw-channel/src/resonator.rs:
