/root/repo/target/release/deps/biw_channel-24ea68afee998a07.d: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

/root/repo/target/release/deps/libbiw_channel-24ea68afee998a07.rlib: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

/root/repo/target/release/deps/libbiw_channel-24ea68afee998a07.rmeta: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

crates/biw-channel/src/lib.rs:
crates/biw-channel/src/channel.rs:
crates/biw-channel/src/geometry.rs:
crates/biw-channel/src/noise.rs:
crates/biw-channel/src/propagation.rs:
crates/biw-channel/src/pzt.rs:
crates/biw-channel/src/resonator.rs:
