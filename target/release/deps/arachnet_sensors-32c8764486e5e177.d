/root/repo/target/release/deps/arachnet_sensors-32c8764486e5e177.d: crates/arachnet-sensors/src/lib.rs

/root/repo/target/release/deps/libarachnet_sensors-32c8764486e5e177.rlib: crates/arachnet-sensors/src/lib.rs

/root/repo/target/release/deps/libarachnet_sensors-32c8764486e5e177.rmeta: crates/arachnet-sensors/src/lib.rs

crates/arachnet-sensors/src/lib.rs:
