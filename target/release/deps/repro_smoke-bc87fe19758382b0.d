/root/repo/target/release/deps/repro_smoke-bc87fe19758382b0.d: tests/repro_smoke.rs tests/../EXPERIMENTS.md

/root/repo/target/release/deps/repro_smoke-bc87fe19758382b0: tests/repro_smoke.rs tests/../EXPERIMENTS.md

tests/repro_smoke.rs:
tests/../EXPERIMENTS.md:
