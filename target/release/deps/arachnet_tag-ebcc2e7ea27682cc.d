/root/repo/target/release/deps/arachnet_tag-ebcc2e7ea27682cc.d: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/release/deps/libarachnet_tag-ebcc2e7ea27682cc.rlib: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/release/deps/libarachnet_tag-ebcc2e7ea27682cc.rmeta: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

crates/arachnet-tag/src/lib.rs:
crates/arachnet-tag/src/demod.rs:
crates/arachnet-tag/src/device.rs:
crates/arachnet-tag/src/mcu.rs:
crates/arachnet-tag/src/modulator.rs:
crates/arachnet-tag/src/subcarrier.rs:
