/root/repo/target/release/deps/bench-e2708609d7358ee9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-e2708609d7358ee9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
