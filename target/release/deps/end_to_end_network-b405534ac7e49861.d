/root/repo/target/release/deps/end_to_end_network-b405534ac7e49861.d: tests/end_to_end_network.rs

/root/repo/target/release/deps/end_to_end_network-b405534ac7e49861: tests/end_to_end_network.rs

tests/end_to_end_network.rs:
