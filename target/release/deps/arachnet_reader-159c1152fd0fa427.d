/root/repo/target/release/deps/arachnet_reader-159c1152fd0fa427.d: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/release/deps/arachnet_reader-159c1152fd0fa427: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

crates/arachnet-reader/src/lib.rs:
crates/arachnet-reader/src/driver.rs:
crates/arachnet-reader/src/fdma.rs:
crates/arachnet-reader/src/pipeline.rs:
crates/arachnet-reader/src/rx.rs:
crates/arachnet-reader/src/tx.rs:
