/root/repo/target/release/deps/repro-065c020534708481.d: crates/arachnet-experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-065c020534708481: crates/arachnet-experiments/src/bin/repro.rs

crates/arachnet-experiments/src/bin/repro.rs:
