/root/repo/target/release/deps/fault_injection-02916c0c9656ac04.d: tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-02916c0c9656ac04: tests/fault_injection.rs

tests/fault_injection.rs:
