/root/repo/target/release/deps/bench-e2c72e9e9a60af63.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-e2c72e9e9a60af63.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-e2c72e9e9a60af63.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
