/root/repo/target/release/deps/phy_roundtrip-3cbfc3724e3b6011.d: tests/phy_roundtrip.rs

/root/repo/target/release/deps/phy_roundtrip-3cbfc3724e3b6011: tests/phy_roundtrip.rs

tests/phy_roundtrip.rs:
