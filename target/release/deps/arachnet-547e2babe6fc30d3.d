/root/repo/target/release/deps/arachnet-547e2babe6fc30d3.d: src/lib.rs

/root/repo/target/release/deps/arachnet-547e2babe6fc30d3: src/lib.rs

src/lib.rs:
