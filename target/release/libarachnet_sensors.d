/root/repo/target/release/libarachnet_sensors.rlib: /root/repo/crates/arachnet-sensors/src/lib.rs
