/root/repo/target/release/examples/quickstart-6f0d5efe7de4b89c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6f0d5efe7de4b89c: examples/quickstart.rs

examples/quickstart.rs:
