/root/repo/target/release/examples/prof_snr-0c692cb6dcf01f86.d: crates/bench/examples/prof_snr.rs

/root/repo/target/release/examples/prof_snr-0c692cb6dcf01f86: crates/bench/examples/prof_snr.rs

crates/bench/examples/prof_snr.rs:
