/root/repo/target/release/examples/battery_monitoring-a4faeb9e91ee01e7.d: examples/battery_monitoring.rs

/root/repo/target/release/examples/battery_monitoring-a4faeb9e91ee01e7: examples/battery_monitoring.rs

examples/battery_monitoring.rs:
