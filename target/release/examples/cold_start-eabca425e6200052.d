/root/repo/target/release/examples/cold_start-eabca425e6200052.d: examples/cold_start.rs

/root/repo/target/release/examples/cold_start-eabca425e6200052: examples/cold_start.rs

examples/cold_start.rs:
