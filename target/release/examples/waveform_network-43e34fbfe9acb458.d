/root/repo/target/release/examples/waveform_network-43e34fbfe9acb458.d: examples/waveform_network.rs

/root/repo/target/release/examples/waveform_network-43e34fbfe9acb458: examples/waveform_network.rs

examples/waveform_network.rs:
