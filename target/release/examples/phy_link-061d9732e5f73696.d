/root/repo/target/release/examples/phy_link-061d9732e5f73696.d: examples/phy_link.rs

/root/repo/target/release/examples/phy_link-061d9732e5f73696: examples/phy_link.rs

examples/phy_link.rs:
