/root/repo/target/debug/deps/repro-3e0cfbc83708d93e.d: crates/arachnet-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-3e0cfbc83708d93e: crates/arachnet-experiments/src/bin/repro.rs

crates/arachnet-experiments/src/bin/repro.rs:
