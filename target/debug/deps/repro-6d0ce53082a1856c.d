/root/repo/target/debug/deps/repro-6d0ce53082a1856c.d: crates/arachnet-experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6d0ce53082a1856c: crates/arachnet-experiments/src/bin/repro.rs

crates/arachnet-experiments/src/bin/repro.rs:
