/root/repo/target/debug/deps/biw_channel-1ffa1f2ac6b68113.d: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

/root/repo/target/debug/deps/biw_channel-1ffa1f2ac6b68113: crates/biw-channel/src/lib.rs crates/biw-channel/src/channel.rs crates/biw-channel/src/geometry.rs crates/biw-channel/src/noise.rs crates/biw-channel/src/propagation.rs crates/biw-channel/src/pzt.rs crates/biw-channel/src/resonator.rs

crates/biw-channel/src/lib.rs:
crates/biw-channel/src/channel.rs:
crates/biw-channel/src/geometry.rs:
crates/biw-channel/src/noise.rs:
crates/biw-channel/src/propagation.rs:
crates/biw-channel/src/pzt.rs:
crates/biw-channel/src/resonator.rs:
