/root/repo/target/debug/deps/arachnet_reader-94470d960a719f43.d: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/debug/deps/libarachnet_reader-94470d960a719f43.rlib: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/debug/deps/libarachnet_reader-94470d960a719f43.rmeta: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

crates/arachnet-reader/src/lib.rs:
crates/arachnet-reader/src/driver.rs:
crates/arachnet-reader/src/fdma.rs:
crates/arachnet-reader/src/pipeline.rs:
crates/arachnet-reader/src/rx.rs:
crates/arachnet-reader/src/tx.rs:
