/root/repo/target/debug/deps/arachnet_tag-987668ab2a0934e0.d: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/debug/deps/libarachnet_tag-987668ab2a0934e0.rlib: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/debug/deps/libarachnet_tag-987668ab2a0934e0.rmeta: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

crates/arachnet-tag/src/lib.rs:
crates/arachnet-tag/src/demod.rs:
crates/arachnet-tag/src/device.rs:
crates/arachnet-tag/src/mcu.rs:
crates/arachnet-tag/src/modulator.rs:
crates/arachnet-tag/src/subcarrier.rs:
