/root/repo/target/debug/deps/arachnet_dsp-7a0b111d4fdb6254.d: crates/arachnet-dsp/src/lib.rs crates/arachnet-dsp/src/cluster.rs crates/arachnet-dsp/src/correlate.rs crates/arachnet-dsp/src/cplx.rs crates/arachnet-dsp/src/decimate.rs crates/arachnet-dsp/src/envelope.rs crates/arachnet-dsp/src/fft.rs crates/arachnet-dsp/src/fir.rs crates/arachnet-dsp/src/freq.rs crates/arachnet-dsp/src/goertzel.rs crates/arachnet-dsp/src/iir.rs crates/arachnet-dsp/src/nco.rs crates/arachnet-dsp/src/pipeline.rs crates/arachnet-dsp/src/psd.rs crates/arachnet-dsp/src/schmitt.rs crates/arachnet-dsp/src/window.rs

/root/repo/target/debug/deps/arachnet_dsp-7a0b111d4fdb6254: crates/arachnet-dsp/src/lib.rs crates/arachnet-dsp/src/cluster.rs crates/arachnet-dsp/src/correlate.rs crates/arachnet-dsp/src/cplx.rs crates/arachnet-dsp/src/decimate.rs crates/arachnet-dsp/src/envelope.rs crates/arachnet-dsp/src/fft.rs crates/arachnet-dsp/src/fir.rs crates/arachnet-dsp/src/freq.rs crates/arachnet-dsp/src/goertzel.rs crates/arachnet-dsp/src/iir.rs crates/arachnet-dsp/src/nco.rs crates/arachnet-dsp/src/pipeline.rs crates/arachnet-dsp/src/psd.rs crates/arachnet-dsp/src/schmitt.rs crates/arachnet-dsp/src/window.rs

crates/arachnet-dsp/src/lib.rs:
crates/arachnet-dsp/src/cluster.rs:
crates/arachnet-dsp/src/correlate.rs:
crates/arachnet-dsp/src/cplx.rs:
crates/arachnet-dsp/src/decimate.rs:
crates/arachnet-dsp/src/envelope.rs:
crates/arachnet-dsp/src/fft.rs:
crates/arachnet-dsp/src/fir.rs:
crates/arachnet-dsp/src/freq.rs:
crates/arachnet-dsp/src/goertzel.rs:
crates/arachnet-dsp/src/iir.rs:
crates/arachnet-dsp/src/nco.rs:
crates/arachnet-dsp/src/pipeline.rs:
crates/arachnet-dsp/src/psd.rs:
crates/arachnet-dsp/src/schmitt.rs:
crates/arachnet-dsp/src/window.rs:
