/root/repo/target/debug/deps/arachnet_sim-9c9b9d953870919e.d: crates/arachnet-sim/src/lib.rs crates/arachnet-sim/src/aloha.rs crates/arachnet-sim/src/config.rs crates/arachnet-sim/src/cosim.rs crates/arachnet-sim/src/metrics.rs crates/arachnet-sim/src/patterns.rs crates/arachnet-sim/src/slotsim.rs crates/arachnet-sim/src/sweep.rs crates/arachnet-sim/src/vanilla.rs crates/arachnet-sim/src/wavesim.rs

/root/repo/target/debug/deps/arachnet_sim-9c9b9d953870919e: crates/arachnet-sim/src/lib.rs crates/arachnet-sim/src/aloha.rs crates/arachnet-sim/src/config.rs crates/arachnet-sim/src/cosim.rs crates/arachnet-sim/src/metrics.rs crates/arachnet-sim/src/patterns.rs crates/arachnet-sim/src/slotsim.rs crates/arachnet-sim/src/sweep.rs crates/arachnet-sim/src/vanilla.rs crates/arachnet-sim/src/wavesim.rs

crates/arachnet-sim/src/lib.rs:
crates/arachnet-sim/src/aloha.rs:
crates/arachnet-sim/src/config.rs:
crates/arachnet-sim/src/cosim.rs:
crates/arachnet-sim/src/metrics.rs:
crates/arachnet-sim/src/patterns.rs:
crates/arachnet-sim/src/slotsim.rs:
crates/arachnet-sim/src/sweep.rs:
crates/arachnet-sim/src/vanilla.rs:
crates/arachnet-sim/src/wavesim.rs:
