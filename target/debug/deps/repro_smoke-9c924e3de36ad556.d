/root/repo/target/debug/deps/repro_smoke-9c924e3de36ad556.d: tests/repro_smoke.rs tests/../EXPERIMENTS.md

/root/repo/target/debug/deps/repro_smoke-9c924e3de36ad556: tests/repro_smoke.rs tests/../EXPERIMENTS.md

tests/repro_smoke.rs:
tests/../EXPERIMENTS.md:
