/root/repo/target/debug/deps/props-0ac374f3398a1b06.d: tests/props.rs

/root/repo/target/debug/deps/props-0ac374f3398a1b06: tests/props.rs

tests/props.rs:
