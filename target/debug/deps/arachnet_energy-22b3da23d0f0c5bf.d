/root/repo/target/debug/deps/arachnet_energy-22b3da23d0f0c5bf.d: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/debug/deps/libarachnet_energy-22b3da23d0f0c5bf.rlib: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/debug/deps/libarachnet_energy-22b3da23d0f0c5bf.rmeta: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

crates/arachnet-energy/src/lib.rs:
crates/arachnet-energy/src/ambient.rs:
crates/arachnet-energy/src/cutoff.rs:
crates/arachnet-energy/src/harvester.rs:
crates/arachnet-energy/src/ledger.rs:
crates/arachnet-energy/src/multiplier.rs:
crates/arachnet-energy/src/storage.rs:
