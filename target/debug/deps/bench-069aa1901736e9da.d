/root/repo/target/debug/deps/bench-069aa1901736e9da.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-069aa1901736e9da.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-069aa1901736e9da.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
