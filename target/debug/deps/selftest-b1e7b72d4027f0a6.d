/root/repo/target/debug/deps/selftest-b1e7b72d4027f0a6.d: crates/arachnet-testkit/tests/selftest.rs

/root/repo/target/debug/deps/selftest-b1e7b72d4027f0a6: crates/arachnet-testkit/tests/selftest.rs

crates/arachnet-testkit/tests/selftest.rs:
