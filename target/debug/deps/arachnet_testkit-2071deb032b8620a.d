/root/repo/target/debug/deps/arachnet_testkit-2071deb032b8620a.d: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/debug/deps/libarachnet_testkit-2071deb032b8620a.rlib: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/debug/deps/libarachnet_testkit-2071deb032b8620a.rmeta: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

crates/arachnet-testkit/src/lib.rs:
crates/arachnet-testkit/src/gen.rs:
crates/arachnet-testkit/src/runner.rs:
