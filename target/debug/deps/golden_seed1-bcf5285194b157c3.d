/root/repo/target/debug/deps/golden_seed1-bcf5285194b157c3.d: tests/golden_seed1.rs

/root/repo/target/debug/deps/golden_seed1-bcf5285194b157c3: tests/golden_seed1.rs

tests/golden_seed1.rs:
