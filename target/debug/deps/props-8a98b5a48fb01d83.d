/root/repo/target/debug/deps/props-8a98b5a48fb01d83.d: crates/arachnet-tag/tests/props.rs

/root/repo/target/debug/deps/props-8a98b5a48fb01d83: crates/arachnet-tag/tests/props.rs

crates/arachnet-tag/tests/props.rs:
