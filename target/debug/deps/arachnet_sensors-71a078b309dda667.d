/root/repo/target/debug/deps/arachnet_sensors-71a078b309dda667.d: crates/arachnet-sensors/src/lib.rs

/root/repo/target/debug/deps/libarachnet_sensors-71a078b309dda667.rlib: crates/arachnet-sensors/src/lib.rs

/root/repo/target/debug/deps/libarachnet_sensors-71a078b309dda667.rmeta: crates/arachnet-sensors/src/lib.rs

crates/arachnet-sensors/src/lib.rs:
