/root/repo/target/debug/deps/arachnet-a8dec6958b093e95.d: src/lib.rs

/root/repo/target/debug/deps/arachnet-a8dec6958b093e95: src/lib.rs

src/lib.rs:
