/root/repo/target/debug/deps/phy_roundtrip-68706e20562738db.d: tests/phy_roundtrip.rs

/root/repo/target/debug/deps/phy_roundtrip-68706e20562738db: tests/phy_roundtrip.rs

tests/phy_roundtrip.rs:
