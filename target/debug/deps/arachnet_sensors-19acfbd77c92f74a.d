/root/repo/target/debug/deps/arachnet_sensors-19acfbd77c92f74a.d: crates/arachnet-sensors/src/lib.rs

/root/repo/target/debug/deps/arachnet_sensors-19acfbd77c92f74a: crates/arachnet-sensors/src/lib.rs

crates/arachnet-sensors/src/lib.rs:
