/root/repo/target/debug/deps/end_to_end_network-7a4f2a83ddf95fa3.d: tests/end_to_end_network.rs

/root/repo/target/debug/deps/end_to_end_network-7a4f2a83ddf95fa3: tests/end_to_end_network.rs

tests/end_to_end_network.rs:
