/root/repo/target/debug/deps/fault_injection-127659e1dfb6f880.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-127659e1dfb6f880: tests/fault_injection.rs

tests/fault_injection.rs:
