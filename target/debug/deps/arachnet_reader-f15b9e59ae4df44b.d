/root/repo/target/debug/deps/arachnet_reader-f15b9e59ae4df44b.d: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

/root/repo/target/debug/deps/arachnet_reader-f15b9e59ae4df44b: crates/arachnet-reader/src/lib.rs crates/arachnet-reader/src/driver.rs crates/arachnet-reader/src/fdma.rs crates/arachnet-reader/src/pipeline.rs crates/arachnet-reader/src/rx.rs crates/arachnet-reader/src/tx.rs

crates/arachnet-reader/src/lib.rs:
crates/arachnet-reader/src/driver.rs:
crates/arachnet-reader/src/fdma.rs:
crates/arachnet-reader/src/pipeline.rs:
crates/arachnet-reader/src/rx.rs:
crates/arachnet-reader/src/tx.rs:
