/root/repo/target/debug/deps/arachnet_energy-28398f383762abe5.d: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

/root/repo/target/debug/deps/arachnet_energy-28398f383762abe5: crates/arachnet-energy/src/lib.rs crates/arachnet-energy/src/ambient.rs crates/arachnet-energy/src/cutoff.rs crates/arachnet-energy/src/harvester.rs crates/arachnet-energy/src/ledger.rs crates/arachnet-energy/src/multiplier.rs crates/arachnet-energy/src/storage.rs

crates/arachnet-energy/src/lib.rs:
crates/arachnet-energy/src/ambient.rs:
crates/arachnet-energy/src/cutoff.rs:
crates/arachnet-energy/src/harvester.rs:
crates/arachnet-energy/src/ledger.rs:
crates/arachnet-energy/src/multiplier.rs:
crates/arachnet-energy/src/storage.rs:
