/root/repo/target/debug/deps/props-47fa869c412b3581.d: crates/arachnet-energy/tests/props.rs

/root/repo/target/debug/deps/props-47fa869c412b3581: crates/arachnet-energy/tests/props.rs

crates/arachnet-energy/tests/props.rs:
