/root/repo/target/debug/deps/props-011e55e32d7b635a.d: crates/arachnet-dsp/tests/props.rs

/root/repo/target/debug/deps/props-011e55e32d7b635a: crates/arachnet-dsp/tests/props.rs

crates/arachnet-dsp/tests/props.rs:
