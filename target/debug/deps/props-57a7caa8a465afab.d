/root/repo/target/debug/deps/props-57a7caa8a465afab.d: crates/biw-channel/tests/props.rs

/root/repo/target/debug/deps/props-57a7caa8a465afab: crates/biw-channel/tests/props.rs

crates/biw-channel/tests/props.rs:
