/root/repo/target/debug/deps/bench-149c96a49a1bb910.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-149c96a49a1bb910: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
