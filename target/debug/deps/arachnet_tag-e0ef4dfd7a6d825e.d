/root/repo/target/debug/deps/arachnet_tag-e0ef4dfd7a6d825e.d: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

/root/repo/target/debug/deps/arachnet_tag-e0ef4dfd7a6d825e: crates/arachnet-tag/src/lib.rs crates/arachnet-tag/src/demod.rs crates/arachnet-tag/src/device.rs crates/arachnet-tag/src/mcu.rs crates/arachnet-tag/src/modulator.rs crates/arachnet-tag/src/subcarrier.rs

crates/arachnet-tag/src/lib.rs:
crates/arachnet-tag/src/demod.rs:
crates/arachnet-tag/src/device.rs:
crates/arachnet-tag/src/mcu.rs:
crates/arachnet-tag/src/modulator.rs:
crates/arachnet-tag/src/subcarrier.rs:
