/root/repo/target/debug/deps/arachnet-61bca25ce73830c2.d: src/lib.rs

/root/repo/target/debug/deps/libarachnet-61bca25ce73830c2.rlib: src/lib.rs

/root/repo/target/debug/deps/libarachnet-61bca25ce73830c2.rmeta: src/lib.rs

src/lib.rs:
