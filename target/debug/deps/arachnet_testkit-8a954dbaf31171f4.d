/root/repo/target/debug/deps/arachnet_testkit-8a954dbaf31171f4.d: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

/root/repo/target/debug/deps/arachnet_testkit-8a954dbaf31171f4: crates/arachnet-testkit/src/lib.rs crates/arachnet-testkit/src/gen.rs crates/arachnet-testkit/src/runner.rs

crates/arachnet-testkit/src/lib.rs:
crates/arachnet-testkit/src/gen.rs:
crates/arachnet-testkit/src/runner.rs:
