/root/repo/target/debug/examples/waveform_network-463809ad9562206e.d: examples/waveform_network.rs

/root/repo/target/debug/examples/waveform_network-463809ad9562206e: examples/waveform_network.rs

examples/waveform_network.rs:
