/root/repo/target/debug/examples/phy_link-cacffdc76ca4163a.d: examples/phy_link.rs

/root/repo/target/debug/examples/phy_link-cacffdc76ca4163a: examples/phy_link.rs

examples/phy_link.rs:
