/root/repo/target/debug/examples/quickstart-99d94fd74d1380d7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-99d94fd74d1380d7: examples/quickstart.rs

examples/quickstart.rs:
