/root/repo/target/debug/examples/dbgf-330daa0785b3411d.d: crates/arachnet-reader/examples/dbgf.rs

/root/repo/target/debug/examples/dbgf-330daa0785b3411d: crates/arachnet-reader/examples/dbgf.rs

crates/arachnet-reader/examples/dbgf.rs:
