/root/repo/target/debug/examples/cold_start-f830f0a5dca7afb3.d: examples/cold_start.rs

/root/repo/target/debug/examples/cold_start-f830f0a5dca7afb3: examples/cold_start.rs

examples/cold_start.rs:
