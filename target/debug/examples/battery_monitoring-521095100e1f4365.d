/root/repo/target/debug/examples/battery_monitoring-521095100e1f4365.d: examples/battery_monitoring.rs

/root/repo/target/debug/examples/battery_monitoring-521095100e1f4365: examples/battery_monitoring.rs

examples/battery_monitoring.rs:
