//! Cold start: battery-free tags waking up one by one.
//!
//! Every supercapacitor starts at 0 V. The reader's carrier charges the
//! tags through their voltage multipliers; the well-placed tags activate
//! within seconds, the cargo-area stragglers take close to a minute
//! (Fig. 11b), and each one integrates into the running schedule as a
//! *late arrival* through the EMPTY-gated admission of Sec. 5.5 — no
//! RESET, no re-synchronization of the already-settled tags.
//!
//! Run: `cargo run --release --example cold_start`

use arachnet_core::mac::MacState;
use arachnet_sim::patterns::Pattern;
use arachnet_sim::slotsim::{SlotSim, SlotSimConfig};
use arachnet_tag::device::Lifecycle;

fn main() {
    let mut sim = SlotSim::new(SlotSimConfig {
        charged_start: false, // everyone starts flat
        ..SlotSimConfig::new(Pattern::c3(), 99)
    });

    println!("slot | active | settled | voltages (V)");
    println!("-----+--------+---------+--------------------------------------------");
    let mut last_active = 0;
    for slot in 1..=1_200u64 {
        sim.step();
        let active = sim
            .tags()
            .iter()
            .filter(|t| t.lifecycle() == Lifecycle::Active)
            .count();
        let settled = sim
            .tags()
            .iter()
            .filter(|t| t.mac().state() == MacState::Settle)
            .count();
        if active != last_active || slot % 50 == 0 {
            let volts: Vec<String> = sim
                .tags()
                .iter()
                .map(|t| format!("{:.2}", t.voltage()))
                .collect();
            println!("{slot:4} | {active:6} | {settled:7} | {}", volts.join(" "));
            last_active = active;
        }
    }

    let active = sim
        .tags()
        .iter()
        .filter(|t| t.lifecycle() == Lifecycle::Active)
        .count();
    let settled = sim
        .tags()
        .iter()
        .filter(|t| t.mac().state() == MacState::Settle)
        .count();
    println!("\nafter 1200 slots: {active}/12 active, {settled}/12 settled");

    // Activation order follows the harvested-voltage ladder: tag 8 first,
    // tag 11 last.
    let mut order: Vec<(u8, u64)> = sim
        .tags()
        .iter()
        .map(|t| (t.tid(), t.activations()))
        .collect();
    order.sort_by_key(|&(tid, _)| tid);
    println!("\nactivations per tag: {order:?}");
    assert_eq!(active, 12, "every tag must eventually activate (Fig. 11a)");
    assert!(
        settled >= 10,
        "late arrivals must integrate ({settled}/12 settled)"
    );
    // (the last period-32 straggler can need a few hundred more slots: it
    // only probes EMPTY-flagged slots once per period)

    let run = sim.summary();
    println!(
        "long-run stats during staggered bring-up: non-empty {:.3}, collision {:.3}",
        run.non_empty_ratio, run.collision_ratio
    );
    println!("\nall tags activated and integrated without a network reset.");
}
