//! Battery-pack monitoring: the paper's motivating workload.
//!
//! Tags over the battery pack need frequent updates (damage "can pose
//! safety risks, including fires" — second-level monitoring), while tags
//! watching structural aging report rarely. This example runs the full
//! 12-tag deployment with heterogeneous periods, injects a mid-run battery
//! "event" via the strain sensor chain, and shows the readings the reader
//! collects — end to end from displacement to decoded 12-bit payload.
//!
//! Run: `cargo run --release --example battery_monitoring`

use arachnet_core::slot::Period;
use arachnet_sensors::StrainSensor;
use arachnet_sim::patterns::Pattern;
use arachnet_sim::slotsim::{SlotSim, SlotSimConfig, TruthOutcome};

fn main() {
    // Battery-pack tags (second row, 4–8) report every 4 slots; front-row
    // tags every 16; cargo-area aging monitors every 32.
    let p = |v| Period::new(v).unwrap();
    let pattern = Pattern {
        name: "battery-monitoring",
        tags: vec![
            (1, p(16)),
            (2, p(16)),
            (3, p(16)),
            (4, p(4)),
            (5, p(4)),
            (6, p(8)),
            (7, p(8)),
            (8, p(4)),
            (9, p(32)),
            (10, p(32)),
            (11, p(32)),
            (12, p(32)),
        ],
    };
    println!(
        "workload: {} tags, utilization {:.3} (battery tags at period 4, aging tags at 32)",
        pattern.len(),
        pattern.utilization()
    );

    let mut sim = SlotSim::new(SlotSimConfig::new(pattern, 7));
    sim.run(4);
    sim.reset_network();

    // Each battery tag carries a strain sensor; the pack swells slowly
    // after slot 600 (thermal event) — displacement ramps up.
    let sensor = StrainSensor::default();
    let displacement_at = |slot: u64| -> f64 {
        if slot < 600 {
            0.002 // quiescent vibration-level strain
        } else {
            0.002 + 0.0005 * (slot - 600) as f64 // swelling
        }
    };

    let mut readings: Vec<(u64, u8, u16)> = Vec::new();
    let mut collisions = 0u64;
    for slot in 1..=1_000u64 {
        match sim.step() {
            TruthOutcome::Single(tid) if (4..=8).contains(&tid) => {
                let code = sensor.sample(displacement_at(slot).min(0.10));
                readings.push((slot, tid, code));
            }
            TruthOutcome::Collision(_) => collisions += 1,
            _ => {}
        }
    }

    let run = sim.summary();
    println!(
        "1000 slots: non-empty {:.3}, collision {:.3}, converged at {:?}",
        run.non_empty_ratio, run.collision_ratio, run.converged_at
    );
    println!("total collisions: {collisions}");

    // The reader's view of the battery pack: baseline vs post-event codes.
    let baseline: Vec<u16> = readings.iter().filter(|r| r.0 < 600).map(|r| r.2).collect();
    let event: Vec<u16> = readings
        .iter()
        .filter(|r| r.0 >= 700)
        .map(|r| r.2)
        .collect();
    let avg = |v: &[u16]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nbattery-pack ADC codes: baseline avg {:.0} ({} samples), after event {:.0} ({} samples)",
        avg(&baseline),
        baseline.len(),
        avg(&event),
        event.len()
    );
    println!("last 5 readings (slot, tag, code):");
    for r in readings.iter().rev().take(5).rev() {
        println!("  slot {:4}  tag {:2}  code {:4}", r.0, r.1, r.2);
    }
    assert!(
        avg(&event) > avg(&baseline) + 10.0,
        "the swelling event must be visible in the readings"
    );
    println!("\nthe thermal-event swelling is clearly visible in the uplink payloads.");
}
