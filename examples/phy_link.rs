//! The physical link, end to end: bits → vibration → bits.
//!
//! Walks one uplink packet and one downlink beacon through the full
//! waveform pipeline — FM0/PIE coding, the calibrated BiW acoustic
//! channel (spreading, damping, junction losses, resonance), the reader's
//! DSP chain (down-conversion, decimation, adaptive slicing, edge-domain
//! decoding, IQ collision detection) and the tag's interrupt-driven
//! demodulator — printing what each stage sees.
//!
//! Run: `cargo run --release --example phy_link`

use arachnet_core::fm0::Fm0Encoder;
use arachnet_core::packet::{DlBeacon, DlCmd, UlPacket};
use arachnet_reader::rx::{RxConfig, UplinkReceiver};
use arachnet_reader::tx::BeaconTransmitter;
use arachnet_sim::wavesim::WaveSim;
use arachnet_tag::demod::PieDemodulator;
use arachnet_tag::mcu::McuClock;
use biw_channel::channel::{BiwChannel, ChannelConfig};
use biw_channel::noise::NoiseConfig;
use biw_channel::pzt::PztState;

fn main() {
    let channel = BiwChannel::paper(ChannelConfig {
        noise: NoiseConfig {
            floor_sigma: 0.02,
            ..NoiseConfig::default()
        },
        ..ChannelConfig::default()
    });

    // --- Link budget -----------------------------------------------------
    println!("per-tag link budget (one-way gain / carrier voltage at tag):");
    for tid in [8u8, 7, 4, 11] {
        let site = channel.deployment().site(tid).unwrap();
        println!(
            "  tag {tid:2}: path {:.2} m, {} seam(s), {} perp — gain {:.3}, V_P {:.3} V, delay {:.0} us",
            site.path.length_m,
            site.path.seam_junctions,
            site.path.perp_junctions,
            site.path.gain(),
            channel.tag_carrier_voltage(tid).unwrap(),
            site.path.delay_s() * 1e6
        );
    }

    // --- Uplink: tag 11 (the hardest link) -------------------------------
    let pkt = UlPacket::new(11, 0xBEE).unwrap();
    let mut enc = Fm0Encoder::new();
    let raw = enc.encode(pkt.to_bits().iter()).to_bools();
    let spb = (500_000.0f64 / 375.0).round() as usize;
    let mut states = vec![PztState::Absorptive; 8 * spb];
    states.extend(BiwChannel::states_from_raw_bits(&raw, spb));
    states.extend(vec![PztState::Absorptive; 8 * spb]);
    let len = states.len();
    let wave = channel.uplink_waveform(&[(11, &states)], len);

    let rx = UplinkReceiver::new(RxConfig::default());
    let out = rx.process_slot(&wave);
    let snr = rx.uplink_snr_db(&wave);
    println!("\nuplink (tag 11 → reader at 375 bps):");
    println!(
        "  {} raw FM0 bits over {:.0} ms, {} waveform samples",
        raw.len(),
        raw.len() as f64 / 375.0 * 1e3,
        wave.len()
    );
    println!("  decoded: {:?}", out.packet);
    println!(
        "  IQ clusters: {} (collision: {})",
        out.clusters, out.collision
    );
    println!("  PSD-band SNR: {snr:.1} dB");
    assert_eq!(out.packet, Some(pkt), "the weakest tag must decode cleanly");

    // --- Downlink: the same beacon at every tag --------------------------
    let mut tx = BeaconTransmitter::new(250.0, 5);
    let beacon = DlBeacon::new(DlCmd::ack().with_empty(true));
    let edges = tx.edges(&beacon, 0.0);
    println!("\ndownlink (reader beacon at 250 bps, with software jitter):");
    let sim = WaveSim::paper(5);
    for tid in [8u8, 4, 11] {
        let mut demod = PieDemodulator::new(McuClock::for_tag(5, tid), 250.0);
        // The wavesim transforms edges by path delay + envelope rise/fall.
        let dl = sim.downlink_trial(tid, 250.0, 50);
        let direct = demod.feed_edges(&edges);
        println!(
            "  tag {tid:2}: ideal-channel decode {}, lossy-channel {}/{} beacons ok",
            if direct.first().map(|d| d.beacon) == Some(beacon) {
                "ok"
            } else {
                "FAILED"
            },
            dl.sent - dl.lost,
            dl.sent
        );
    }

    // --- Collision: two tags at once -------------------------------------
    let p7 = UlPacket::new(7, 0x111).unwrap();
    let mut e7 = Fm0Encoder::new();
    let raw7 = e7.encode(p7.to_bits().iter()).to_bools();
    let mut s7 = vec![PztState::Absorptive; 8 * spb];
    s7.extend(BiwChannel::states_from_raw_bits(&raw7, spb));
    s7.extend(vec![PztState::Absorptive; 8 * spb]);
    let wave2 = channel.uplink_waveform(&[(11, &states), (7, &s7)], len);
    let out2 = rx.process_slot(&wave2);
    println!(
        "\ntwo concurrent tags: clusters = {}, collision flagged = {} (Sec. 5.3's IQ clustering)",
        out2.clusters, out2.collision
    );
    assert!(out2.collision, "concurrent transmissions must be flagged");

    println!("\nphysical link verified end to end.");
}
