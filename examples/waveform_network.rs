//! The whole stack, no shortcuts: a network converging over real waveforms.
//!
//! Every slot here is physically played out — jittered PIE beacon edges,
//! per-tag clock-drifted demodulation, FM0 backscatter waveforms superposed
//! on the acoustic channel, the reader's DSP chain and IQ-cluster collision
//! detector — with the distributed slot-allocation MAC closing the loop.
//! Contrast with `quickstart`, which uses the (10⁵× faster) slot-level
//! abstraction.
//!
//! Run: `cargo run --release --example waveform_network`

use arachnet_core::mac::MacState;
use arachnet_core::slot::Period;
use arachnet_sim::cosim::{CoSim, CoSimConfig};

fn main() {
    let p = |v| Period::new(v).unwrap();
    // Four tags around the reader: periods 2/4/8/8 (the Table 1 mix) on
    // deployment sites 8, 7, 5, 6.
    let tags = vec![(8, p(2)), (7, p(4)), (5, p(8)), (6, p(8))];
    let mut sim = CoSim::new(CoSimConfig::new(tags, 21));

    println!("slot | TX tags    | reader saw          | settled");
    println!("-----+------------+---------------------+--------");
    let mut converged_at = None;
    let mut clean = 0u32;
    for slot in 1..=120u64 {
        let s = sim.step();
        let saw = if s.rx.collision {
            format!("COLLISION ({} IQ clusters)", s.rx.clusters)
        } else if let Some(pkt) = s.rx.packet {
            format!("packet tid={} ok", pkt.tid())
        } else {
            "-".to_string()
        };
        if slot <= 25 || !s.transmitters.is_empty() && slot % 10 == 0 {
            println!(
                "{slot:4} | {:10} | {saw:19} | {}",
                format!("{:?}", s.transmitters),
                sim.settled()
            );
        }
        if s.rx.collision {
            clean = 0;
        } else {
            clean += 1;
        }
        if clean >= 8 && sim.settled() == 4 && converged_at.is_none() {
            converged_at = Some(slot);
            break;
        }
    }

    match converged_at {
        Some(at) => println!("\nconverged after {at} fully-simulated waveform slots."),
        None => println!("\nno convergence within 120 slots (increase the budget)"),
    }
    println!("final states:");
    for (tid, state, offset) in sim.tag_states() {
        let s = match state {
            MacState::Settle => "SETTLE",
            MacState::Migrate => "MIGRATE",
        };
        println!("  tag {tid}: {s} at offset {offset}");
    }
    assert!(converged_at.is_some());
}
