//! Quickstart: bring up a four-tag ARACHNET network and watch it converge.
//!
//! This walks the whole public API surface at slot granularity:
//! packets/codecs from `arachnet-core`, the calibrated BiW deployment from
//! `biw-channel`, and the network simulator from `arachnet-sim`. The
//! four-tag configuration is the paper's Table 1 — periods 2/4/8/8 that
//! pack every slot perfectly once converged.
//!
//! Run: `cargo run --release --example quickstart`

use arachnet_core::mac::MacState;
use arachnet_core::packet::{DlBeacon, DlCmd, UlPacket};
use arachnet_core::slot::Period;
use arachnet_sim::patterns::Pattern;
use arachnet_sim::slotsim::{SlotSim, SlotSimConfig, TruthOutcome};

fn main() {
    // --- Packets: what actually crosses the acoustic channel. -----------
    let ul = UlPacket::new(3, 0x5A7).expect("12-bit payload");
    let beacon = DlBeacon::new(DlCmd::ack().with_empty(true));
    println!(
        "UL packet ({} bits): {:?}",
        ul.to_bits().len(),
        ul.to_bits()
    );
    println!(
        "DL beacon ({} bits): {:?}",
        beacon.to_bits().len(),
        beacon.to_bits()
    );
    println!();

    // --- The Table 1 network: periods 2/4/8/8. ---------------------------
    let pattern = Pattern {
        name: "table1",
        tags: vec![
            (5, Period::new(2).unwrap()),
            (6, Period::new(4).unwrap()),
            (7, Period::new(8).unwrap()),
            (8, Period::new(8).unwrap()),
        ],
    };
    println!(
        "network: {} tags, slot utilization {:.3} (Table 1 fills every slot)",
        pattern.len(),
        pattern.utilization()
    );

    let mut sim = SlotSim::new(SlotSimConfig::ideal(pattern, 42));
    sim.run(4);
    sim.reset_network();

    println!("\nslot | outcome      | settled tags");
    println!("-----+--------------+-------------");
    let mut slot = 0u64;
    loop {
        let truth = sim.step();
        slot += 1;
        let outcome = match &truth {
            TruthOutcome::Empty => "-".to_string(),
            TruthOutcome::Single(t) => format!("tag {t} ok"),
            TruthOutcome::Collision(v) => format!("collision {v:?}"),
        };
        let settled: Vec<u8> = sim
            .tags()
            .iter()
            .filter(|t| t.mac().state() == MacState::Settle)
            .map(|t| t.tid())
            .collect();
        if slot <= 20 || sim.summary().converged_at.is_some() {
            println!("{slot:4} | {outcome:12} | {settled:?}");
        }
        if let Some(at) = sim.summary().converged_at {
            println!("\nconverged after {at} slots (32 consecutive collision-free slots).");
            break;
        }
        if slot > 5_000 {
            println!("\ndid not converge in 5000 slots (unexpected)");
            break;
        }
    }

    // The converged schedule is conflict-free — the protocol's core
    // invariant (Appendix C, Lemma 1).
    println!("\nsettled schedule:");
    for (tid, sched) in sim.settled_schedules() {
        println!(
            "  tag {tid}: period {:2}, offset {}",
            sched.period.get(),
            sched.offset
        );
    }
}
