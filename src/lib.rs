//! # arachnet — umbrella crate
//!
//! Re-exports every layer of the ARACHNET reproduction (SIGCOMM 2025,
//! "Acoustic Backscatter Network for Vehicle Body-in-White") under short
//! module names. See the individual crates for the real documentation:
//!
//! * [`core_protocol`] (`arachnet-core`) — packets, codecs, MAC state
//!   machines, slot math, Markov convergence analysis;
//! * [`dsp`] (`arachnet-dsp`) — the signal-processing substrate;
//! * [`channel`] (`biw-channel`) — the calibrated BiW acoustic medium;
//! * [`energy`] (`arachnet-energy`) — harvesting, storage, power ledger;
//! * [`tag`] (`arachnet-tag`) — tag firmware and timing models;
//! * [`reader`] (`arachnet-reader`) — the reader's TX/RX chains;
//! * [`sim`] (`arachnet-sim`) — slot-level and waveform-level simulators;
//! * [`sensors`] (`arachnet-sensors`) — the strain-measurement case study;
//! * [`serve`] (`arachnet-serve`) — the backpressured TCP query service
//!   over the PHY/fleet engines (`repro serve`).
//!
//! The runnable entry points live in `examples/` (start with
//! `quickstart`), the evaluation regenerators in the `repro` binary of
//! `arachnet-experiments`, and the paper-vs-measured record in
//! `EXPERIMENTS.md`.
//!
//! The [`prelude`] re-exports the high-level API most downstream code
//! wants: the validating config builders and the [`prelude::Experiment`]
//! registry types.

#![forbid(unsafe_code)]

pub use arachnet_core as core_protocol;
pub use arachnet_dsp as dsp;
pub use arachnet_energy as energy;
pub use arachnet_experiments as experiments;
pub use arachnet_reader as reader;
pub use arachnet_sensors as sensors;
pub use arachnet_serve as serve;
pub use arachnet_sim as sim;
pub use arachnet_tag as tag;
pub use biw_channel as channel;

/// The high-level API in one import: validating simulator config
/// builders, the parallel sweep engine, and the experiment registry.
///
/// ```
/// use arachnet::prelude::*;
///
/// let cfg = SlotSimConfig::builder(sim::patterns::Pattern::c3(), 1)
///     .dl_loss_prob(0.005)
///     .build()
///     .unwrap();
/// # let _ = cfg;
/// let ctx = ExperimentCtx::builder(1).quick().build().unwrap();
/// let report = experiments::registry::find("table3")
///     .unwrap()
///     .run(&ctx);
/// assert!(report.render().contains("c9"));
/// ```
pub mod prelude {
    pub use crate::{experiments, sim};
    pub use arachnet_experiments::registry;
    pub use arachnet_experiments::report::{
        Experiment, ExperimentCtx, ExperimentCtxBuilder, Report, Section,
    };
    pub use arachnet_sim::aloha::AlohaConfig;
    pub use arachnet_sim::config::{
        AlohaConfigBuilder, ConfigError, CoSimConfigBuilder, SlotSimConfigBuilder,
    };
    pub use arachnet_sim::cosim::CoSimConfig;
    pub use arachnet_sim::slotsim::SlotSimConfig;
    pub use arachnet_sim::sweep::{run_matrix, run_trials, SweepConfig, SweepSummary};
}
