//! # arachnet — umbrella crate
//!
//! Re-exports every layer of the ARACHNET reproduction (SIGCOMM 2025,
//! "Acoustic Backscatter Network for Vehicle Body-in-White") under short
//! module names. See the individual crates for the real documentation:
//!
//! * [`core_protocol`] (`arachnet-core`) — packets, codecs, MAC state
//!   machines, slot math, Markov convergence analysis;
//! * [`dsp`] (`arachnet-dsp`) — the signal-processing substrate;
//! * [`channel`] (`biw-channel`) — the calibrated BiW acoustic medium;
//! * [`energy`] (`arachnet-energy`) — harvesting, storage, power ledger;
//! * [`tag`] (`arachnet-tag`) — tag firmware and timing models;
//! * [`reader`] (`arachnet-reader`) — the reader's TX/RX chains;
//! * [`sim`] (`arachnet-sim`) — slot-level and waveform-level simulators;
//! * [`sensors`] (`arachnet-sensors`) — the strain-measurement case study.
//!
//! The runnable entry points live in `examples/` (start with
//! `quickstart`), the evaluation regenerators in the `repro` binary of
//! `arachnet-experiments`, and the paper-vs-measured record in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub use arachnet_core as core_protocol;
pub use arachnet_dsp as dsp;
pub use arachnet_energy as energy;
pub use arachnet_reader as reader;
pub use arachnet_sensors as sensors;
pub use arachnet_sim as sim;
pub use arachnet_tag as tag;
pub use biw_channel as channel;
